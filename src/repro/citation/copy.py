"""CopyCite: migrating citations when a subtree is copied between repositories.

Section 3 of the paper: *"CopyCite copies a directory from a remote
repository version to the local repository version, and migrates their
associated citations.  That is, the citations for the directory and its
subtree in the remote 'citation.cite' file are added to the local
'citation.cite' file, with the key paths modified to reflect the new location
to ensure correctness of the citation function."*

The running example (Figure 1, right) pins down an important detail: after
copying the green subtree of ``V3`` into ``P1``, the file ``f2`` — which had
no explicit citation in the source — still resolves to ``C4``, because *the
citation of the copied subtree's root* was added to the destination citation
file.  In other words CopyCite must preserve the resolved citation of every
copied node, which requires attaching the source subtree root's *resolved*
citation at the destination root of the copy whenever the source root had no
explicit entry of its own.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.citation.function import CitationFunction
from repro.utils.paths import normalize_path, rewrite_prefix

__all__ = ["CopyCiteResult", "copy_citations"]


@dataclass
class CopyCiteResult:
    """What a CopyCite citation migration did."""

    migrated: dict[str, str] = field(default_factory=dict)
    """Source path → destination path for every migrated explicit entry."""

    root_citation_added: bool = False
    """Whether the destination subtree root received the source's resolved
    citation because the source root had no explicit entry."""

    overwritten: list[str] = field(default_factory=list)
    """Destination paths whose previous explicit citation was replaced."""

    @property
    def migrated_count(self) -> int:
        return len(self.migrated)


def copy_citations(
    source: CitationFunction,
    source_root: str,
    destination: CitationFunction,
    destination_root: str,
) -> CopyCiteResult:
    """Migrate the citations of a copied subtree into the destination function.

    Parameters
    ----------
    source:
        The citation function of the source version (remote repository).
    source_root:
        The canonical path of the copied directory in the source version.
    destination:
        The citation function of the local version; mutated in place.
    destination_root:
        The canonical path where the subtree now lives in the local version.

    Returns
    -------
    CopyCiteResult
        The key rewrites performed, whether a root citation had to be
        synthesised from the source root's resolution, and which destination
        entries were overwritten.
    """
    source_root = normalize_path(source_root)
    destination_root = normalize_path(destination_root)
    result = CopyCiteResult()

    entries = source.entries_under(source_root, include_prefix=True)
    covered_root = False
    for entry in entries:
        new_path = rewrite_prefix(entry.path, source_root, destination_root)
        if destination.entry(new_path) is not None:
            result.overwritten.append(new_path)
        destination.put(new_path, entry.citation, entry.is_directory)
        result.migrated[entry.path] = new_path
        if entry.path == source_root:
            covered_root = True

    if not covered_root:
        # The copied subtree's root inherited its citation in the source; pin
        # that resolved citation at the destination root so every copied node
        # keeps resolving to the same citation (Figure 1: Cite(V4,P1)(f2)=C4).
        resolved = source.resolve(source_root)
        if destination.entry(destination_root) is not None:
            result.overwritten.append(destination_root)
        destination.put(destination_root, resolved.citation, is_directory=True)
        result.migrated[resolved.source_path] = destination_root
        result.root_citation_added = True

    result.overwritten.sort()
    return result
