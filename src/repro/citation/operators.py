"""The user-facing citation operators: AddCite, DelCite, ModifyCite, GenCite.

Section 2 of the paper: *"users may also modify its citation function by
adding (AddCite), deleting (DelCite), or modifying (ModifyCite) citations.
Each of these operators takes as input the path of the file/directory whose
citation is being modified; AddCite and ModifyCite additionally take the
value for the new or modified citation."*

GenCite (generate citation) is the read-only operator the browser extension
and local tool expose: it evaluates ``Cite(V,P)(n)`` without changing the
citation function.

Operators are plain dataclasses so they can be recorded, replayed (workload
traces for the benchmarks), serialised and logged.  :func:`apply_operation`
applies a single operator to a :class:`CitationFunction`;
:class:`OperationLog` accumulates the applied operators of a session, which
the manager uses to build informative commit messages.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.errors import CitationError
from repro.citation.function import CitationFunction, ResolvedCitation
from repro.citation.record import Citation
from repro.utils.paths import normalize_path

__all__ = [
    "AddCite",
    "DelCite",
    "ModifyCite",
    "GenCite",
    "CitationOperation",
    "OperationResult",
    "OperationLog",
    "apply_operation",
    "apply_operations",
]


@dataclass(frozen=True)
class AddCite:
    """Attach a new citation to a path that does not have one yet."""

    path: str
    citation: Citation
    is_directory: bool = False

    kind = "AddCite"

    def describe(self) -> str:
        return f"AddCite({normalize_path(self.path)})"


@dataclass(frozen=True)
class DelCite:
    """Remove the explicit citation attached to a path."""

    path: str

    kind = "DelCite"

    def describe(self) -> str:
        return f"DelCite({normalize_path(self.path)})"


@dataclass(frozen=True)
class ModifyCite:
    """Replace the citation attached to a path."""

    path: str
    citation: Citation

    kind = "ModifyCite"

    def describe(self) -> str:
        return f"ModifyCite({normalize_path(self.path)})"


@dataclass(frozen=True)
class GenCite:
    """Generate (read) the citation of a path without modifying anything."""

    path: str

    kind = "GenCite"

    def describe(self) -> str:
        return f"GenCite({normalize_path(self.path)})"


CitationOperation = Union[AddCite, DelCite, ModifyCite, GenCite]

#: Operators that change the citation function (GenCite is read-only).
MUTATING_KINDS = frozenset({"AddCite", "DelCite", "ModifyCite"})


@dataclass(frozen=True)
class OperationResult:
    """What applying one operator produced."""

    operation: CitationOperation
    resolved: Optional[ResolvedCitation] = None
    changed: bool = False

    @property
    def kind(self) -> str:
        return self.operation.kind


def apply_operation(function: CitationFunction, operation: CitationOperation) -> OperationResult:
    """Apply one operator to ``function`` (mutating it in place for Add/Del/Modify).

    Raises
    ------
    CitationExistsError
        For AddCite on a path that already has an explicit citation.
    CitationNotFoundError
        For DelCite/ModifyCite on a path without an explicit citation.
    ConsistencyError
        For DelCite on the root (the root must stay cited) or GenCite on a
        function without a root citation.
    """
    if isinstance(operation, AddCite):
        function.attach(operation.path, operation.citation, is_directory=operation.is_directory)
        return OperationResult(operation=operation, changed=True)
    if isinstance(operation, ModifyCite):
        function.replace(operation.path, operation.citation)
        return OperationResult(operation=operation, changed=True)
    if isinstance(operation, DelCite):
        function.detach(operation.path)
        return OperationResult(operation=operation, changed=True)
    if isinstance(operation, GenCite):
        resolved = function.resolve(operation.path)
        return OperationResult(operation=operation, resolved=resolved, changed=False)
    raise CitationError(f"unknown citation operation: {operation!r}")


def apply_operations(
    function: CitationFunction, operations: Iterable[CitationOperation]
) -> list[OperationResult]:
    """Apply a sequence of operators in order, returning each result."""
    return [apply_operation(function, operation) for operation in operations]


@dataclass
class OperationLog:
    """An append-only record of the operators applied in a working session.

    The manager clears the log on every commit; its :meth:`summary` becomes
    the default commit message, so the history records which citation
    operations each version introduced (the "side-effect" updates of
    Section 3).
    """

    results: list[OperationResult] = field(default_factory=list)

    def record(self, result: OperationResult) -> None:
        self.results.append(result)

    def mutating(self) -> list[OperationResult]:
        return [r for r in self.results if r.kind in MUTATING_KINDS]

    def clear(self) -> None:
        self.results.clear()

    def __len__(self) -> int:
        return len(self.results)

    def summary(self) -> str:
        """A compact description of the mutating operations, for commit messages."""
        mutating = self.mutating()
        if not mutating:
            return "No citation changes"
        parts = [result.operation.describe() for result in mutating]
        return "; ".join(parts)
