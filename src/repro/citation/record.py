"""Citation records.

A :class:`Citation` is the value attached to a node (file or directory) of a
project version by the citation function.  Its fields follow the entries of
the paper's Listing 1 — repository name, owner, committed date, commit id,
URL and author list — extended with the optional metadata the introduction
motivates (DOI, version label, license, title), so generated citations can
satisfy the FORCE11 / Software Sustainability Institute recommendations.

Records are immutable value objects: citation operators never mutate a
citation in place, they attach a new record (which is what makes the merge
and conflict-resolution semantics easy to reason about).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from datetime import datetime
from typing import Any, Mapping, Optional

from repro.errors import InvalidCitationError
from repro.utils.timeutil import format_timestamp, parse_timestamp

__all__ = ["Citation"]

#: JSON keys used by the on-disk format, in the order the paper lists them.
_REQUIRED_KEYS = ("repoName", "owner", "committedDate", "commitID", "url", "authorList")
_OPTIONAL_KEYS = ("doi", "version", "license", "title", "description", "swhid")


@dataclass(frozen=True)
class Citation:
    """A citation value as stored in ``citation.cite``.

    Parameters
    ----------
    repo_name:
        Name of the repository that hosts the cited code.
    owner:
        Account (person or organisation) that owns the repository.
    committed_date:
        The committed date of the cited version.
    commit_id:
        The (possibly abbreviated) commit id of the cited version.
    url:
        The HTTP address (or DOI URL) of the cited version.
    authors:
        The people credited for the cited node.
    doi, version, license, title, description, swhid:
        Optional metadata recommended by software-citation standards.
    extra:
        Any further key/value pairs found in a citation entry are preserved
        round-trip so foreign fields survive merge/copy/fork.
    """

    repo_name: str
    owner: str
    committed_date: datetime
    commit_id: str
    url: str
    authors: tuple[str, ...] = ()
    doi: Optional[str] = None
    version: Optional[str] = None
    license: Optional[str] = None
    title: Optional[str] = None
    description: Optional[str] = None
    swhid: Optional[str] = None
    extra: tuple[tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if not self.repo_name:
            raise InvalidCitationError("citation is missing the repository name")
        if not self.owner:
            raise InvalidCitationError("citation is missing the repository owner")
        if not self.commit_id:
            raise InvalidCitationError("citation is missing the commit id")
        if not self.url:
            raise InvalidCitationError("citation is missing the url")
        if not isinstance(self.committed_date, datetime):
            raise InvalidCitationError("committed_date must be a datetime")
        object.__setattr__(self, "authors", tuple(self.authors))
        object.__setattr__(self, "extra", tuple(self.extra))

    # ------------------------------------------------------------------
    # Serialisation (the citation.cite JSON value format of Listing 1)
    # ------------------------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        """Render the citation as the JSON object stored in ``citation.cite``."""
        payload: dict[str, Any] = {
            "repoName": self.repo_name,
            "owner": self.owner,
            "committedDate": format_timestamp(self.committed_date),
            "commitID": self.commit_id,
            "url": self.url,
            "authorList": list(self.authors),
        }
        for key, attribute in (
            ("doi", self.doi),
            ("version", self.version),
            ("license", self.license),
            ("title", self.title),
            ("description", self.description),
            ("swhid", self.swhid),
        ):
            if attribute is not None:
                payload[key] = attribute
        for key, value in self.extra:
            payload.setdefault(key, value)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "Citation":
        """Parse a citation entry value (tolerant of unknown extra keys)."""
        missing = [key for key in _REQUIRED_KEYS if key not in payload]
        if missing:
            raise InvalidCitationError(f"citation entry is missing required keys: {missing}")
        authors = payload["authorList"]
        if isinstance(authors, str):
            authors = [authors]
        if not isinstance(authors, (list, tuple)):
            raise InvalidCitationError("authorList must be a list of author names")
        try:
            committed = parse_timestamp(str(payload["committedDate"]))
        except ValueError as exc:
            raise InvalidCitationError(
                f"cannot parse committedDate {payload['committedDate']!r}"
            ) from exc
        known = set(_REQUIRED_KEYS) | set(_OPTIONAL_KEYS)
        extra = tuple(sorted((k, v) for k, v in payload.items() if k not in known))
        return cls(
            repo_name=str(payload["repoName"]),
            owner=str(payload["owner"]),
            committed_date=committed,
            commit_id=str(payload["commitID"]),
            url=str(payload["url"]),
            authors=tuple(str(a) for a in authors),
            doi=payload.get("doi"),
            version=payload.get("version"),
            license=payload.get("license"),
            title=payload.get("title"),
            description=payload.get("description"),
            swhid=payload.get("swhid"),
            extra=extra,
        )

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def with_changes(self, **changes: Any) -> "Citation":
        """Return a copy with the given fields replaced (immutable update)."""
        if "authors" in changes:
            changes["authors"] = tuple(changes["authors"])
        return replace(self, **changes)

    def with_authors(self, authors: list[str] | tuple[str, ...]) -> "Citation":
        return self.with_changes(authors=tuple(authors))

    @property
    def committed_date_string(self) -> str:
        return format_timestamp(self.committed_date)

    @property
    def primary_author(self) -> str:
        """The first listed author (falling back to the repository owner)."""
        return self.authors[0] if self.authors else self.owner

    @property
    def year(self) -> int:
        return self.committed_date.year

    def identity(self) -> tuple[str, str, str]:
        """A coarse identity used when comparing citations across repositories."""
        return (self.owner, self.repo_name, self.commit_id)

    def __str__(self) -> str:
        authors = ", ".join(self.authors) if self.authors else self.owner
        return (
            f"{authors}. {self.title or self.repo_name} ({self.year}). "
            f"{self.owner}/{self.repo_name}@{self.commit_id}. {self.url}"
        )
