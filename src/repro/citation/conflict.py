"""Citation conflict representation and resolution strategies.

When MergeCite unions two citation files, "conflicts over the values
associated with the same key in the new 'citation.cite' file are then
resolved by showing them to the user and asking the user to resolve the
conflict.  More complex conflict resolution strategies could also be used."
(Section 3.)  Section 5 lists richer strategies — in particular ones
mirroring Git's three-way merge — as future work.

This module implements the conflict value object and a family of pluggable
strategies:

* :class:`AskUserStrategy` — the paper's behaviour: every conflict is shown
  to a callback (the "user"); with no callback the conflict stays
  unresolved and MergeCite reports it.
* :class:`OursStrategy`, :class:`TheirsStrategy` — always keep one side.
* :class:`NewestStrategy` — keep the citation with the most recent
  committed date (ties keep ours).
* :class:`ThreeWayStrategy` — the future-work strategy: consult the merge
  base; if only one side changed the citation relative to the base, keep
  that side automatically, otherwise fall back to a secondary strategy.
* :class:`FieldMergeStrategy` — a finer-grained automatic merge that keeps
  common fields and unions the author lists, used in the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Protocol

from repro.errors import CitationError
from repro.citation.record import Citation

__all__ = [
    "CitationConflict",
    "ConflictResolution",
    "ConflictStrategy",
    "AskUserStrategy",
    "OursStrategy",
    "TheirsStrategy",
    "NewestStrategy",
    "ThreeWayStrategy",
    "FieldMergeStrategy",
    "strategy_by_name",
    "available_strategies",
]


@dataclass(frozen=True)
class CitationConflict:
    """Two different citations attached to the same path by the two branches."""

    path: str
    ours: Citation
    theirs: Citation
    base: Optional[Citation] = None
    is_directory: bool = False

    @property
    def both_changed(self) -> bool:
        """Whether both sides differ from the base (a "real" conflict)."""
        if self.base is None:
            return True
        return self.ours != self.base and self.theirs != self.base


@dataclass(frozen=True)
class ConflictResolution:
    """The outcome of resolving one conflict."""

    conflict: CitationConflict
    citation: Optional[Citation]
    resolved: bool
    strategy_name: str

    @property
    def path(self) -> str:
        return self.conflict.path


class ConflictStrategy(Protocol):
    """The strategy interface used by MergeCite."""

    name: str

    def resolve(self, conflict: CitationConflict) -> ConflictResolution:  # pragma: no cover
        ...


class OursStrategy:
    """Always keep the current branch's citation."""

    name = "ours"

    def resolve(self, conflict: CitationConflict) -> ConflictResolution:
        return ConflictResolution(
            conflict=conflict, citation=conflict.ours, resolved=True, strategy_name=self.name
        )


class TheirsStrategy:
    """Always keep the merged-in branch's citation."""

    name = "theirs"

    def resolve(self, conflict: CitationConflict) -> ConflictResolution:
        return ConflictResolution(
            conflict=conflict, citation=conflict.theirs, resolved=True, strategy_name=self.name
        )


class NewestStrategy:
    """Keep the citation whose committed date is most recent (ties keep ours)."""

    name = "newest"

    def resolve(self, conflict: CitationConflict) -> ConflictResolution:
        chosen = (
            conflict.theirs
            if conflict.theirs.committed_date > conflict.ours.committed_date
            else conflict.ours
        )
        return ConflictResolution(
            conflict=conflict, citation=chosen, resolved=True, strategy_name=self.name
        )


class AskUserStrategy:
    """Show the conflict to the user and let them pick or supply a citation.

    ``chooser`` receives the conflict and returns the chosen
    :class:`Citation` (it may construct a new one), or ``None`` to leave the
    conflict unresolved.  Without a chooser every conflict stays unresolved,
    which makes MergeCite surface them to the caller — the non-interactive
    analogue of the paper's pop-up.
    """

    name = "ask"

    def __init__(self, chooser: Callable[[CitationConflict], Optional[Citation]] | None = None) -> None:
        self._chooser = chooser

    def resolve(self, conflict: CitationConflict) -> ConflictResolution:
        if self._chooser is None:
            return ConflictResolution(
                conflict=conflict, citation=None, resolved=False, strategy_name=self.name
            )
        choice = self._chooser(conflict)
        return ConflictResolution(
            conflict=conflict,
            citation=choice,
            resolved=choice is not None,
            strategy_name=self.name,
        )


class ThreeWayStrategy:
    """Use the merge base to auto-resolve one-sided changes (future work, §5).

    If only one branch changed the citation relative to the base version's
    citation function, that branch's citation wins automatically; when both
    changed (or there is no base entry) the ``fallback`` strategy decides.
    """

    name = "three-way"

    def __init__(self, fallback: ConflictStrategy | None = None) -> None:
        self._fallback = fallback or AskUserStrategy()

    def resolve(self, conflict: CitationConflict) -> ConflictResolution:
        base = conflict.base
        if base is not None:
            if conflict.ours == base and conflict.theirs != base:
                return ConflictResolution(
                    conflict=conflict, citation=conflict.theirs, resolved=True, strategy_name=self.name
                )
            if conflict.theirs == base and conflict.ours != base:
                return ConflictResolution(
                    conflict=conflict, citation=conflict.ours, resolved=True, strategy_name=self.name
                )
            if conflict.ours == conflict.theirs:
                return ConflictResolution(
                    conflict=conflict, citation=conflict.ours, resolved=True, strategy_name=self.name
                )
        fallback_result = self._fallback.resolve(conflict)
        return ConflictResolution(
            conflict=conflict,
            citation=fallback_result.citation,
            resolved=fallback_result.resolved,
            strategy_name=f"{self.name}+{fallback_result.strategy_name}",
        )


class FieldMergeStrategy:
    """Merge citations field-by-field when they describe the same version.

    If both citations point at the same repository/commit the author lists
    are united and optional fields filled from either side; otherwise the
    newest citation wins.  This models an automatic strategy richer than the
    paper's union-and-ask and is compared against it in the ablation bench.
    """

    name = "field-merge"

    def resolve(self, conflict: CitationConflict) -> ConflictResolution:
        ours, theirs = conflict.ours, conflict.theirs
        if ours.identity() == theirs.identity():
            merged_authors = list(ours.authors)
            for author in theirs.authors:
                if author not in merged_authors:
                    merged_authors.append(author)
            merged = ours.with_changes(
                authors=tuple(merged_authors),
                doi=ours.doi or theirs.doi,
                version=ours.version or theirs.version,
                license=ours.license or theirs.license,
                title=ours.title or theirs.title,
                description=ours.description or theirs.description,
                swhid=ours.swhid or theirs.swhid,
            )
            return ConflictResolution(
                conflict=conflict, citation=merged, resolved=True, strategy_name=self.name
            )
        fallback = NewestStrategy().resolve(conflict)
        return ConflictResolution(
            conflict=conflict,
            citation=fallback.citation,
            resolved=True,
            strategy_name=f"{self.name}+{fallback.strategy_name}",
        )


_STRATEGIES: dict[str, Callable[[], ConflictStrategy]] = {
    "ask": AskUserStrategy,
    "ours": OursStrategy,
    "theirs": TheirsStrategy,
    "newest": NewestStrategy,
    "three-way": ThreeWayStrategy,
    "field-merge": FieldMergeStrategy,
}


def available_strategies() -> list[str]:
    """The names accepted by :func:`strategy_by_name` (and the CLI's ``--strategy``)."""
    return sorted(_STRATEGIES)


def strategy_by_name(name: str, **kwargs) -> ConflictStrategy:
    """Instantiate a strategy by its registry name."""
    try:
        factory = _STRATEGIES[name]
    except KeyError:
        raise CitationError(
            f"unknown conflict-resolution strategy {name!r}; choose from {available_strategies()}"
        ) from None
    return factory(**kwargs)
