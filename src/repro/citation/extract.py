"""Citing an extracted code base.

The paper's introduction raises the question GitCite exists to answer: *"There
is also a question of how to construct the citation for the extracted code
base, given the granularity at which citations appear."*  When a user takes a
subset of a project's files (a vendored directory, a handful of modules, a
whole release), the citation of that extraction is not a single ``Cite`` call
— different files may resolve to different citations, and the same citation
may cover many files.

:func:`cite_extraction` evaluates ``Cite(V,P)(n)`` for every extracted path,
groups the paths by the citation that covers them, and returns an
:class:`ExtractionCitation` — effectively the bibliography of the extraction —
which can be rendered as text, BibTeX or any other registered format through
:func:`render_bibliography`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.citation.function import CitationFunction, ResolvedCitation
from repro.citation.record import Citation
from repro.formats import render
from repro.utils.paths import normalize_path

__all__ = ["ExtractionEntry", "ExtractionCitation", "cite_extraction", "render_bibliography"]


@dataclass(frozen=True)
class ExtractionEntry:
    """One distinct citation and the extracted paths it covers."""

    citation: Citation
    source_path: str
    covered_paths: tuple[str, ...]

    @property
    def coverage(self) -> int:
        return len(self.covered_paths)


@dataclass
class ExtractionCitation:
    """The citation set for an extracted subset of a project version."""

    entries: list[ExtractionEntry] = field(default_factory=list)
    resolutions: dict[str, ResolvedCitation] = field(default_factory=dict)

    @property
    def citations(self) -> list[Citation]:
        """The distinct citations, most-covering first."""
        return [entry.citation for entry in self.entries]

    @property
    def distinct_count(self) -> int:
        return len(self.entries)

    def citation_for(self, path: str) -> Citation:
        """The citation covering one extracted path."""
        return self.resolutions[normalize_path(path)].citation

    def authors(self) -> list[str]:
        """Every credited author across the extraction, in coverage order."""
        seen: list[str] = []
        for entry in self.entries:
            for author in entry.citation.authors or (entry.citation.owner,):
                if author not in seen:
                    seen.append(author)
        return seen


def cite_extraction(
    function: CitationFunction, paths: Iterable[str]
) -> ExtractionCitation:
    """Build the citation set for the extracted ``paths`` of one version.

    Every path is resolved with the closest-ancestor rule; paths whose
    resolutions share the same citation *value* are grouped into one
    :class:`ExtractionEntry`.  Entries are ordered by how many extracted paths
    they cover (descending), then by source path, so the "main" citation of
    the extraction comes first.
    """
    resolutions: dict[str, ResolvedCitation] = {}
    for raw_path in paths:
        canonical = normalize_path(raw_path)
        resolutions[canonical] = function.resolve(canonical)

    groups: dict[tuple, list[str]] = {}
    representatives: dict[tuple, ResolvedCitation] = {}
    for path, resolved in resolutions.items():
        key = _citation_key(resolved.citation)
        groups.setdefault(key, []).append(path)
        representatives.setdefault(key, resolved)

    entries = [
        ExtractionEntry(
            citation=representatives[key].citation,
            source_path=representatives[key].source_path,
            covered_paths=tuple(sorted(paths_for_key)),
        )
        for key, paths_for_key in groups.items()
    ]
    entries.sort(key=lambda entry: (-entry.coverage, entry.source_path))
    return ExtractionCitation(entries=entries, resolutions=resolutions)


def _citation_key(citation: Citation) -> tuple:
    """A hashable identity for grouping equal citation values."""
    return tuple(
        (key, tuple(value) if isinstance(value, list) else value)
        for key, value in sorted(citation.to_dict().items())
    )


def render_bibliography(
    extraction: ExtractionCitation,
    format_name: str = "text",
    include_coverage: bool = True,
) -> str:
    """Render the extraction's citations as a bibliography.

    Each distinct citation is rendered once in the requested format; with
    ``include_coverage`` a comment line lists which extracted paths that
    citation covers (so readers can tell which import credits which source).
    """
    sections: list[str] = []
    for entry in extraction.entries:
        rendered = render(entry.citation, format_name, cited_path=entry.source_path).rstrip("\n")
        if include_coverage:
            covered = ", ".join(entry.covered_paths)
            prefix = "%" if format_name == "bibtex" else "#"
            rendered = f"{prefix} covers: {covered}\n{rendered}"
        sections.append(rendered)
    return "\n\n".join(sections) + ("\n" if sections else "")
