"""The citation function of a project version.

Section 2 of the paper defines, for every version ``V`` of a project ``P``,
a *citation function* ``C(V,P)``: a partial map from paths in the version's
tree to citations.  The root of the version must be in the active domain, so
the derived total function

    ``Cite(V,P)(n) = C(V,P)(n)`` if ``n`` is in the active domain, else
    ``C(V,P)(a)`` where ``a`` is the closest ancestor of ``n`` with a citation

is defined for every node.  The paper also notes an alternative
interpretation that returns *every* citation on the path from ``n`` to the
root; :meth:`CitationFunction.resolve_chain` implements it.

A :class:`CitationFunction` is the in-memory representation of one
``citation.cite`` file.  It is deliberately independent of the VCS: operators
(:mod:`repro.citation.operators`), merging (:mod:`repro.citation.merge`) and
copying (:mod:`repro.citation.copy`) are pure functions over this structure,
and :mod:`repro.citation.manager` binds them to repository versions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping, Optional

from repro.errors import CitationExistsError, CitationNotFoundError, ConsistencyError
from repro.citation.record import Citation
from repro.utils.paths import (
    ROOT,
    ancestors,
    normalize_path,
    rewrite_prefix,
)
from repro.utils.sortedkeys import descendant_slice, sorted_insert, sorted_remove

__all__ = ["CitationEntry", "ResolvedCitation", "CitationFunction"]


@dataclass(frozen=True)
class CitationEntry:
    """One explicit attachment: a citation bound to a path."""

    path: str
    citation: Citation
    is_directory: bool

    def __post_init__(self) -> None:
        object.__setattr__(self, "path", normalize_path(self.path))
        if self.path == ROOT and not self.is_directory:
            raise ConsistencyError("the root entry must be a directory entry")


@dataclass(frozen=True)
class ResolvedCitation:
    """The result of evaluating ``Cite(V,P)(n)`` for one node.

    ``source_path`` is the path whose explicit citation supplied the value;
    ``is_explicit`` tells whether that path is the queried node itself.
    """

    path: str
    citation: Citation
    source_path: str
    is_explicit: bool

    @property
    def inherited(self) -> bool:
        return not self.is_explicit


class CitationFunction:
    """A partial map from repository paths to :class:`Citation` values.

    Alongside the hash map, a sorted list of the active-domain paths is
    maintained so prefix queries (:meth:`entries_under`,
    :meth:`rename_prefix`) are bisect-bounded range scans instead of full
    sorts over the whole domain.
    """

    def __init__(self, entries: Mapping[str, CitationEntry] | None = None) -> None:
        self._entries: dict[str, CitationEntry] = {}
        if entries:
            for entry in entries.values():
                self._entries[entry.path] = entry
        self._sorted_paths: list[str] = sorted(self._entries)

    # -- sorted-key index maintenance ----------------------------------

    def _index_add(self, path: str) -> None:
        sorted_insert(self._sorted_paths, path)

    def _index_remove(self, path: str) -> None:
        sorted_remove(self._sorted_paths, path)

    def _descendant_range(self, prefix: str) -> tuple[int, int]:
        """Index range in the sorted key list of the strict descendants of ``prefix``."""
        return descendant_slice(self._sorted_paths, prefix)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def with_root(cls, root_citation: Citation) -> "CitationFunction":
        """Create a function whose active domain is just the root."""
        function = cls()
        function.attach(ROOT, root_citation, is_directory=True)
        return function

    def copy(self) -> "CitationFunction":
        """Return an independent copy (entries are immutable and shared)."""
        duplicate = CitationFunction()
        duplicate._entries = dict(self._entries)
        duplicate._sorted_paths = list(self._sorted_paths)
        return duplicate

    # ------------------------------------------------------------------
    # Active domain
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[CitationEntry]:
        # Snapshot: callers may mutate the function while iterating.
        for path in list(self._sorted_paths):
            yield self._entries[path]

    def __contains__(self, path: str) -> bool:
        return normalize_path(path) in self._entries

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CitationFunction):
            return NotImplemented
        return self._entries == other._entries

    def active_domain(self) -> list[str]:
        """The paths that carry an explicit citation (sorted)."""
        return list(self._sorted_paths)

    @property
    def has_root(self) -> bool:
        return ROOT in self._entries

    def entry(self, path: str) -> Optional[CitationEntry]:
        """The explicit entry at ``path``, or ``None``."""
        return self._entries.get(normalize_path(path))

    def get_explicit(self, path: str) -> Optional[Citation]:
        """The explicit citation at ``path``, or ``None`` when inherited."""
        entry = self.entry(path)
        return entry.citation if entry else None

    def entries_under(self, prefix: str, include_prefix: bool = True) -> list[CitationEntry]:
        """Every explicit entry at or below ``prefix`` (sorted by path)."""
        prefix = normalize_path(prefix)
        selected = []
        if include_prefix and prefix in self._entries:
            selected.append(self._entries[prefix])
        lower, upper = self._descendant_range(prefix)
        selected.extend(self._entries[path] for path in self._sorted_paths[lower:upper])
        return selected

    # ------------------------------------------------------------------
    # Mutation (used by the operators module)
    # ------------------------------------------------------------------

    def attach(self, path: str, citation: Citation, is_directory: bool) -> CitationEntry:
        """Attach a citation to a path that has none (AddCite semantics)."""
        canonical = normalize_path(path)
        if canonical in self._entries:
            raise CitationExistsError(canonical)
        entry = CitationEntry(path=canonical, citation=citation, is_directory=is_directory)
        self._entries[canonical] = entry
        self._index_add(canonical)
        return entry

    def replace(self, path: str, citation: Citation) -> CitationEntry:
        """Replace the citation at a path that already has one (ModifyCite)."""
        canonical = normalize_path(path)
        existing = self._entries.get(canonical)
        if existing is None:
            raise CitationNotFoundError(canonical)
        entry = CitationEntry(
            path=canonical, citation=citation, is_directory=existing.is_directory
        )
        self._entries[canonical] = entry
        return entry

    def put(self, path: str, citation: Citation, is_directory: bool) -> CitationEntry:
        """Attach-or-replace (used by merge/copy, which are not user operators)."""
        canonical = normalize_path(path)
        existing = self._entries.get(canonical)
        entry = CitationEntry(
            path=canonical,
            citation=citation,
            is_directory=existing.is_directory if existing else is_directory,
        )
        self._entries[canonical] = entry
        if existing is None:
            self._index_add(canonical)
        return entry

    def detach(self, path: str) -> CitationEntry:
        """Remove the explicit citation at ``path`` (DelCite semantics).

        The root citation cannot be removed: the paper requires the root to
        stay in the active domain so ``Cite`` remains total.
        """
        canonical = normalize_path(path)
        if canonical == ROOT:
            raise ConsistencyError("the root citation cannot be deleted (it must always exist)")
        try:
            entry = self._entries.pop(canonical)
        except KeyError:
            raise CitationNotFoundError(canonical) from None
        self._index_remove(canonical)
        return entry

    def discard(self, path: str) -> Optional[CitationEntry]:
        """Remove an entry if present, returning it (``None`` when absent)."""
        canonical = normalize_path(path)
        entry = self._entries.pop(canonical, None)
        if entry is not None:
            self._index_remove(canonical)
        return entry

    # ------------------------------------------------------------------
    # Resolution — the Cite(V,P)(n) of Section 2
    # ------------------------------------------------------------------

    def resolve(self, path: str) -> ResolvedCitation:
        """Evaluate ``Cite(V,P)(path)`` by closest-ancestor lookup.

        Raises
        ------
        ConsistencyError
            If the function has no root citation (the paper's invariant is
            violated and the function is not total).
        """
        canonical = normalize_path(path)
        for candidate in ancestors(canonical, include_self=True):
            entry = self._entries.get(candidate)
            if entry is not None:
                return ResolvedCitation(
                    path=canonical,
                    citation=entry.citation,
                    source_path=candidate,
                    is_explicit=candidate == canonical,
                )
        raise ConsistencyError(
            f"citation function has no root citation; Cite({canonical!r}) is undefined"
        )

    def resolve_chain(self, path: str) -> list[ResolvedCitation]:
        """Return every citation on the path from ``path`` up to the root.

        This is the alternative interpretation mentioned at the end of
        Section 2 ("ones that include every citation on the path from n to
        r"); the first element equals :meth:`resolve`'s result.
        """
        canonical = normalize_path(path)
        chain: list[ResolvedCitation] = []
        for candidate in ancestors(canonical, include_self=True):
            entry = self._entries.get(candidate)
            if entry is not None:
                chain.append(
                    ResolvedCitation(
                        path=canonical,
                        citation=entry.citation,
                        source_path=candidate,
                        is_explicit=candidate == canonical,
                    )
                )
        if not chain:
            raise ConsistencyError(
                f"citation function has no root citation; Cite({canonical!r}) is undefined"
            )
        return chain

    def root_citation(self) -> Citation:
        """The citation of the project root (always defined for valid functions)."""
        return self.resolve(ROOT).citation

    # ------------------------------------------------------------------
    # Structural updates driven by tree changes
    # ------------------------------------------------------------------

    def rename(self, old_path: str, new_path: str) -> bool:
        """Move one explicit entry from ``old_path`` to ``new_path``.

        Returns whether an entry was moved.  Required by Section 2: when a
        cited file or directory is moved or renamed, the citation function
        must be updated to use its new path.
        """
        old_canonical = normalize_path(old_path)
        entry = self._entries.pop(old_canonical, None)
        if entry is None:
            return False
        self._index_remove(old_canonical)
        moved = CitationEntry(
            path=normalize_path(new_path),
            citation=entry.citation,
            is_directory=entry.is_directory,
        )
        if moved.path not in self._entries:
            self._index_add(moved.path)
        self._entries[moved.path] = moved
        return True

    def rename_prefix(self, old_prefix: str, new_prefix: str) -> dict[str, str]:
        """Re-root every entry under ``old_prefix`` to ``new_prefix``.

        Returns ``{old path: new path}`` for the entries that moved.  Used
        when a whole directory is moved/renamed and by CopyCite's key
        rewriting.
        """
        old_prefix = normalize_path(old_prefix)
        moves: dict[str, str] = {}
        lower, upper = self._descendant_range(old_prefix)
        affected = self._sorted_paths[lower:upper]
        if old_prefix in self._entries:
            affected.append(old_prefix)
        for path in affected:
            moves[path] = rewrite_prefix(path, old_prefix, new_prefix)
        for old, new in moves.items():
            entry = self._entries.pop(old)
            self._index_remove(old)
            if new not in self._entries:
                self._index_add(new)
            self._entries[new] = CitationEntry(
                path=new, citation=entry.citation, is_directory=entry.is_directory
            )
        return moves

    def drop_missing(self, existing_paths: set[str]) -> list[str]:
        """Drop entries whose path no longer exists; returns the dropped paths.

        ``existing_paths`` must contain canonical paths of both files and
        directories present in the version (the root never needs to be
        listed).  Used by MergeCite ("delete any entries that correspond to
        files that were deleted by the Git merge") and by consistency repair.
        """
        dropped: list[str] = []
        for path in list(self._entries):
            if path == ROOT:
                continue
            if path not in existing_paths:
                del self._entries[path]
                dropped.append(path)
        if dropped:
            self._sorted_paths = sorted(self._entries)
        return sorted(dropped)

    # ------------------------------------------------------------------
    # Serialisation helpers (dict-of-dicts; the file layer adds key markup)
    # ------------------------------------------------------------------

    def to_entries(self) -> list[CitationEntry]:
        return [self._entries[path] for path in self._sorted_paths]

    @classmethod
    def from_entries(cls, entries: Iterator[CitationEntry] | list[CitationEntry]) -> "CitationFunction":
        function = cls()
        for entry in entries:
            function._entries[entry.path] = entry
        function._sorted_paths = sorted(function._entries)
        return function
