"""MergeCite: merging the citation functions of two branches.

Section 3 of the paper: *"MergeCite merges two branches in the same
repository, and merges the citation files while resolving conflicts.
Although Git conflict resolution rules are used for all regular files, we do
not use them on 'citation.cite' since it could leave the citation function
inconsistent.  Instead, we simply take the union of the citation files, and
delete any entries that correspond to files that were deleted by the Git
merge.  Conflicts over the values associated with the same key in the new
'citation.cite' file are then resolved by showing them to the user and
asking the user to resolve the conflict."*

This module implements exactly that algorithm over
:class:`~repro.citation.function.CitationFunction` values; binding it to real
branches of a repository (computing which files the Git merge kept) is the
manager's job.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional

from repro.citation.conflict import (
    AskUserStrategy,
    CitationConflict,
    ConflictResolution,
    ConflictStrategy,
)
from repro.citation.function import CitationFunction
from repro.utils.paths import ROOT

__all__ = ["MergeCiteResult", "merge_citation_functions"]


@dataclass
class MergeCiteResult:
    """The outcome of merging two citation functions."""

    function: CitationFunction
    conflicts: list[CitationConflict] = field(default_factory=list)
    resolutions: list[ConflictResolution] = field(default_factory=list)
    unresolved: list[CitationConflict] = field(default_factory=list)
    dropped_paths: list[str] = field(default_factory=list)

    @property
    def has_unresolved(self) -> bool:
        return bool(self.unresolved)

    @property
    def conflict_paths(self) -> list[str]:
        return sorted(conflict.path for conflict in self.conflicts)

    @property
    def auto_resolved_count(self) -> int:
        return sum(1 for resolution in self.resolutions if resolution.resolved)


def merge_citation_functions(
    ours: CitationFunction,
    theirs: CitationFunction,
    base: Optional[CitationFunction] = None,
    surviving_paths: Optional[Iterable[str]] = None,
    strategy: Optional[ConflictStrategy] = None,
) -> MergeCiteResult:
    """Merge two citation functions according to the paper's MergeCite rule.

    Parameters
    ----------
    ours, theirs:
        The citation functions of the two branches being merged.
    base:
        The citation function of the merge base, when available.  It is only
        used to classify conflicts (and by base-aware strategies such as
        ``three-way``); the paper's plain union never consults it.
    surviving_paths:
        Canonical paths (files *and* directories) that exist in the merged
        version.  Entries for paths outside this set are dropped, mirroring
        "delete any entries that correspond to files that were deleted by the
        Git merge".  ``None`` keeps every entry (a pure union).
    strategy:
        How to resolve same-key/different-value conflicts.  Defaults to
        :class:`AskUserStrategy` with no chooser, i.e. conflicts are reported
        unresolved and the caller (ultimately the user) must decide — the
        paper's behaviour in a non-interactive setting.

    Notes
    -----
    The result's function always keeps a root citation: if the two roots
    conflict and stay unresolved, ours is kept provisionally so the merged
    function remains total, and the conflict is still reported.
    """
    strategy = strategy or AskUserStrategy()
    merged = CitationFunction()
    conflicts: list[CitationConflict] = []
    resolutions: list[ConflictResolution] = []
    unresolved: list[CitationConflict] = []

    ours_paths = set(ours.active_domain())
    theirs_paths = set(theirs.active_domain())

    for path in sorted(ours_paths | theirs_paths):
        ours_entry = ours.entry(path)
        theirs_entry = theirs.entry(path)
        if ours_entry is not None and theirs_entry is None:
            merged.put(path, ours_entry.citation, ours_entry.is_directory)
            continue
        if theirs_entry is not None and ours_entry is None:
            merged.put(path, theirs_entry.citation, theirs_entry.is_directory)
            continue
        assert ours_entry is not None and theirs_entry is not None
        if ours_entry.citation == theirs_entry.citation:
            # The directory flag is or-ed so the union is commutative even
            # when the two sides disagree about the node kind (consistency
            # repair settles such disagreements against the real tree).
            merged.put(
                path,
                ours_entry.citation,
                ours_entry.is_directory or theirs_entry.is_directory,
            )
            continue
        base_entry = base.entry(path) if base is not None else None
        conflict = CitationConflict(
            path=path,
            ours=ours_entry.citation,
            theirs=theirs_entry.citation,
            base=base_entry.citation if base_entry else None,
            is_directory=ours_entry.is_directory or theirs_entry.is_directory,
        )
        conflicts.append(conflict)
        resolution = strategy.resolve(conflict)
        resolutions.append(resolution)
        if resolution.resolved and resolution.citation is not None:
            merged.put(path, resolution.citation, conflict.is_directory)
        else:
            unresolved.append(conflict)
            if path == ROOT:
                # Keep the merged function total: provisionally retain ours.
                merged.put(path, ours_entry.citation, True)

    dropped: list[str] = []
    if surviving_paths is not None:
        dropped = merged.drop_missing(set(surviving_paths))

    return MergeCiteResult(
        function=merged,
        conflicts=conflicts,
        resolutions=resolutions,
        unresolved=unresolved,
        dropped_paths=dropped,
    )
