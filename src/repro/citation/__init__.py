"""The GitCite citation model: the paper's primary contribution.

This package implements Section 2 (the citation model) and the citation half
of Section 3 (how the model is maintained through Git operations):

* :mod:`record` — the :class:`~repro.citation.record.Citation` value object;
* :mod:`function` — citation functions with closest-ancestor resolution
  (``Cite(V,P)(n)``);
* :mod:`citefile` — the ``citation.cite`` on-disk format;
* :mod:`operators` — AddCite / DelCite / ModifyCite / GenCite;
* :mod:`rename` — propagating file and directory renames;
* :mod:`copy`, :mod:`merge`, :mod:`fork` — CopyCite, MergeCite, ForkCite;
* :mod:`conflict` — conflict-resolution strategies (union-and-ask plus the
  richer strategies the paper leaves as future work);
* :mod:`consistency` — invariants between a tree and its citation function;
* :mod:`retro` — retroactive citation of existing repositories (future work);
* :mod:`manager` — :class:`~repro.citation.manager.CitationManager`, the
  high-level API binding everything to a repository.
"""

from repro.citation.citefile import (
    CITATION_FILE_NAME,
    CITATION_FILE_PATH,
    dump_citation_bytes,
    dumps_citation_file,
    load_citation_bytes,
    loads_citation_file,
)
from repro.citation.conflict import (
    AskUserStrategy,
    CitationConflict,
    ConflictResolution,
    FieldMergeStrategy,
    NewestStrategy,
    OursStrategy,
    TheirsStrategy,
    ThreeWayStrategy,
    available_strategies,
    strategy_by_name,
)
from repro.citation.consistency import ConsistencyReport, check_consistency, repair
from repro.citation.copy import CopyCiteResult, copy_citations
from repro.citation.extract import (
    ExtractionCitation,
    ExtractionEntry,
    cite_extraction,
    render_bibliography,
)
from repro.citation.fork import fork_citation, rewrite_fork_root
from repro.citation.function import CitationEntry, CitationFunction, ResolvedCitation
from repro.citation.manager import CitationManager, CopyCiteOutcome, MergeCiteOutcome
from repro.citation.merge import MergeCiteResult, merge_citation_functions
from repro.citation.operators import (
    AddCite,
    DelCite,
    GenCite,
    ModifyCite,
    OperationLog,
    apply_operation,
    apply_operations,
)
from repro.citation.record import Citation
from repro.citation.rename import propagate_diff, propagate_renames
from repro.citation.retro import attribute_history, build_retroactive_function, retrofit

__all__ = [
    "CITATION_FILE_NAME",
    "CITATION_FILE_PATH",
    "dump_citation_bytes",
    "dumps_citation_file",
    "load_citation_bytes",
    "loads_citation_file",
    "AskUserStrategy",
    "CitationConflict",
    "ConflictResolution",
    "FieldMergeStrategy",
    "NewestStrategy",
    "OursStrategy",
    "TheirsStrategy",
    "ThreeWayStrategy",
    "available_strategies",
    "strategy_by_name",
    "ConsistencyReport",
    "check_consistency",
    "repair",
    "CopyCiteResult",
    "copy_citations",
    "ExtractionCitation",
    "ExtractionEntry",
    "cite_extraction",
    "render_bibliography",
    "fork_citation",
    "rewrite_fork_root",
    "CitationEntry",
    "CitationFunction",
    "ResolvedCitation",
    "CitationManager",
    "CopyCiteOutcome",
    "MergeCiteOutcome",
    "MergeCiteResult",
    "merge_citation_functions",
    "AddCite",
    "DelCite",
    "GenCite",
    "ModifyCite",
    "OperationLog",
    "apply_operation",
    "apply_operations",
    "Citation",
    "propagate_diff",
    "propagate_renames",
    "attribute_history",
    "build_retroactive_function",
    "retrofit",
]
