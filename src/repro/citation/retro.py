"""Retroactive citations for repositories that were never citation-enabled.

Section 5 of the paper lists this as future work: *"since many software
repositories have already been developed without being 'citation-enabled',
we would like to explore ways of adding retroactive citations and ensuring
their consistency and preservation through the project history."*

The implementation mines the commit history that already exists:

1. :func:`attribute_history` walks the history of a version and computes, for
   every file, the set of commit authors who touched it and the commit that
   last modified it (renames detected by the diff layer carry attribution to
   the new path).
2. :func:`build_retroactive_function` turns that attribution into a citation
   function at a chosen granularity:

   * ``"root"`` — only the mandatory root citation (all contributors);
   * ``"directory"`` — additionally cite every directory whose contributor
     set differs from its parent's (the granularity question raised in the
     paper's introduction);
   * ``"file"`` — additionally cite every file whose contributor set differs
     from the citation it would otherwise inherit.

3. :func:`retrofit` applies the generated function to a repository by writing
   ``citation.cite`` and committing, making the project citation-enabled from
   that version onward.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Literal, Optional

from repro.citation.citefile import CITATION_FILE_PATH
from repro.citation.function import CitationFunction
from repro.citation.record import Citation
from repro.utils.hashing import short_id
from repro.utils.paths import ROOT, path_parent
from repro.vcs.diff import diff_trees
from repro.vcs.repository import Repository

__all__ = [
    "FileAttribution",
    "AttributionIndex",
    "RetroReport",
    "attribute_history",
    "build_retroactive_function",
    "retrofit",
]

Granularity = Literal["root", "directory", "file"]


@dataclass
class FileAttribution:
    """Provenance mined from history for a single file."""

    path: str
    authors: list[str] = field(default_factory=list)
    last_commit_oid: str = ""
    last_modified: Optional[datetime] = None
    change_count: int = 0
    # Order-preserving membership index over ``authors``: add_author stays
    # O(1) on repositories with many contributors instead of scanning the
    # list on every touched file of every commit.
    _author_index: set[str] = field(default_factory=set, repr=False, compare=False, init=False)

    def __post_init__(self) -> None:
        self._author_index = set(self.authors)

    def add_author(self, author: str) -> None:
        if author not in self._author_index:
            self._author_index.add(author)
            self.authors.append(author)


@dataclass
class AttributionIndex:
    """Attribution for every file of a version plus aggregate directory views."""

    files: dict[str, FileAttribution] = field(default_factory=dict)
    commits_scanned: int = 0

    def directory_authors(self) -> dict[str, list[str]]:
        """Aggregate author lists per directory (including the root)."""
        # Buckets are insertion-ordered dicts used as ordered sets, so the
        # per-directory aggregation is linear in (files × depth × authors)
        # instead of quadratic in the number of contributors.
        buckets: dict[str, dict[str, None]] = {ROOT: {}}
        for attribution in self.files.values():
            parent = path_parent(attribution.path)
            while True:
                bucket = buckets.setdefault(parent, {})
                for author in attribution.authors:
                    bucket.setdefault(author)
                if parent == ROOT:
                    break
                parent = path_parent(parent)
        return {directory: list(bucket) for directory, bucket in buckets.items()}

    def all_authors(self) -> list[str]:
        """Every contributor in first-touched order."""
        seen: dict[str, None] = {}
        for attribution in self.files.values():
            for author in attribution.authors:
                seen.setdefault(author)
        return list(seen)


def attribute_history(repo: Repository, ref: str = "HEAD") -> AttributionIndex:
    """Mine per-file attribution from the history reachable from ``ref``.

    Commits are replayed oldest-first; each commit's diff against its first
    parent attributes the touched paths to the commit's author.  Files
    carried over by renames keep their accumulated attribution under the new
    path.  Only paths that still exist in ``ref`` remain in the result.
    """
    history = list(reversed(repo.log(ref)))
    index = AttributionIndex()
    for info in history:
        index.commits_scanned += 1
        commit = info.commit
        parent_tree = (
            repo.store.get_commit(commit.parent_oids[0]).tree_oid if commit.parent_oids else None
        )
        diff = diff_trees(repo.store, parent_tree, commit.tree_oid)
        author = commit.author.name
        when = commit.author.timestamp

        for entry in diff.renamed:
            if entry.old_path in index.files:
                moved = index.files.pop(entry.old_path)
                moved.path = entry.new_path
                index.files[entry.new_path] = moved
            attribution = index.files.setdefault(
                entry.new_path, FileAttribution(path=entry.new_path)
            )
            if entry.old_oid != entry.new_oid:
                attribution.add_author(author)
                attribution.change_count += 1
                attribution.last_commit_oid = info.oid
                attribution.last_modified = when

        for entry in diff.added + diff.modified:
            path = entry.new_path or entry.old_path
            attribution = index.files.setdefault(path, FileAttribution(path=path))
            attribution.add_author(author)
            attribution.change_count += 1
            attribution.last_commit_oid = info.oid
            attribution.last_modified = when

        for entry in diff.deleted:
            index.files.pop(entry.old_path, None)

    surviving = set(repo.snapshot(ref))
    index.files = {path: attr for path, attr in index.files.items() if path in surviving}
    return index


@dataclass
class RetroReport:
    """What retroactive citation generation produced."""

    function: CitationFunction
    granularity: Granularity
    entries_created: int
    contributors: list[str]
    commits_scanned: int


def _root_citation(repo: Repository, ref: str, index: AttributionIndex, url: Optional[str]) -> Citation:
    tip_oid = repo.resolve(ref)
    tip = repo.store.get_commit(tip_oid)
    return Citation(
        repo_name=repo.name,
        owner=repo.owner,
        committed_date=tip.committer.timestamp,
        commit_id=short_id(tip_oid),
        url=url or f"https://example.org/{repo.owner}/{repo.name}",
        authors=tuple(index.all_authors()) or (repo.owner,),
        title=repo.description or repo.name,
    )


def build_retroactive_function(
    repo: Repository,
    ref: str = "HEAD",
    granularity: Granularity = "directory",
    url: Optional[str] = None,
) -> RetroReport:
    """Generate a citation function for an existing, citation-less version."""
    index = attribute_history(repo, ref)
    root = _root_citation(repo, ref, index, url)
    function = CitationFunction.with_root(root)
    created = 1

    if granularity in ("directory", "file"):
        directory_authors = index.directory_authors()
        for directory in sorted(directory_authors):
            if directory == ROOT:
                continue
            authors = directory_authors[directory]
            parent_authors = directory_authors.get(path_parent(directory), list(root.authors))
            if authors and authors != parent_authors:
                function.put(
                    directory,
                    root.with_changes(authors=tuple(authors)),
                    is_directory=True,
                )
                created += 1

    if granularity == "file":
        for path in sorted(index.files):
            if path == CITATION_FILE_PATH:
                continue
            attribution = index.files[path]
            inherited = function.resolve(path).citation
            if attribution.authors and tuple(attribution.authors) != inherited.authors:
                file_citation = root.with_changes(
                    authors=tuple(attribution.authors),
                    commit_id=short_id(attribution.last_commit_oid) if attribution.last_commit_oid else root.commit_id,
                    committed_date=attribution.last_modified or root.committed_date,
                )
                function.put(path, file_citation, is_directory=False)
                created += 1

    return RetroReport(
        function=function,
        granularity=granularity,
        entries_created=created,
        contributors=index.all_authors(),
        commits_scanned=index.commits_scanned,
    )


def retrofit(
    repo: Repository,
    granularity: Granularity = "directory",
    url: Optional[str] = None,
    message: str = "Add retroactive citations",
    timestamp: Optional[datetime] = None,
) -> RetroReport:
    """Make an existing repository citation-enabled at its current HEAD.

    Builds the retroactive citation function, writes ``citation.cite`` to the
    working tree and commits it.  The repository's history is left untouched
    (the paper's open question of rewriting *past* versions is out of scope);
    from this commit onward the GitCite tools manage the file as usual.
    """
    from repro.citation.citefile import dump_citation_bytes

    report = build_retroactive_function(repo, granularity=granularity, url=url)
    repo.write_file(CITATION_FILE_PATH, dump_citation_bytes(report.function))
    repo.commit(message, timestamp=timestamp)
    return report
