"""Propagating file and directory renames into the citation function.

Section 2 of the paper: *"if a file or directory in the active domain of the
citation function is moved or renamed then the citation function must be
modified to reflect the file or directory's path in the new version."*

Renames arrive from two sources:

* explicit move operations performed through the manager or the CLI, which
  know the old and new paths directly; and
* a :class:`~repro.vcs.diff.TreeDiff` between two versions, whose rename
  detection pairs deleted paths with added paths.

Both reduce to :func:`propagate_renames`, which also infers *directory*
renames from the file renames it is given (moving ``/old/a.py → /new/a.py``
and ``/old/b.py → /new/b.py`` should carry a citation attached to ``/old``
over to ``/new``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.citation.function import CitationFunction
from repro.errors import InvalidPathError
from repro.utils.paths import ROOT, path_parent, relative_to
from repro.vcs.diff import TreeDiff

__all__ = ["RenamePropagation", "propagate_renames", "propagate_diff"]


@dataclass
class RenamePropagation:
    """Which citation entries moved as a result of rename propagation."""

    moved: dict[str, str] = field(default_factory=dict)
    directory_moves: dict[str, str] = field(default_factory=dict)

    @property
    def moved_count(self) -> int:
        return len(self.moved)


def _infer_directory_moves(renames: Mapping[str, str]) -> dict[str, str]:
    """Infer directory-level moves implied by a set of file renames.

    A directory ``D`` is considered moved to ``D'`` when every renamed file
    under ``D`` kept its relative path under ``D'``.  Only the deepest common
    pattern is needed: citations attached to any ancestor directory whose
    entire renamed content moved consistently should follow.
    """
    candidates: dict[str, set[str]] = {}
    for old_path, new_path in renames.items():
        old_parent = path_parent(old_path)
        while old_parent != ROOT:
            try:
                suffix = relative_to(old_path, old_parent)
            except InvalidPathError:  # pragma: no cover - defensive, old_parent is an ancestor by construction
                break
            if new_path.endswith("/" + suffix):
                new_parent = new_path[: -(len(suffix) + 1)] or ROOT
                candidates.setdefault(old_parent, set()).add(new_parent)
            else:
                candidates.setdefault(old_parent, set()).add("")  # inconsistent
            old_parent = path_parent(old_parent)
    moves: dict[str, str] = {}
    for old_dir, targets in candidates.items():
        targets.discard("")
        if len(targets) == 1:
            target = next(iter(targets))
            if target != old_dir and target != ROOT:
                moves[old_dir] = target
    return moves


def propagate_renames(
    function: CitationFunction,
    renames: Mapping[str, str],
    infer_directories: bool = True,
) -> RenamePropagation:
    """Apply ``{old path: new path}`` renames to the citation function in place."""
    result = RenamePropagation()
    for old_path, new_path in sorted(renames.items()):
        if function.rename(old_path, new_path):
            result.moved[old_path] = new_path
    if infer_directories:
        directory_moves = _infer_directory_moves(renames)
        for old_dir, new_dir in sorted(directory_moves.items()):
            entry = function.entry(old_dir)
            if entry is None:
                continue
            # Only move the directory entry itself; entries below it that were
            # explicitly renamed have been handled above, and entries that were
            # not renamed still refer to files at their old location.
            if function.rename(old_dir, new_dir):
                result.moved[old_dir] = new_dir
                result.directory_moves[old_dir] = new_dir
    return result


def propagate_diff(function: CitationFunction, diff: TreeDiff) -> RenamePropagation:
    """Propagate the renames detected by a tree diff into the citation function."""
    return propagate_renames(function, diff.renames())
