"""Consistency checking between a citation function and a project version.

The model of Section 2 imposes structural invariants on the pair (tree,
citation function):

* the root must be in the active domain (otherwise ``Cite`` is partial);
* every cited path must exist in the version's tree — after deletes, merges
  and copies the citation file must not refer to vanished files ("the
  citation function associated with the new version must be made consistent
  with the new directory structure and the files retained in the new
  version");
* an entry flagged as a directory must actually be a directory in the tree,
  and vice versa;
* citation records themselves must be well-formed (this is enforced at
  construction time by :class:`~repro.citation.record.Citation`, so checking
  is only needed when reading foreign files).

:func:`check_consistency` reports violations; :func:`repair` applies the
obvious fixes (drop orphans, fix directory flags, install a root citation if
one is supplied).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.citation.function import CitationFunction
from repro.citation.record import Citation
from repro.utils.paths import ROOT

__all__ = ["Violation", "ConsistencyReport", "check_consistency", "repair"]

MISSING_ROOT = "missing-root"
ORPHAN_PATH = "orphan-path"
WRONG_KIND = "wrong-kind"


@dataclass(frozen=True)
class Violation:
    """One detected inconsistency."""

    kind: str
    path: str
    detail: str


@dataclass
class ConsistencyReport:
    """All violations found in one check."""

    violations: list[Violation] = field(default_factory=list)

    @property
    def is_consistent(self) -> bool:
        return not self.violations

    def by_kind(self, kind: str) -> list[Violation]:
        return [violation for violation in self.violations if violation.kind == kind]

    def paths(self) -> list[str]:
        return sorted({violation.path for violation in self.violations})


def check_consistency(
    function: CitationFunction,
    file_paths: set[str],
    directory_paths: set[str],
) -> ConsistencyReport:
    """Check a citation function against the version's files and directories.

    ``file_paths`` and ``directory_paths`` are canonical paths of the files
    and directories present in the version (the root is always treated as
    present).
    """
    report = ConsistencyReport()
    directories = set(directory_paths) | {ROOT}
    files = set(file_paths)

    if not function.has_root:
        report.violations.append(
            Violation(kind=MISSING_ROOT, path=ROOT, detail="the root has no citation entry")
        )

    for entry in function:
        if entry.path == ROOT:
            continue
        in_files = entry.path in files
        in_dirs = entry.path in directories
        if not in_files and not in_dirs:
            report.violations.append(
                Violation(
                    kind=ORPHAN_PATH,
                    path=entry.path,
                    detail="cited path does not exist in this version",
                )
            )
        elif entry.is_directory and not in_dirs:
            report.violations.append(
                Violation(
                    kind=WRONG_KIND,
                    path=entry.path,
                    detail="entry is marked as a directory but the path is a file",
                )
            )
        elif not entry.is_directory and not in_files:
            report.violations.append(
                Violation(
                    kind=WRONG_KIND,
                    path=entry.path,
                    detail="entry is marked as a file but the path is a directory",
                )
            )
    report.violations.sort(key=lambda violation: (violation.path, violation.kind))
    return report


def repair(
    function: CitationFunction,
    file_paths: set[str],
    directory_paths: set[str],
    root_citation: Optional[Citation] = None,
) -> ConsistencyReport:
    """Fix the violations that have an unambiguous repair, in place.

    * orphan entries are dropped;
    * wrong-kind entries have their directory flag corrected;
    * a missing root citation is installed from ``root_citation`` when given.

    Returns the report of violations that were found *before* repair, so the
    caller can log what changed; re-running :func:`check_consistency`
    afterwards shows what (if anything) remains.
    """
    report = check_consistency(function, file_paths, directory_paths)
    directories = set(directory_paths) | {ROOT}
    for violation in report.violations:
        if violation.kind == ORPHAN_PATH:
            function.discard(violation.path)
        elif violation.kind == WRONG_KIND:
            entry = function.entry(violation.path)
            if entry is not None:
                function.discard(violation.path)
                function.put(
                    violation.path, entry.citation, is_directory=violation.path in directories
                )
        elif violation.kind == MISSING_ROOT and root_citation is not None:
            function.put(ROOT, root_citation, is_directory=True)
    return report
