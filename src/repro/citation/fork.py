"""ForkCite: forking a repository while carrying its citations.

Section 3 of the paper: *"ForkCite copies a version of a repository, along
with its history, and creates a new repository.  The citations in
'citation.cite' are also copied.  Our way of storing citations will naturally
enable ForkCite through GitHub's Fork."*

Because ``citation.cite`` lives inside the tree of every version, forking the
repository (copying its objects and references) automatically carries every
citation function of every version — nothing needs to be rewritten.  What a
fork *adds* is provenance: the new repository has a new owner and URL, so the
fork's subsequent root citations should describe the fork while the citation
of imported content keeps crediting the original authors.  ``fork_citation``
builds that new root citation from the original one.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Optional

from repro.citation.function import CitationFunction
from repro.citation.record import Citation
from repro.utils.paths import ROOT

__all__ = ["ForkCiteMetadata", "fork_citation"]


@dataclass(frozen=True)
class ForkCiteMetadata:
    """Descriptive metadata of a fork operation."""

    source_owner: str
    source_repo: str
    source_commit: str
    new_owner: str
    new_repo: str
    forked_at: datetime


def fork_citation(
    original_root: Citation,
    new_owner: str,
    new_repo_name: str,
    new_url: str,
    forked_at: datetime,
    fork_commit_id: Optional[str] = None,
) -> Citation:
    """Build the root citation of a fork from the original root citation.

    The fork's root citation points at the new owner/repository/URL but keeps
    the original author list (credit is preserved), and records the fork's
    origin in the ``forkedFrom`` extra field so downstream citations can
    trace provenance.
    """
    origin = f"{original_root.owner}/{original_root.repo_name}@{original_root.commit_id}"
    return Citation(
        repo_name=new_repo_name,
        owner=new_owner,
        committed_date=forked_at,
        commit_id=fork_commit_id or original_root.commit_id,
        url=new_url,
        authors=original_root.authors or (original_root.owner,),
        doi=original_root.doi,
        version=original_root.version,
        license=original_root.license,
        title=original_root.title,
        description=original_root.description,
        swhid=original_root.swhid,
        extra=(("forkedFrom", origin),),
    )


def rewrite_fork_root(
    function: CitationFunction,
    new_root: Citation,
) -> CitationFunction:
    """Return a copy of ``function`` whose root citation is ``new_root``.

    All non-root entries (including ones imported earlier by CopyCite) are
    preserved unchanged, so imported code keeps crediting its original
    authors after the fork.
    """
    updated = function.copy()
    updated.put(ROOT, new_root, is_directory=True)
    return updated
