"""The citation manager: GitCite's local executable tool as a library.

A :class:`CitationManager` binds the pure citation model (functions,
operators, merge/copy/fork algorithms) to one
:class:`~repro.vcs.repository.Repository`.  It owns the ``citation.cite``
file of the working tree and keeps it up to date as a *side-effect* of the
operations the user performs, exactly as Section 3 prescribes: users never
edit the file directly; AddCite/DelCite/ModifyCite, renames, CopyCite,
MergeCite and ForkCite all rewrite it, and the next commit snapshots it.

The manager is the API surface the CLI (:mod:`repro.cli`), the examples and
the benchmark harness are built on.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from datetime import datetime
from typing import Iterator, Mapping, Optional

from repro.errors import CitationConflictError, CitationFileError, MergeConflictError, VCSError
from repro.citation.citefile import (
    CITATION_FILE_NAME,
    CITATION_FILE_PATH,
    dump_citation_bytes,
    load_citation_bytes,
)
from repro.citation.conflict import ConflictStrategy
from repro.citation.consistency import ConsistencyReport, check_consistency, repair
from repro.citation.copy import CopyCiteResult, copy_citations
from repro.citation.fork import fork_citation, rewrite_fork_root
from repro.citation.function import CitationFunction, ResolvedCitation
from repro.citation.merge import MergeCiteResult, merge_citation_functions
from repro.citation.operators import (
    AddCite,
    DelCite,
    GenCite,
    ModifyCite,
    OperationLog,
    apply_operation,
)
from repro.citation.record import Citation
from repro.citation.rename import propagate_renames
from repro.utils.hashing import short_id
from repro.utils.paths import ROOT, is_ancestor, normalize_path, path_parent
from repro.utils.timeutil import now_utc
from repro.vcs.objects import Signature
from repro.vcs.remote import fork_repository
from repro.vcs.repository import Repository
from repro.vcs.treeops import lookup_path
from repro.vcs.worktree_state import WorktreeState

__all__ = ["CitationManager", "MergeCiteOutcome", "CopyCiteOutcome"]


@dataclass(frozen=True)
class MergeCiteOutcome:
    """The result of a MergeCite: the merge commit plus the citation merge details."""

    commit_oid: str
    citation_result: MergeCiteResult
    file_conflicts_resolved: tuple[str, ...]


@dataclass(frozen=True)
class CopyCiteOutcome:
    """The result of a CopyCite: which files were copied and how citations migrated."""

    copied_files: tuple[str, ...]
    citation_result: CopyCiteResult
    source: str
    destination: str


#: Upper bound on distinct parsed ``citation.cite`` blobs kept per manager.
_PARSE_CACHE_LIMIT = 128


class CitationManager:
    """Manage the citation function of a repository's working tree.

    Persistence is write-through by default: every operator rewrites
    ``citation.cite`` immediately, exactly as the paper's local tool does.
    Bulk workloads can suspend that with :meth:`batch` (or ``autosave=False``
    plus explicit :meth:`flush`), which defers serialisation until the batch
    exits — the final file bytes are identical to the write-through ones.

    Committed versions' citation functions are memoised by the blob oid of
    their ``citation.cite``.  The store is content-addressed, so a cached
    parse can never go stale; repeated ``cite(path, ref)``, MergeCite and
    consistency checks stop re-parsing the same bytes.
    """

    def __init__(
        self, repo: Repository, url_base: str = "https://github.com", autosave: bool = True
    ) -> None:
        self.repo = repo
        self.url_base = url_base.rstrip("/")
        self.log = OperationLog()
        self._function: Optional[CitationFunction] = None
        self.autosave = autosave
        self._batch_depth = 0
        self._dirty = False
        self._deferred_disk_state: Optional[bytes] = None
        self._function_generation = repo.worktree_generation
        self._parse_cache: dict[str, CitationFunction] = {}

    # ------------------------------------------------------------------
    # Citation file plumbing
    # ------------------------------------------------------------------

    @property
    def repository_url(self) -> str:
        """The URL recorded in generated citations for this repository."""
        return f"{self.url_base}/{self.repo.owner}/{self.repo.name}"

    def default_root_citation(
        self,
        authors: tuple[str, ...] | list[str] | None = None,
        timestamp: Optional[datetime] = None,
        commit_id: Optional[str] = None,
        **extra_fields,
    ) -> Citation:
        """Build the default root citation from repository metadata.

        The commit id and date describe the version being cited; they default
        to the current HEAD (or, for a repository with no commits yet, to the
        supplied/ current timestamp and a placeholder id that
        :meth:`refresh_root_citation` later replaces).
        """
        head = self.repo.head_oid()
        head_commit = self.repo.head_commit()
        when = timestamp or (head_commit.committer.timestamp if head_commit else now_utc())
        title = extra_fields.pop("title", self.repo.description or None)
        return Citation(
            repo_name=self.repo.name,
            owner=self.repo.owner,
            committed_date=when,
            commit_id=commit_id or (short_id(head) if head else "0000000"),
            url=self.repository_url,
            authors=tuple(authors) if authors else (self.repo.owner,),
            title=title,
            **extra_fields,
        )

    @property
    def is_enabled(self) -> bool:
        """Whether the working tree currently carries a ``citation.cite`` file."""
        return self.repo.file_exists(CITATION_FILE_PATH)

    def init_citations(
        self,
        root_citation: Optional[Citation] = None,
        overwrite: bool = False,
    ) -> CitationFunction:
        """Citation-enable the working tree by creating ``citation.cite``.

        The file initially contains only the mandatory root citation ("All
        versions have a default citation attached to the root", Section 2).
        """
        if self.is_enabled and not overwrite:
            raise CitationFileError(
                "repository is already citation-enabled; pass overwrite=True to reset it"
            )
        function = self._install_function(
            CitationFunction.with_root(root_citation or self.default_root_citation())
        )
        self._save()
        return function

    def citation_function(self) -> CitationFunction:
        """The citation function of the current working tree (cached)."""
        if (
            self._function is not None
            and not self._dirty
            and self._function_generation != self.repo.worktree_generation
        ):
            # The working tree was replaced (checkout / merge) since the
            # cache was filled; deferred state would have been discarded by
            # the reload hook, so a clean cache is simply re-read.
            self._function = None
        if self._function is None:
            if not self.is_enabled:
                raise CitationFileError(
                    f"repository {self.repo.full_name} has no {CITATION_FILE_NAME}; "
                    "run init_citations() (or the retrofit tool) first"
                )
            worktree = self.repo.worktree
            if isinstance(worktree, WorktreeState) and worktree.is_stored(CITATION_FILE_PATH):
                # Clean checkout-primed file: parse through the blob-oid
                # cache instead of materialising the working-tree bytes — a
                # lazily checked-out citation.cite stays unread, and
                # switching back to an already-parsed version costs a copy,
                # not a parse.
                blob_oid = worktree.fingerprint(CITATION_FILE_PATH)
                self._install_function(
                    self._parse_cached(blob_oid, self.repo.store).copy()
                )
            else:
                self._install_function(
                    load_citation_bytes(self.repo.read_file(CITATION_FILE_PATH))
                )
        return self._function

    def _install_function(self, function: CitationFunction) -> CitationFunction:
        self._function = function
        self._function_generation = self.repo.worktree_generation
        return function

    def reload(self) -> CitationFunction:
        """Drop the cache and re-read ``citation.cite`` from the working tree.

        Unflushed in-memory changes (``autosave=False`` or an open
        :meth:`batch`) are discarded, matching the method's contract of
        reflecting what is actually on disk.
        """
        self._function = None
        self._clear_dirty()
        return self.citation_function()

    def _save(self) -> None:
        """Persist the in-memory citation function (deferred inside a batch)."""
        if self._function is None:
            return
        if self._batch_depth > 0 or not self.autosave:
            if not self._dirty:
                self._dirty = True
                # While deferred state exists, any commit — even one issued
                # directly on the repository — must flush it first, and any
                # checkout must discard it (it describes the previous
                # worktree).  Both hooks live exactly as long as the
                # dirtiness does.
                self.repo.register_pre_commit_hook(self.flush)
                self.repo.register_worktree_reload_hook(self._discard_deferred)
            # Remember what the on-disk file looked like at the latest
            # deferred operation: a *raw* rewrite arriving after it must win
            # over the deferral, exactly as it would under write-through.
            self._deferred_disk_state = self.repo.worktree.get(CITATION_FILE_PATH)
            return
        self._write_citation_file()

    def _write_citation_file(self) -> None:
        """Write the in-memory citation function back to the working tree."""
        if self._function is None:
            return
        self.repo.write_file(CITATION_FILE_PATH, dump_citation_bytes(self._function))
        self._clear_dirty()

    def _clear_dirty(self) -> None:
        if self._dirty:
            self._dirty = False
            self.repo.unregister_pre_commit_hook(self.flush)
            self.repo.unregister_worktree_reload_hook(self._discard_deferred)

    def _discard_deferred(self) -> None:
        """Drop deferred state when the working tree is replaced wholesale.

        Matches write-through semantics: those writes would have landed in
        the *previous* worktree and been discarded by the checkout; they
        must never flush over a different version's ``citation.cite``.
        """
        self._function = None
        self._clear_dirty()

    def flush(self) -> None:
        """Write any deferred citation changes to the working tree now.

        If ``citation.cite`` was rewritten underneath the deferral (a raw
        ``repo.write_file``), the later write wins and the deferred state is
        discarded — the ordering write-through persistence would produce.
        """
        if not self._dirty:
            return
        current = self.repo.worktree.get(CITATION_FILE_PATH)
        if current is not self._deferred_disk_state and current != self._deferred_disk_state:
            self._discard_deferred()
            return
        self._write_citation_file()

    @contextmanager
    def batch(self) -> Iterator["CitationManager"]:
        """Defer ``citation.cite`` writes until the outermost batch exits.

        Operators inside the batch mutate only the in-memory function; one
        serialisation happens on exit (even on error, so the file reflects
        the operations that did succeed — exactly the state write-through
        persistence would have left behind).  Batches nest; :meth:`commit`
        inside a batch still flushes first, since a commit must snapshot the
        current function.
        """
        self._batch_depth += 1
        try:
            yield self
        finally:
            self._batch_depth -= 1
            if self._batch_depth == 0:
                self.flush()

    def _function_at(self, ref: str) -> CitationFunction:
        """The parsed citation function at ``ref`` — shared cache instance.

        Callers must treat the result as read-only; mutating it would corrupt
        the cache.  Public callers go through :meth:`citation_function_at`,
        which returns a copy.
        """
        try:
            blob_oid = self.repo.blob_oid_at(ref, CITATION_FILE_PATH)
        except VCSError as exc:
            raise CitationFileError(
                f"version {ref!r} of {self.repo.full_name} has no {CITATION_FILE_NAME}"
            ) from exc
        return self._parse_cached(blob_oid, self.repo.store)

    def _parse_cached(self, blob_oid: str, store) -> CitationFunction:
        """Parse the ``citation.cite`` blob, memoised by its content oid.

        Content addressing makes the key universal: blobs from *any* store
        (e.g. a CopyCite source repository) share one cache entry per
        distinct content.
        """
        # Pop-and-reinsert keeps the dict ordered least-recently-used first,
        # so eviction drops cold entries and hot blobs (HEAD) stay warm.
        cached = self._parse_cache.pop(blob_oid, None)
        if cached is None:
            cached = load_citation_bytes(store.get_blob(blob_oid).data)
            while len(self._parse_cache) >= _PARSE_CACHE_LIMIT:
                self._parse_cache.pop(next(iter(self._parse_cache)))
        self._parse_cache[blob_oid] = cached
        return cached

    def citation_function_at(self, ref: str) -> CitationFunction:
        """The citation function stored in a committed version."""
        return self._function_at(ref).copy()

    # ------------------------------------------------------------------
    # The user-facing operators (AddCite / DelCite / ModifyCite / GenCite)
    # ------------------------------------------------------------------

    def add_cite(self, path: str, citation: Citation) -> None:
        """Attach a citation to a path of the working tree (AddCite)."""
        is_directory = self._is_directory(path)
        result = apply_operation(
            self.citation_function(),
            AddCite(path=path, citation=citation, is_directory=is_directory),
        )
        self.log.record(result)
        self._save()

    def del_cite(self, path: str) -> None:
        """Remove the explicit citation of a path (DelCite)."""
        result = apply_operation(self.citation_function(), DelCite(path=path))
        self.log.record(result)
        self._save()

    def modify_cite(self, path: str, citation: Citation) -> None:
        """Replace the explicit citation of a path (ModifyCite)."""
        result = apply_operation(self.citation_function(), ModifyCite(path=path, citation=citation))
        self.log.record(result)
        self._save()

    def gen_cite(self, path: str) -> ResolvedCitation:
        """Generate the citation of a path from the working tree (GenCite)."""
        result = apply_operation(self.citation_function(), GenCite(path=path))
        self.log.record(result)
        assert result.resolved is not None
        return result.resolved

    def cite(self, path: str, ref: Optional[str] = None) -> ResolvedCitation:
        """Evaluate ``Cite(V,P)(path)`` for the working tree or a committed version."""
        if ref is None:
            return self.citation_function().resolve(path)
        return self._function_at(ref).resolve(path)

    def cite_chain(self, path: str, ref: Optional[str] = None) -> list[ResolvedCitation]:
        """The alternative all-ancestors interpretation of ``Cite`` (Section 2)."""
        function = self.citation_function() if ref is None else self._function_at(ref)
        return function.resolve_chain(path)

    def refresh_root_citation(self, timestamp: Optional[datetime] = None) -> Citation:
        """Re-point the root citation at the current HEAD commit.

        Typically called after a release commit so that subsequently generated
        citations reference the released version's commit id and date.
        """
        head = self.repo.head_oid()
        if head is None:
            raise CitationFileError("cannot refresh the root citation: the repository has no commits")
        head_commit = self.repo.store.get_commit(head)
        function = self.citation_function()
        updated = function.root_citation().with_changes(
            commit_id=short_id(head),
            committed_date=timestamp or head_commit.committer.timestamp,
        )
        function.put(ROOT, updated, is_directory=True)
        self._save()
        return updated

    # ------------------------------------------------------------------
    # File operations that must keep the citation function consistent
    # ------------------------------------------------------------------

    def write_file(self, path: str, data: bytes | str) -> str:
        """Write a file through the manager (no citation side-effects needed).

        A raw write that targets ``citation.cite`` itself drops the cached
        in-memory function (and any deferred, unflushed state), so the next
        read reflects the bytes just written instead of a stale parse.
        """
        canonical = self.repo.write_file(path, data)
        if canonical == CITATION_FILE_PATH:
            self._function = None
            self._clear_dirty()
        return canonical

    def move_file(self, source: str, destination: str) -> None:
        """Move/rename a file and carry its citation to the new path."""
        self.repo.move_file(source, destination)
        propagate_renames(self.citation_function(), {normalize_path(source): normalize_path(destination)})
        self._save()

    def move_directory(self, source: str, destination: str) -> dict[str, str]:
        """Move/rename a directory and re-root the citations underneath it."""
        moves = self.repo.move_directory(source, destination)
        function = self.citation_function()
        function.rename_prefix(normalize_path(source), normalize_path(destination))
        self._save()
        return moves

    def remove_file(self, path: str) -> None:
        """Delete a file and drop its (now orphaned) citation entry, if any."""
        self.repo.remove_file(path)
        self.citation_function().discard(path)
        self._save()

    def remove_directory(self, path: str) -> list[str]:
        """Delete a directory and drop every citation entry underneath it."""
        removed = self.repo.remove_directory(path)
        function = self.citation_function()
        canonical = normalize_path(path)
        for entry in function.entries_under(canonical, include_prefix=True):
            if entry.path != ROOT:
                function.discard(entry.path)
        self._save()
        return removed

    # ------------------------------------------------------------------
    # Committing
    # ------------------------------------------------------------------

    def commit(
        self,
        message: Optional[str] = None,
        author: Optional[Signature] = None,
        author_name: Optional[str] = None,
        timestamp: Optional[datetime] = None,
        allow_empty: bool = False,
    ) -> str:
        """Commit the working tree (including the maintained ``citation.cite``)."""
        self._save()
        self.flush()  # a commit must snapshot the current function, batched or not
        resolved_message = message or self.log.summary()
        oid = self.repo.commit(
            resolved_message,
            author=author,
            author_name=author_name,
            timestamp=timestamp,
            allow_empty=allow_empty,
        )
        self.log.clear()
        return oid

    # ------------------------------------------------------------------
    # CopyCite
    # ------------------------------------------------------------------

    def copy_cite(
        self,
        source_repo: Repository,
        source_path: str,
        destination_path: str,
        source_ref: str = "HEAD",
    ) -> CopyCiteOutcome:
        """Copy a directory from another repository version and migrate citations.

        The files of ``source_path`` in ``source_ref`` of ``source_repo`` are
        copied into the local working tree under ``destination_path``; the
        source version's citations for that subtree are added to the local
        ``citation.cite`` with their keys re-rooted (Section 3, CopyCite).
        """
        source_root = normalize_path(source_path)
        destination_root = normalize_path(destination_path)
        snapshot = source_repo.snapshot(source_ref)
        selected = {
            path: data
            for path, data in snapshot.items()
            if path == source_root or is_ancestor(source_root, path)
        }
        if not selected:
            raise VCSError(
                f"{source_repo.full_name}@{source_ref} has no directory {source_root!r} to copy"
            )
        copied: list[str] = []
        for path, data in sorted(selected.items()):
            if path == source_root:
                # Copying a single file: keep its name under the destination.
                target = destination_root
            else:
                suffix = path[len(source_root):].lstrip("/")
                target = normalize_path(f"{destination_root}/{suffix}")
            if target == CITATION_FILE_PATH:
                continue
            self.repo.write_file(target, data)
            copied.append(target)

        try:
            source_blob_oid = source_repo.blob_oid_at(source_ref, CITATION_FILE_PATH)
            # Read-only use: copy_citations mutates only the destination.
            # Memoised by content oid, so repeated CopyCite from the same
            # source version parses its citation.cite once.
            source_function = self._parse_cached(source_blob_oid, source_repo.store)
        except (VCSError, CitationFileError):
            # No (or unparseable) source citation file: degrade to a plain
            # file copy, as the seed behaviour did.
            source_function = None

        if source_function is not None:
            citation_result = copy_citations(
                source_function, source_root, self.citation_function(), destination_root
            )
        else:
            citation_result = CopyCiteResult()
        self._save()
        return CopyCiteOutcome(
            copied_files=tuple(copied),
            citation_result=citation_result,
            source=f"{source_repo.full_name}:{source_root}@{source_ref}",
            destination=destination_root,
        )

    # ------------------------------------------------------------------
    # MergeCite
    # ------------------------------------------------------------------

    def merge_cite(
        self,
        other_ref: str,
        strategy: Optional[ConflictStrategy] = None,
        message: Optional[str] = None,
        author: Optional[Signature] = None,
        timestamp: Optional[datetime] = None,
        file_resolutions: Optional[Mapping[str, bytes]] = None,
    ) -> MergeCiteOutcome:
        """Merge another branch, merging citation functions the GitCite way.

        Ordinary files are merged with the substrate's Git-style three-way
        rules (content conflicts must be settled through
        ``file_resolutions``); ``citation.cite`` is *never* content-merged —
        the two citation functions are united, entries for paths dropped by
        the file merge are deleted, and value conflicts go through
        ``strategy`` (unresolved ones raise :class:`CitationConflictError`).
        """
        prepared = self.repo.prepare_merge(other_ref)
        if prepared.theirs_oid == prepared.ours_oid or prepared.base_oid == prepared.theirs_oid:
            # Nothing to merge; the citation function is already current.
            return MergeCiteOutcome(
                commit_oid=prepared.ours_oid,
                citation_result=MergeCiteResult(function=self.citation_function().copy()),
                file_conflicts_resolved=(),
            )

        # Shared cache instances: merge_citation_functions reads but never
        # mutates its inputs, so no defensive copies are needed here.
        ours_function = self._function_at("HEAD")
        theirs_function = self._function_at(other_ref)
        base_function: Optional[CitationFunction] = None
        if prepared.base_oid is not None:
            try:
                base_function = self._function_at(prepared.base_oid)
            except CitationFileError:
                base_function = None

        # Which paths survive the Git file merge (plus their directories).
        merged_file_paths = {
            path for path in prepared.result.files if path != CITATION_FILE_PATH
        }
        if file_resolutions:
            merged_file_paths.update(normalize_path(p) for p in file_resolutions)
        surviving = set(merged_file_paths)
        for path in merged_file_paths:
            parent = path_parent(path)
            while parent != ROOT:
                surviving.add(parent)
                parent = path_parent(parent)

        citation_result = merge_citation_functions(
            ours=ours_function,
            theirs=theirs_function,
            base=base_function,
            surviving_paths=surviving,
            strategy=strategy,
        )
        if citation_result.has_unresolved:
            raise CitationConflictError([c.path for c in citation_result.unresolved])

        # File-level conflicts on citation.cite are irrelevant (we overwrite it),
        # so they are auto-resolved with the merged citation file's bytes.
        resolutions: dict[str, bytes] = {}
        if file_resolutions:
            resolutions.update({normalize_path(p): v for p, v in file_resolutions.items()})
        merged_bytes = dump_citation_bytes(citation_result.function)
        resolutions.setdefault(CITATION_FILE_PATH, merged_bytes)

        try:
            outcome = self.repo.merge(
                other_ref,
                message=message or f"MergeCite {other_ref}",
                author=author,
                timestamp=timestamp,
                resolutions=resolutions,
                extra_files={CITATION_FILE_PATH: merged_bytes},
                allow_fast_forward=False,
            )
        except MergeConflictError as exc:
            raise MergeConflictError(
                [path for path in exc.conflicts if path != CITATION_FILE_PATH]
            ) from exc

        self._install_function(citation_result.function)
        self._save()
        return MergeCiteOutcome(
            commit_oid=outcome.commit_oid,
            citation_result=citation_result,
            file_conflicts_resolved=outcome.conflicts_resolved,
        )

    # ------------------------------------------------------------------
    # ForkCite
    # ------------------------------------------------------------------

    def fork_cite(
        self,
        new_owner: str,
        new_name: Optional[str] = None,
        timestamp: Optional[datetime] = None,
        commit_fork_metadata: bool = True,
    ) -> "CitationManager":
        """Fork the repository, carrying all citations, and return the fork's manager.

        The fork's history (and therefore every version's ``citation.cite``)
        is identical to the original.  When ``commit_fork_metadata`` is true a
        follow-up commit records the fork's own root citation (new owner and
        URL, original authors preserved, provenance in ``forkedFrom``).
        """
        forked_repo = fork_repository(self.repo, new_owner=new_owner, new_name=new_name)
        fork_manager = CitationManager(forked_repo, url_base=self.url_base)
        if not fork_manager.is_enabled or not commit_fork_metadata:
            return fork_manager
        when = timestamp or now_utc()
        original_root = fork_manager.citation_function().root_citation()
        new_root = fork_citation(
            original_root,
            new_owner=new_owner,
            new_repo_name=forked_repo.name,
            new_url=f"{self.url_base}/{new_owner}/{forked_repo.name}",
            forked_at=when,
            fork_commit_id=short_id(forked_repo.head_oid()) if forked_repo.head_oid() else None,
        )
        fork_manager._install_function(
            rewrite_fork_root(fork_manager.citation_function(), new_root)
        )
        fork_manager._save()
        fork_manager.commit(
            message=f"ForkCite from {self.repo.full_name}",
            author_name=new_owner,
            timestamp=when,
        )
        return fork_manager

    # ------------------------------------------------------------------
    # Consistency
    # ------------------------------------------------------------------

    def _worktree_paths(self) -> tuple[set[str], set[str]]:
        # Both queries come straight off the indexed worktree's maintained
        # path/directory indexes — no per-call re-derivation.  Note that a
        # checkout replaces the WorktreeState *object* (the indexes travel
        # with the content), so worktree-derived state must be re-read per
        # call or tracked via ``Repository.worktree_generation``, exactly as
        # this manager's function cache does — never by holding a reference
        # to ``repo.worktree`` across operations.
        files = set(self.repo.worktree)
        files.discard(CITATION_FILE_PATH)
        directories = set(self.repo.list_directories())
        directories.discard(ROOT)
        return files, directories

    def validate(self) -> ConsistencyReport:
        """Check the working tree's citation function against its files."""
        files, directories = self._worktree_paths()
        return check_consistency(self.citation_function(), files, directories)

    def repair(self) -> ConsistencyReport:
        """Apply the unambiguous consistency repairs to the working tree's function."""
        files, directories = self._worktree_paths()
        report = repair(
            self.citation_function(), files, directories, root_citation=self.default_root_citation()
        )
        self._save()
        return report

    # ------------------------------------------------------------------
    # Internal helpers
    # ------------------------------------------------------------------

    def _is_directory(self, path: str) -> bool:
        canonical = normalize_path(path)
        if canonical == ROOT:
            return True
        if self.repo.file_exists(canonical):
            return False
        if self.repo.directory_exists(canonical):
            return True
        # Fall back to the committed tree (the path may only exist in HEAD).
        head = self.repo.head_oid()
        if head is not None:
            tree_oid = self.repo.store.get_commit(head).tree_oid
            resolved = lookup_path(self.repo.store, tree_oid, canonical)
            if resolved is not None:
                return resolved[1] == "040000"
        raise VCSError(f"path does not exist in the working tree: {canonical!r}")
