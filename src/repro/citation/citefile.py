"""Reading and writing the ``citation.cite`` file.

Section 3 of the paper: *"we add a special file, 'citation.cite', to the root
of each version of a project.  The file is a set of key-value entries, where
the key is the relative path to the file being cited, and the value is the
citation attached to the file."*

The on-disk format is a JSON object.  Keys follow Listing 1's conventions:

* the project root is the key ``"/"``;
* directory keys end with a trailing ``"/"``;
* file keys do not.

The file is written with sorted keys and a stable layout so that identical
citation functions always serialise to identical bytes — the property that
makes the scenario reproduction (and the VCS object ids of commits that
snapshot the file) deterministic.
"""

from __future__ import annotations

import json
from collections import Counter
from typing import Any, Mapping

from repro.errors import CitationFileError
from repro.citation.function import CitationEntry, CitationFunction
from repro.citation.record import Citation
from repro.errors import InvalidCitationError, InvalidPathError
from repro.utils.jsonutil import stable_loads
from repro.utils.paths import ROOT, is_dir_key, normalize_path, to_citation_key

__all__ = [
    "CITATION_FILE_NAME",
    "CITATION_FILE_PATH",
    "dumps_citation_file",
    "loads_citation_file",
    "dump_citation_bytes",
    "load_citation_bytes",
]

#: The file name used at the root of every version.
CITATION_FILE_NAME = "citation.cite"

#: The canonical repository path of the citation file.
CITATION_FILE_PATH = "/" + CITATION_FILE_NAME


def dumps_citation_file(function: CitationFunction, indent: int = 2) -> str:
    """Serialise a citation function to the ``citation.cite`` text format."""
    payload: dict[str, Any] = {}
    for entry in function.to_entries():
        key = to_citation_key(entry.path, entry.is_directory)
        payload[key] = entry.citation.to_dict()
    return json.dumps(payload, indent=indent, sort_keys=True, ensure_ascii=False) + "\n"


def dump_citation_bytes(function: CitationFunction) -> bytes:
    """Serialise a citation function to UTF-8 bytes (what gets committed)."""
    return dumps_citation_file(function).encode("utf-8")


def loads_citation_file(text: str) -> CitationFunction:
    """Parse ``citation.cite`` text into a :class:`CitationFunction`.

    Raises
    ------
    CitationFileError
        If the text is not a JSON object, a key is not a valid repository
        path, or an entry value is not a valid citation.
    """
    try:
        payload = stable_loads(text)
    except (ValueError, UnicodeDecodeError) as exc:
        raise CitationFileError(f"citation.cite is not valid JSON: {exc}") from exc
    if not isinstance(payload, Mapping):
        raise CitationFileError("citation.cite must contain a JSON object at the top level")
    entries: list[CitationEntry] = []
    for raw_key, value in payload.items():
        if not isinstance(raw_key, str):
            raise CitationFileError(f"citation.cite key is not a string: {raw_key!r}")
        if not isinstance(value, Mapping):
            raise CitationFileError(f"citation.cite entry for {raw_key!r} is not an object")
        directory = raw_key == ROOT or is_dir_key(raw_key)
        try:
            path = normalize_path(raw_key)
            citation = Citation.from_dict(value)
        except (InvalidPathError, InvalidCitationError) as exc:
            raise CitationFileError(f"invalid citation.cite entry for key {raw_key!r}: {exc}") from exc
        entries.append(CitationEntry(path=path, citation=citation, is_directory=directory))
    counts = Counter(entry.path for entry in entries)
    duplicates = sorted(path for path, count in counts.items() if count > 1)
    if duplicates:
        raise CitationFileError(
            f"citation.cite contains duplicate keys after normalisation: {duplicates}"
        )
    return CitationFunction.from_entries(entries)


def load_citation_bytes(data: bytes) -> CitationFunction:
    """Parse ``citation.cite`` bytes (UTF-8) into a :class:`CitationFunction`."""
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CitationFileError(f"citation.cite is not valid UTF-8: {exc}") from exc
    return loads_citation_file(text)
