"""Seeded synthetic workloads for the scalability and ablation benchmarks.

The paper reports no quantitative evaluation, so the EXTRA-* experiments in
DESIGN.md define the workloads a systems reader would expect: synthetic
project trees of controlled size and depth, citation functions of controlled
density, branch pairs with controlled conflict rates, and operator traces.
Everything is driven by :class:`random.Random` seeded from the workload
configuration, so benchmark runs are reproducible.

The fault-injection additions (PR 6) extend the same discipline to failure
testing: :func:`generate_fault_schedule` deals every member of a simulated
fleet its own deterministic :class:`FaultEvent` list — which failpoint dies,
on which hit, with which action — so a durability sweep over many clients
replays bit-identically from one seed.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from datetime import datetime, timedelta, timezone
from typing import Literal, Optional

from repro import faults
from repro.citation.function import CitationFunction
from repro.citation.manager import CitationManager
from repro.citation.operators import AddCite, DelCite, GenCite, ModifyCite
from repro.citation.record import Citation
from repro.errors import TransportError
from repro.utils.paths import ROOT, path_parent
from repro.vcs.repository import Repository

__all__ = [
    "WorkloadConfig",
    "SyntheticWorkload",
    "BranchPairWorkload",
    "FaultEvent",
    "FleetFaultSchedule",
    "ServeKillEvent",
    "ServeChaosSchedule",
    "STORAGE_FAILPOINTS",
    "WIRE_FAILPOINTS",
    "SERVE_FAILPOINTS",
    "generate_tree_paths",
    "generate_citation",
    "generate_citation_function",
    "generate_repository",
    "generate_branch_pair",
    "generate_operation_trace",
    "generate_history",
    "generate_fault_schedule",
    "generate_serve_chaos_schedule",
]

_FIRST_NAMES = ("Ada", "Chen", "Dana", "Edgar", "Grace", "Leshang", "Susan", "Wei", "Yinjun", "Yan")
_LAST_NAMES = ("Chen", "Davidson", "Hu", "Li", "Lovelace", "Silvello", "Turing", "Wu", "Zhou", "Codd")
_DIR_WORDS = ("core", "lib", "gui", "docs", "schema", "query", "engine", "tests", "tools", "data")
_FILE_WORDS = ("parser", "planner", "index", "view", "rewrite", "buffer", "log", "driver", "model", "utils")
_EXTENSIONS = (".py", ".sql", ".md", ".json", ".txt")

_EPOCH = datetime(2018, 1, 1, tzinfo=timezone.utc)


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a synthetic workload."""

    seed: int = 7
    num_files: int = 100
    max_depth: int = 4
    branching: int = 5
    citation_density: float = 0.1
    num_authors: int = 6
    file_size_bytes: int = 200

    def rng(self) -> random.Random:
        return random.Random(self.seed)


@dataclass
class SyntheticWorkload:
    """A generated repository, its manager and bookkeeping for assertions."""

    config: WorkloadConfig
    repo: Repository
    manager: CitationManager
    file_paths: list[str]
    cited_paths: list[str]

    @property
    def citation_function(self) -> CitationFunction:
        return self.manager.citation_function()


@dataclass
class BranchPairWorkload:
    """Two diverged branches with controlled citation overlap and conflicts."""

    repo: Repository
    manager: CitationManager
    base_commit: str
    ours_branch: str
    theirs_branch: str
    conflicting_paths: list[str]
    ours_only_paths: list[str]
    theirs_only_paths: list[str]


# ---------------------------------------------------------------------------
# Primitive generators
# ---------------------------------------------------------------------------


def _author_name(rng: random.Random) -> str:
    return f"{rng.choice(_FIRST_NAMES)} {rng.choice(_LAST_NAMES)}"


def generate_tree_paths(
    rng: random.Random, num_files: int, max_depth: int = 4, branching: int = 5
) -> list[str]:
    """Generate ``num_files`` distinct canonical file paths forming a tree."""
    directories: list[str] = [ROOT]
    paths: set[str] = set()
    while len(paths) < num_files:
        parent = rng.choice(directories)
        depth = parent.count("/") if parent != ROOT else 0
        if depth < max_depth and len(directories) < max(2, num_files // branching) and rng.random() < 0.3:
            name = f"{rng.choice(_DIR_WORDS)}_{len(directories)}"
            directory = (parent.rstrip("/") + "/" + name) if parent != ROOT else "/" + name
            directories.append(directory)
            continue
        file_name = f"{rng.choice(_FILE_WORDS)}_{len(paths)}{rng.choice(_EXTENSIONS)}"
        path = (parent.rstrip("/") + "/" + file_name) if parent != ROOT else "/" + file_name
        paths.add(path)
    return sorted(paths)


def generate_citation(
    rng: random.Random,
    repo_name: str = "synthetic",
    owner: Optional[str] = None,
    commit_id: Optional[str] = None,
    when: Optional[datetime] = None,
) -> Citation:
    """Generate a plausible citation record."""
    owner = owner or _author_name(rng)
    when = when or (_EPOCH + timedelta(minutes=rng.randrange(0, 500000)))
    authors = tuple({_author_name(rng) for _ in range(rng.randint(1, 3))}) or (owner,)
    return Citation(
        repo_name=repo_name,
        owner=owner,
        committed_date=when,
        commit_id=commit_id or f"{rng.randrange(16**7):07x}",
        url=f"https://github.com/{owner.replace(' ', '').lower()}/{repo_name}",
        authors=tuple(sorted(authors)),
        version=f"v{rng.randint(0, 3)}.{rng.randint(0, 9)}.{rng.randint(0, 9)}",
    )


def generate_citation_function(
    rng: random.Random,
    file_paths: list[str],
    density: float,
    repo_name: str = "synthetic",
) -> tuple[CitationFunction, list[str]]:
    """Build a citation function over ``file_paths`` with the given density.

    Density is the fraction of *nodes* (files and directories, excluding the
    root) that receive an explicit citation.  Returns the function and the
    list of cited paths (excluding the root).
    """
    function = CitationFunction.with_root(generate_citation(rng, repo_name=repo_name))
    directories = sorted({p for path in file_paths for p in _ancestor_dirs(path)})
    nodes = [p for p in (file_paths + directories) if p != ROOT]
    target = int(len(nodes) * density)
    cited = rng.sample(nodes, min(target, len(nodes))) if target else []
    directory_set = set(directories)
    for path in cited:
        function.put(path, generate_citation(rng, repo_name=repo_name), path in directory_set)
    return function, sorted(cited)


def _ancestor_dirs(path: str) -> list[str]:
    dirs = []
    parent = path_parent(path)
    while parent != ROOT:
        dirs.append(parent)
        parent = path_parent(parent)
    return dirs


# ---------------------------------------------------------------------------
# Repository-level generators
# ---------------------------------------------------------------------------


def generate_repository(config: WorkloadConfig) -> SyntheticWorkload:
    """Generate a citation-enabled repository matching ``config``."""
    rng = config.rng()
    repo = Repository.init(f"synthetic-{config.seed}", _author_name(rng).replace(" ", ""))
    file_paths = generate_tree_paths(rng, config.num_files, config.max_depth, config.branching)
    for path in file_paths:
        content = "".join(rng.choice("abcdefghij \n") for _ in range(config.file_size_bytes))
        repo.write_file(path, content)
    repo.commit("synthetic content", timestamp=_EPOCH)
    manager = CitationManager(repo)
    manager.init_citations(
        manager.default_root_citation(authors=[_author_name(rng) for _ in range(config.num_authors)])
    )
    directories = sorted({d for p in file_paths for d in _ancestor_dirs(p)})
    nodes = file_paths + directories
    target = int(len(nodes) * config.citation_density)
    cited = sorted(rng.sample(nodes, min(target, len(nodes)))) if target else []
    directory_set = set(directories)
    for path in cited:
        manager.citation_function().put(
            path, generate_citation(rng, repo_name=repo.name), path in directory_set
        )
    manager._save()
    manager.commit("attach synthetic citations", timestamp=_EPOCH + timedelta(hours=1))
    return SyntheticWorkload(
        config=config, repo=repo, manager=manager, file_paths=file_paths, cited_paths=cited
    )


def generate_history(
    workload: SyntheticWorkload, num_commits: int, edits_per_commit: int = 3
) -> list[str]:
    """Extend a synthetic repository with a chain of editing commits."""
    rng = random.Random(workload.config.seed + 1)
    commits = []
    for index in range(num_commits):
        for _ in range(edits_per_commit):
            path = rng.choice(workload.file_paths)
            workload.repo.write_file(path, f"revision {index} of {path}\n")
        commits.append(
            workload.repo.commit(
                f"synthetic edit {index}",
                author_name=_author_name(rng),
                timestamp=_EPOCH + timedelta(days=1, minutes=index),
            )
        )
    return commits


def generate_branch_pair(
    config: WorkloadConfig,
    citations_per_branch: int = 20,
    conflict_fraction: float = 0.25,
) -> BranchPairWorkload:
    """Create two branches whose citation functions overlap and conflict.

    ``conflict_fraction`` of the cited paths receive *different* citations on
    the two branches (same key, different value — the conflicts MergeCite
    must resolve); the rest are split between the branches.
    """
    workload = generate_repository(config)
    rng = random.Random(config.seed + 2)
    repo, manager = workload.repo, workload.manager
    base_commit = repo.head_oid()
    assert base_commit is not None

    candidates = [p for p in workload.file_paths if p not in set(workload.cited_paths)]
    rng.shuffle(candidates)
    needed = min(2 * citations_per_branch, len(candidates))
    pool = candidates[:needed]
    num_conflicts = int(citations_per_branch * conflict_fraction)
    conflicting = pool[:num_conflicts]
    remaining = pool[num_conflicts:]
    half = (len(remaining)) // 2
    ours_only = remaining[:half][: citations_per_branch - num_conflicts]
    theirs_only = remaining[half:][: citations_per_branch - num_conflicts]

    ours_branch, theirs_branch = "ours-work", "theirs-work"
    repo.create_branch(ours_branch)
    repo.create_branch(theirs_branch)

    repo.checkout(ours_branch)
    manager.reload()
    for path in conflicting + ours_only:
        manager.add_cite(path, generate_citation(rng, repo_name=repo.name, owner="Ours Team"))
    repo.write_file("/OURS.md", "ours branch marker\n")
    manager.commit("ours branch citations", timestamp=_EPOCH + timedelta(days=2))

    repo.checkout(theirs_branch)
    manager.reload()
    for path in conflicting + theirs_only:
        manager.add_cite(path, generate_citation(rng, repo_name=repo.name, owner="Theirs Team"))
    repo.write_file("/THEIRS.md", "theirs branch marker\n")
    manager.commit("theirs branch citations", timestamp=_EPOCH + timedelta(days=3))

    repo.checkout(ours_branch)
    manager.reload()
    return BranchPairWorkload(
        repo=repo,
        manager=manager,
        base_commit=base_commit,
        ours_branch=ours_branch,
        theirs_branch=theirs_branch,
        conflicting_paths=sorted(conflicting),
        ours_only_paths=sorted(ours_only),
        theirs_only_paths=sorted(theirs_only),
    )


# ---------------------------------------------------------------------------
# Fleet fault schedules
# ---------------------------------------------------------------------------

#: Failpoints on the durable-write path (see :mod:`repro.utils.atomicio`).
STORAGE_FAILPOINTS = (
    "pack.idx",
    "pack.midx",
    "pack.repack",
    "state.save",
    "storage.flush",
    "storage.write",
)

#: Failpoints on the transfer path (REST wire plus the bundle pipeline).
WIRE_FAILPOINTS = (
    "bundle.apply",
    "bundle.read",
    "wire.request",
    "wire.response",
)

#: The action kinds each failpoint can meaningfully carry: durable writes
#: honour the full payload semantics; ``bundle.read`` is a data point whose
#: damaged bytes the checksums must catch; the remaining wire points are
#: pure control points (crash or raise).
#: Failpoints on the serving hub's durability path (PR 8): the write-ahead
#: journal append and the per-record replay during serve-startup recovery.
SERVE_FAILPOINTS = (
    "journal.append",
    "serve.recover",
)

_FAILPOINT_ACTIONS: dict[str, tuple[str, ...]] = {
    **{name: ("crash", "truncate", "flip") for name in STORAGE_FAILPOINTS},
    "bundle.read": ("crash", "error", "truncate", "flip"),
    "bundle.apply": ("crash", "error"),
    "wire.request": ("crash", "error"),
    "wire.response": ("crash", "error"),
    # The journal append honours full payload semantics (torn frame,
    # silently flipped byte); replay is a pure control point.
    "journal.append": ("crash", "truncate", "flip", "error"),
    "serve.recover": ("crash", "error"),
}


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *this* fleet member dies *here*, *this* way."""

    member: int
    failpoint: str
    action: str
    #: 1-based hit index of ``failpoint`` at which the action triggers.
    at: int
    #: ``truncate``: payload bytes allowed through before the torn stop.
    keep: int = 0
    #: ``flip``: byte offset corrupted in the payload.
    offset: int = 0

    def arm(self, error=None):
        """Arm this event in the process-global fault registry (once).

        ``error`` overrides the exception factory for ``error`` actions;
        the default models a dropped connection (:class:`TransportError`),
        which is what the retrying transport is expected to absorb.
        """
        kwargs: dict = {"at": self.at, "times": 1}
        if self.action == "truncate":
            kwargs["keep"] = self.keep
        elif self.action == "flip":
            kwargs["offset"] = self.offset
        elif self.action == "error":
            failpoint = self.failpoint
            kwargs["error"] = error or (
                lambda: TransportError(f"injected fault at {failpoint}")
            )
        return faults.arm(self.failpoint, action=self.action, **kwargs)


@dataclass(frozen=True)
class FleetFaultSchedule:
    """A deterministic deal of fault events across a simulated fleet."""

    seed: int
    fleet_size: int
    events: tuple[FaultEvent, ...]

    def for_member(self, member: int) -> tuple[FaultEvent, ...]:
        return tuple(event for event in self.events if event.member == member)


def generate_fault_schedule(
    config: WorkloadConfig,
    fleet_size: int = 4,
    faults_per_member: int = 2,
    failpoints: Optional[tuple[str, ...]] = None,
    max_hit: int = 4,
    max_keep: int = 64,
    max_offset: int = 512,
    seed_offset: int = 4,
) -> FleetFaultSchedule:
    """Deal every fleet member ``faults_per_member`` deterministic faults.

    A durability sweep runs the same workload once per member, arming that
    member's events before the run and asserting recovery afterwards; the
    whole fleet — sites, hit indexes, torn-write lengths, flipped offsets —
    replays identically from ``config.seed``.
    """
    rng = random.Random(config.seed + seed_offset)
    sites = failpoints or (STORAGE_FAILPOINTS + WIRE_FAILPOINTS)
    unknown = [site for site in sites if site not in _FAILPOINT_ACTIONS]
    if unknown:
        raise ValueError(f"unknown failpoints: {unknown}")
    events = []
    for member in range(fleet_size):
        for _ in range(faults_per_member):
            failpoint = rng.choice(sites)
            events.append(FaultEvent(
                member=member,
                failpoint=failpoint,
                action=rng.choice(_FAILPOINT_ACTIONS[failpoint]),
                at=rng.randint(1, max_hit),
                keep=rng.randint(0, max_keep),
                offset=rng.randint(0, max_offset),
            ))
    return FleetFaultSchedule(seed=config.seed, fleet_size=fleet_size, events=tuple(events))


@dataclass(frozen=True)
class ServeKillEvent:
    """One restart cycle of a process-level serve chaos run.

    The harness pushes until ``after_acks`` acknowledgements landed, then
    kills the serving process — either from outside (``sigkill``, the
    honest ``kill -9``) or from inside (``failpoint``: a
    :class:`~repro.faults.SimulatedCrash` armed in the subprocess via
    ``GITCITE_SERVE_FAULTS``, which ``gitcite serve`` turns into a hard
    ``os._exit``).  Either way the next round restarts the server and
    asserts every acknowledged push survived.
    """

    round: int
    #: Kill once this many pushes of the round were acknowledged.
    after_acks: int
    kind: str  # "sigkill" | "failpoint"
    failpoint: str = ""
    #: Hit index for the env-armed failpoint ("failpoint" kind only).
    at: int = 1

    def env_entry(self) -> Optional[str]:
        """The ``GITCITE_SERVE_FAULTS`` entry arming this event, if any."""
        if self.kind != "failpoint":
            return None
        return f"{self.failpoint}:crash:{self.at}"


@dataclass(frozen=True)
class ServeChaosSchedule:
    """A deterministic deal of kill points across serve restart cycles."""

    seed: int
    rounds: tuple[ServeKillEvent, ...]


def generate_serve_chaos_schedule(
    config: WorkloadConfig,
    rounds: int = 3,
    max_acks_between_kills: int = 3,
    seed_offset: int = 8,
) -> ServeChaosSchedule:
    """Deal ``rounds`` deterministic kill events for a serve chaos run.

    Rounds alternate deterministically between external ``SIGKILL`` and the
    in-process serve failpoints, and the whole schedule — kill points, hit
    indexes — replays identically from ``config.seed``.
    """
    rng = random.Random(config.seed + seed_offset)
    events = []
    for index in range(rounds):
        kind = rng.choice(("sigkill", "failpoint"))
        failpoint = rng.choice(SERVE_FAILPOINTS) if kind == "failpoint" else ""
        events.append(ServeKillEvent(
            round=index,
            after_acks=rng.randint(1, max_acks_between_kills),
            kind=kind,
            failpoint=failpoint,
            at=rng.randint(1, 2),
        ))
    return ServeChaosSchedule(seed=config.seed, rounds=tuple(events))


# ---------------------------------------------------------------------------
# Operator traces
# ---------------------------------------------------------------------------

OperationKind = Literal["add", "delete", "modify", "generate"]

DEFAULT_MIX: dict[OperationKind, float] = {
    "add": 0.3,
    "modify": 0.2,
    "delete": 0.1,
    "generate": 0.4,
}


def generate_operation_trace(
    workload: SyntheticWorkload,
    num_operations: int,
    mix: Optional[dict[OperationKind, float]] = None,
    seed_offset: int = 3,
):
    """Generate a replayable list of citation operations against a workload.

    The trace is *valid by construction*: AddCite only targets paths without
    an explicit citation at that point of the trace, DelCite/ModifyCite only
    target paths with one (and never the root).
    """
    rng = random.Random(workload.config.seed + seed_offset)
    mix = mix or DEFAULT_MIX
    kinds, weights = zip(*sorted(mix.items()))
    cited = set(workload.cited_paths)
    uncited = [p for p in workload.file_paths if p not in cited]
    operations = []
    for _ in range(num_operations):
        kind = rng.choices(kinds, weights=weights, k=1)[0]
        if kind == "add" and uncited:
            path = uncited.pop(rng.randrange(len(uncited)))
            operations.append(AddCite(path=path, citation=generate_citation(rng)))
            cited.add(path)
        elif kind == "modify" and cited:
            path = rng.choice(sorted(cited))
            operations.append(ModifyCite(path=path, citation=generate_citation(rng)))
        elif kind == "delete" and cited:
            path = rng.choice(sorted(cited))
            operations.append(DelCite(path=path))
            cited.discard(path)
            uncited.append(path)
        else:
            path = rng.choice(workload.file_paths)
            operations.append(GenCite(path=path))
    return operations
