"""Deterministic builders for the paper's own scenarios.

Three scenarios are reproduced:

* :func:`build_running_example` — the right half of Figure 1: project ``P1``
  with versions ``V1`` (initial, root citation ``C1``), ``V2`` (AddCite
  attaches ``C2`` to ``f1``), project ``P2`` whose version ``V3`` carries the
  root citation ``C3`` and a subtree citation ``C4``; CopyCite brings that
  subtree into a branch of ``P1`` producing ``V4``; MergeCite merges ``V2``
  and ``V4`` into ``V5``.
* :func:`build_demo_scenario` — the Section 4 demonstration: Yinjun Wu's
  ``Data_citation_demo`` (CiteDB) repository, with the CoreCover query
  rewriting code imported from Chen Li's ``alu01-corecover`` via CopyCite and
  the GUI developed by the student Yanssie on a branch and MergeCite'd back —
  ending in exactly the ``citation.cite`` entries of Listing 1.
* :func:`build_extension_scenario` — the Figure 2 setting: the demo
  repository hosted on the platform, one member token (the owner) and one
  non-member token (an outside researcher).

All builders use fixed timestamps and author identities so repeated runs
produce byte-identical ``citation.cite`` files.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime

from repro.citation.citefile import CITATION_FILE_PATH, loads_citation_file
from repro.citation.conflict import TheirsStrategy
from repro.citation.function import CitationFunction
from repro.citation.manager import CitationManager, MergeCiteOutcome
from repro.citation.record import Citation
from repro.hub.api import RestApi
from repro.hub.server import HostingPlatform
from repro.utils.timeutil import parse_timestamp
from repro.vcs.repository import Repository

__all__ = [
    "RunningExample",
    "DemoScenario",
    "ExtensionScenario",
    "LISTING1_EXPECTED_KEYS",
    "build_running_example",
    "build_demo_scenario",
    "build_extension_scenario",
]


def _ts(text: str) -> datetime:
    return parse_timestamp(text)


# ---------------------------------------------------------------------------
# Figure 1 running example
# ---------------------------------------------------------------------------


@dataclass
class RunningExample:
    """The repositories, versions and citations of Figure 1 (right half)."""

    p1: Repository
    p2: Repository
    manager_p1: CitationManager
    manager_p2: CitationManager
    v1: str
    v2: str
    v3: str
    v4: str
    v5: str
    c1: Citation
    c2: Citation
    c3: Citation
    c4: Citation
    copied_subtree: str
    merge_outcome: MergeCiteOutcome


def build_running_example() -> RunningExample:
    """Recreate the Figure 1 running example step by step."""
    # ----- Project P1, version V1: a small tree with only the root cited (C1).
    p1 = Repository.init("P1", "Leshang", description="Running example project P1")
    p1.write_file("f1.py", "def f1():\n    return 1\n")
    p1.write_file("lib/util.py", "def helper():\n    return 'util'\n")
    p1.write_file("lib/io.py", "def read():\n    return b''\n")
    p1.commit("V1: initial tree", author_name="Leshang", timestamp=_ts("2019-01-01T10:00:00Z"))
    manager_p1 = CitationManager(p1)
    c1 = manager_p1.default_root_citation(
        authors=("Leshang",), timestamp=_ts("2019-01-01T10:00:00Z")
    ).with_changes(license="115490")
    manager_p1.init_citations(c1)
    v1 = manager_p1.commit("V1: attach default root citation C1",
                           author_name="Leshang", timestamp=_ts("2019-01-01T10:05:00Z"))

    # ----- Version V2: AddCite attaches C2 to the leftmost leaf f1.
    c2 = c1.with_changes(
        authors=("Leshang", "Susan"),
        committed_date=_ts("2019-01-02T09:00:00Z"),
        title="The f1 module of P1",
    )
    manager_p1.add_cite("/f1.py", c2)
    v2 = manager_p1.commit("V2: AddCite C2 on f1",
                           author_name="Leshang", timestamp=_ts("2019-01-02T09:00:00Z"))

    # ----- Project P2, version V3: root cited with C3, subtree root cited with C4,
    #       f2 inside the subtree has no explicit citation (it inherits C4).
    p2 = Repository.init("P2", "Susan", description="Running example project P2")
    p2.write_file("green/f2.py", "def f2():\n    return 2\n")
    p2.write_file("green/nested/f3.py", "def f3():\n    return 3\n")
    p2.write_file("docs/notes.md", "notes\n")
    p2.commit("V3: initial tree", author_name="Susan", timestamp=_ts("2019-01-03T12:00:00Z"))
    manager_p2 = CitationManager(p2)
    c3 = manager_p2.default_root_citation(
        authors=("Susan",), timestamp=_ts("2019-01-03T12:00:00Z")
    ).with_changes(license="256497")
    manager_p2.init_citations(c3)
    c4 = c3.with_changes(
        authors=("Susan", "A. Contributor"),
        title="The green subtree of P2",
        committed_date=_ts("2019-01-03T12:30:00Z"),
    )
    manager_p2.add_cite("/green", c4)
    v3 = manager_p2.commit("V3: root citation C3, subtree citation C4",
                           author_name="Susan", timestamp=_ts("2019-01-03T12:30:00Z"))

    # ----- Version V4: on a branch of P1 (from V1), CopyCite the green subtree of V3.
    p1.create_branch("import-green", at=v1)
    p1.checkout("import-green")
    manager_p1.reload()
    manager_p1.copy_cite(p2, "/green", "/green", source_ref=v3)
    v4 = manager_p1.commit("V4: CopyCite green subtree from P2@V3",
                           author_name="Leshang", timestamp=_ts("2019-01-04T15:00:00Z"))

    # ----- Version V5: MergeCite V2 (main) and V4 (import-green).
    p1.checkout("main")
    manager_p1.reload()
    merge_outcome = manager_p1.merge_cite(
        "import-green",
        strategy=TheirsStrategy(),
        message="V5: MergeCite V2 and V4",
        timestamp=_ts("2019-01-05T16:00:00Z"),
    )
    v5 = merge_outcome.commit_oid

    return RunningExample(
        p1=p1,
        p2=p2,
        manager_p1=manager_p1,
        manager_p2=manager_p2,
        v1=v1,
        v2=v2,
        v3=v3,
        v4=v4,
        v5=v5,
        c1=c1,
        c2=c2,
        c3=c3,
        c4=c4,
        copied_subtree="/green",
        merge_outcome=merge_outcome,
    )


# ---------------------------------------------------------------------------
# Listing 1 demonstration scenario
# ---------------------------------------------------------------------------

#: The keys Listing 1 shows in the final citation.cite of the demo repository.
LISTING1_EXPECTED_KEYS = ("/", "/CoreCover/", "/citation/GUI/")

#: The exact field values of Listing 1 (whitespace of the paper's typesetting removed).
LISTING1_EXPECTED_ENTRIES: dict[str, dict] = {
    "/": {
        "repoName": "Data_citation_demo",
        "owner": "Yinjun Wu",
        "committedDate": "2018-09-04T02:35:20Z",
        "commitID": "bbd248a",
        "url": "https://github.com/thuwuyinjun/Data_citation_demo",
        "authorList": ["Yinjun Wu"],
    },
    "/CoreCover/": {
        "repoName": "alu01-corecover",
        "owner": "Chen Li",
        "committedDate": "2018-03-24T00:29:45Z",
        "commitID": "5cc951e",
        "url": "https://github.com/chenlica/alu01-corecover",
        "authorList": ["Chen Li"],
    },
    "/citation/GUI/": {
        "repoName": "Data_citation_demo",
        "owner": "Yinjun Wu",
        "committedDate": "2017-06-16T20:57:06Z",
        "commitID": "2dd6813",
        "url": "https://github.com/thuwuyinjun/Data_citation_demo",
        "authorList": ["Yanssie"],
    },
}


@dataclass
class DemoScenario:
    """The Section 4 demonstration: the CiteDB repository with its citations."""

    citedb: Repository
    corecover: Repository
    manager: CitationManager
    corecover_manager: CitationManager
    final_commit: str
    citation_file_text: str
    citation_function: CitationFunction


def build_demo_scenario() -> DemoScenario:
    """Recreate the CiteDB demonstration repository and its Listing 1 citation file."""
    # ----- Chen Li's CoreCover implementation (the remote project CopyCite imports).
    corecover = Repository.init(
        "alu01-corecover", "Chen Li", description="Implementation of the CoreCover algorithm"
    )
    corecover.write_file("CoreCover/corecover.py", "# CoreCover query rewriting using views\n")
    corecover.write_file("CoreCover/lattice.py", "# lattice construction\n")
    corecover.write_file("CoreCover/tests/test_rewrite.py", "def test_rewrite():\n    assert True\n")
    corecover.write_file("README.md", "# alu01-corecover\n")
    corecover.commit(
        "CoreCover implementation", author_name="Chen Li", timestamp=_ts("2018-03-24T00:29:45Z")
    )
    corecover_manager = CitationManager(corecover)
    corecover_root = Citation.from_dict(LISTING1_EXPECTED_ENTRIES["/CoreCover/"])
    corecover_manager.init_citations(corecover_root)
    corecover_manager.commit(
        "Enable citations", author_name="Chen Li", timestamp=_ts("2018-03-24T00:30:00Z")
    )

    # ----- Yinjun Wu's Data_citation_demo (CiteDB) repository.
    citedb = Repository.init(
        "Data_citation_demo",
        "Yinjun Wu",
        description="Demonstration Code for Data Citation (CiteDB)",
    )
    citedb.write_file("citation/query_processor.py", "# CiteDB query processing\n")
    citedb.write_file("citation/citation_builder.py", "# builds citations for query results\n")
    citedb.write_file("schema/eagle_i.sql", "-- eagle-i schema\n")
    citedb.write_file("README.md", "# Data citation demo\n")
    citedb.commit(
        "Initial CiteDB code", author_name="Yinjun Wu", timestamp=_ts("2017-06-01T09:00:00Z")
    )
    manager = CitationManager(citedb)
    root_citation = Citation.from_dict(LISTING1_EXPECTED_ENTRIES["/"])
    manager.init_citations(root_citation)
    manager.commit(
        "Enable citations", author_name="Yinjun Wu", timestamp=_ts("2017-06-02T09:00:00Z")
    )

    # ----- The summer student Yanssie develops the GUI on a separate branch.
    citedb.create_branch("gui-development")
    citedb.checkout("gui-development")
    manager.reload()
    citedb.write_file("citation/GUI/main_window.py", "# CiteDB demo GUI main window\n")
    citedb.write_file("citation/GUI/result_view.py", "# shows query results with citations\n")
    gui_citation = Citation.from_dict(LISTING1_EXPECTED_ENTRIES["/citation/GUI/"])
    manager.add_cite("/citation/GUI", gui_citation)
    manager.commit(
        "GUI for the CiteDB demo", author_name="Yanssie", timestamp=_ts("2017-06-16T20:57:06Z")
    )

    # ----- Meanwhile the main branch evolves (so the merge is a real merge).
    citedb.checkout("main")
    manager.reload()
    citedb.write_file("citation/query_processor.py", "# CiteDB query processing (optimised)\n")
    manager.commit(
        "Optimise query processing", author_name="Yinjun Wu", timestamp=_ts("2017-07-01T10:00:00Z")
    )

    # ----- CopyCite: import CoreCover from Chen Li's repository.
    manager.copy_cite(corecover, "/CoreCover", "/CoreCover")
    manager.commit(
        "CopyCite CoreCover from chenlica/alu01-corecover",
        author_name="Yinjun Wu",
        timestamp=_ts("2018-03-25T11:00:00Z"),
    )

    # ----- MergeCite: merge the GUI branch back into main.
    manager.merge_cite(
        "gui-development",
        strategy=TheirsStrategy(),
        message="MergeCite gui-development into main",
        timestamp=_ts("2018-08-30T14:00:00Z"),
    )

    # ----- Final state: the root citation reflects the released version of Listing 1.
    final_commit = manager.commit(
        "Release: final demonstration state",
        author_name="Yinjun Wu",
        timestamp=_ts("2018-09-04T02:35:20Z"),
        allow_empty=True,
    )

    text = citedb.file_text(CITATION_FILE_PATH)
    return DemoScenario(
        citedb=citedb,
        corecover=corecover,
        manager=manager,
        corecover_manager=corecover_manager,
        final_commit=final_commit,
        citation_file_text=text,
        citation_function=loads_citation_file(text),
    )


# ---------------------------------------------------------------------------
# Figure 2 extension scenario
# ---------------------------------------------------------------------------


@dataclass
class ExtensionScenario:
    """The hosted setting of the Figure 2 browser-extension walkthrough."""

    platform: HostingPlatform
    api: RestApi
    slug: str
    owner_login: str
    member_token: str
    non_member_token: str
    demo: DemoScenario


def build_extension_scenario() -> ExtensionScenario:
    """Host the demo repository and create a member and a non-member account."""
    demo = build_demo_scenario()
    platform = HostingPlatform()
    platform.register_user("thuwuyinjun", name="Yinjun Wu")
    platform.register_user("reader", name="Outside Researcher")
    # Host the repositories under their owners' platform logins (the display
    # names used inside citations stay "Yinjun Wu" / "Chen Li").
    hosted_repo = demo.citedb
    hosted_repo.owner = "thuwuyinjun"
    platform.host_repository(hosted_repo)
    demo.corecover.owner = "chenlica"
    platform.host_repository(demo.corecover)
    member_token = platform.issue_token("thuwuyinjun").value
    non_member_token = platform.issue_token("reader").value
    return ExtensionScenario(
        platform=platform,
        api=RestApi(platform),
        slug="thuwuyinjun/Data_citation_demo",
        owner_login="thuwuyinjun",
        member_token=member_token,
        non_member_token=non_member_token,
        demo=demo,
    )
