"""Workload builders: the paper's scenarios plus synthetic generators.

* :mod:`scenarios` — deterministic builders for the paper's own artifacts:
  the Figure 1 running example (projects P1/P2, versions V1–V5, citations
  C1–C4), the Listing 1 demonstration scenario (the CiteDB repository with
  its CopyCite'd CoreCover subtree and MergeCite'd GUI branch), and the
  hosted setting used by the Figure 2 browser-extension walkthrough.
* :mod:`generator` — seeded synthetic repositories, citation functions,
  branch pairs, operation traces and fleet fault schedules used by the
  scalability, ablation and durability benchmarks (the paper itself reports
  no numbers, so these define the workloads for the EXTRA-* experiments in
  DESIGN.md).
"""

from repro.workloads.generator import (
    FaultEvent,
    FleetFaultSchedule,
    ServeChaosSchedule,
    ServeKillEvent,
    SyntheticWorkload,
    WorkloadConfig,
    generate_branch_pair,
    generate_citation,
    generate_fault_schedule,
    generate_operation_trace,
    generate_repository,
    generate_serve_chaos_schedule,
    generate_tree_paths,
)
from repro.workloads.scenarios import (
    LISTING1_EXPECTED_KEYS,
    DemoScenario,
    ExtensionScenario,
    RunningExample,
    build_demo_scenario,
    build_extension_scenario,
    build_running_example,
)

__all__ = [
    "FaultEvent",
    "FleetFaultSchedule",
    "ServeChaosSchedule",
    "ServeKillEvent",
    "SyntheticWorkload",
    "WorkloadConfig",
    "generate_branch_pair",
    "generate_citation",
    "generate_fault_schedule",
    "generate_operation_trace",
    "generate_repository",
    "generate_serve_chaos_schedule",
    "generate_tree_paths",
    "LISTING1_EXPECTED_KEYS",
    "DemoScenario",
    "ExtensionScenario",
    "RunningExample",
    "build_demo_scenario",
    "build_extension_scenario",
    "build_running_example",
]
