"""``failpoint-coverage`` — the fault registry, its sites and its tests agree.

The crash-sweep suite is only exhaustive if three sets line up:

* **declared** — the canonical names in ``repro.faults._CANONICAL`` plus
  every ``faults.register("...")`` literal in the tree;
* **fired** — each declared name must have at least one instrumentation
  site: a literal (or a module constant bound from ``register``) passed
  to ``fire()`` / ``corrupt()`` / ``consume()``, or threaded as a
  ``failpoint="..."`` argument / parameter default into the atomicio
  helpers;
* **armed** — each declared name must be armed by at least one test:
  a literal first argument to ``faults.arm`` / ``faults.armed``, a
  ``failpoint="..."`` keyword (fault-schedule events), or membership in
  a *sweep module* — a test file that arms a non-literal name while
  enumerating the registry (``all_hits``/``registered_failpoints``),
  which by construction covers every name the scenario fires.

A declared name nobody fires is dead instrumentation; a fired name
nobody arms is an untested crash point; a fired name nobody declared is
a typo that silently never triggers.  All three fail the build.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Project, SourceFile, rule

_FIRE_FUNCS = {"fire", "corrupt", "consume"}
_ARM_FUNCS = {"arm", "armed"}


def _called_name(node: ast.Call) -> str | None:
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _str_const(node: ast.AST | None) -> str | None:
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value
    return None


def _declared(project: Project) -> dict[str, tuple[str, int]]:
    """``{failpoint: (rel path, line)}`` of every declared name."""
    declared: dict[str, tuple[str, int]] = {}
    for source in project.sources():
        if source.module == f"{project.package}.faults":
            for node in ast.walk(source.tree):
                if (
                    isinstance(node, ast.Assign)
                    and any(
                        isinstance(t, ast.Name) and t.id == "_CANONICAL"
                        for t in node.targets
                    )
                    and isinstance(node.value, (ast.Tuple, ast.List))
                ):
                    for element in node.value.elts:
                        name = _str_const(element)
                        if name:
                            declared[name] = (source.rel, element.lineno)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call) and _called_name(node) == "register" and node.args:
                name = _str_const(node.args[0])
                if name and name not in declared:
                    declared[name] = (source.rel, node.lineno)
    return declared


def _register_constants(source: SourceFile) -> dict[str, str]:
    """Module constants bound from ``faults.register("...")`` calls."""
    constants: dict[str, str] = {}
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and _called_name(node.value) == "register"
            and node.value.args
        ):
            name = _str_const(node.value.args[0])
            if name:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        constants[target.id] = name
    return constants


def _fired(project: Project) -> dict[str, list[tuple[str, int]]]:
    """``{failpoint: [(rel path, line), ...]}`` of instrumentation sites."""
    fired: dict[str, list[tuple[str, int]]] = {}

    def note(name: str | None, source: SourceFile, line: int) -> None:
        if name:
            fired.setdefault(name, []).append((source.rel, line))

    for source in project.sources():
        if source.module == f"{project.package}.faults":
            continue  # the registry itself is not an instrumentation site
        constants = _register_constants(source)
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Call):
                called = _called_name(node)
                if called in _FIRE_FUNCS and node.args:
                    argument = node.args[0]
                    name = _str_const(argument)
                    if name is None and isinstance(argument, ast.Name):
                        name = constants.get(argument.id)
                    note(name, source, node.lineno)
                for keyword in node.keywords:
                    if keyword.arg == "failpoint":
                        note(_str_const(keyword.value), source, node.lineno)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                # ``def flush(..., failpoint: str = "storage.flush")`` threads
                # the name into atomicio at every call site.
                arguments = node.args
                positional = arguments.posonlyargs + arguments.args
                defaults = arguments.defaults
                for arg, default in zip(positional[len(positional) - len(defaults):], defaults):
                    if arg.arg == "failpoint":
                        note(_str_const(default), source, node.lineno)
                for arg, default in zip(arguments.kwonlyargs, arguments.kw_defaults):
                    if default is not None and arg.arg == "failpoint":
                        note(_str_const(default), source, node.lineno)
    return fired


def _armed(project: Project) -> tuple[dict[str, list[tuple[str, int]]], list[str]]:
    """Literal arms per name, plus sweep modules that cover every name."""
    armed: dict[str, list[tuple[str, int]]] = {}
    sweep_modules: list[str] = []
    for source in project.test_sources():
        dynamic_arm = False
        enumerates = False
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Name) and node.id in ("all_hits", "registered_failpoints"):
                enumerates = True
            if isinstance(node, ast.Attribute) and node.attr in ("all_hits", "registered_failpoints"):
                enumerates = True
            if not isinstance(node, ast.Call):
                continue
            called = _called_name(node)
            if called in _ARM_FUNCS and node.args:
                name = _str_const(node.args[0])
                if name:
                    armed.setdefault(name, []).append((source.rel, node.lineno))
                else:
                    dynamic_arm = True
            for keyword in node.keywords:
                if keyword.arg == "failpoint":
                    name = _str_const(keyword.value)
                    if name:
                        armed.setdefault(name, []).append((source.rel, node.lineno))
        if dynamic_arm and enumerates:
            sweep_modules.append(source.rel)
    return armed, sweep_modules


@rule("failpoint-coverage", "every failpoint is declared, fired and armed by a test")
def check_failpoint_coverage(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    declared = _declared(project)
    if not declared:
        return findings  # tree has no fault registry; nothing to check
    fired = _fired(project)
    armed, sweep_modules = _armed(project)

    for name, (rel, line) in sorted(declared.items()):
        if name not in fired:
            findings.append(Finding(
                rule="failpoint-coverage", path=rel, line=line,
                message=f"failpoint {name!r} is declared but never fired",
                hint="instrument the protected effect with fire()/corrupt(), or drop the name",
            ))
        if name not in armed and not sweep_modules:
            findings.append(Finding(
                rule="failpoint-coverage", path=rel, line=line,
                message=f"failpoint {name!r} is never armed by any test",
                hint="add a test that arms it (faults.arm/faults.armed) or a sweep over the registry",
            ))

    for name, sites in sorted(fired.items()):
        if name not in declared:
            rel, line = sites[0]
            findings.append(Finding(
                rule="failpoint-coverage", path=rel, line=line,
                message=f"call site fires undeclared failpoint {name!r}",
                hint="add it to faults._CANONICAL or register() it; a typo here never triggers",
            ))
    for name, sites in sorted(armed.items()):
        if name not in declared:
            rel, line = sites[0]
            findings.append(Finding(
                rule="failpoint-coverage", path=rel, line=line,
                message=f"test arms undeclared failpoint {name!r}",
                hint="the arm can never fire; fix the name or declare the failpoint",
            ))
    return findings
