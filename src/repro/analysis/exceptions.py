"""``exception-safety`` — no handler may absorb crashes or mask corruption.

The PR 4 bug class: a broad handler on a serving path caught a storage
corruption error and re-shaped it as a 404, hiding data loss behind a
normal-looking response.  The PR 6 fault model sharpens the contract:
:class:`repro.faults.SimulatedCrash` derives from ``BaseException``
precisely so ``except Exception`` cannot absorb a simulated process
death — which means a bare ``except:`` or ``except BaseException`` in
the tree *would* absorb one, silently neutering the entire crash-sweep
suite.

This rule flags, anywhere under ``src/``:

* ``except:`` and ``except BaseException`` (including inside a tuple) —
  these can swallow ``SimulatedCrash``, ``KeyboardInterrupt`` and
  ``SystemExit``;
* ``except Exception`` (including inside a tuple) — broad enough to mask
  ``StorageError``/``CorruptObjectError`` as something benign.

A deliberate broad handler (a last-resort boundary that normalises
arbitrary parse failures into a typed error, say) is annotated
``# lint: broad-except-ok(reason)`` on the ``except`` line; the reason
is required and shows up in reviews, which is the point.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Project, rule

_BROAD = {"Exception", "BaseException"}


def _broad_names(handler: ast.ExceptHandler) -> list[str]:
    """The broad exception names a handler catches (``['except:']`` if bare)."""
    if handler.type is None:
        return ["bare except:"]
    nodes = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    names = []
    for node in nodes:
        if isinstance(node, ast.Name) and node.id in _BROAD:
            names.append(f"except {node.id}")
        elif isinstance(node, ast.Attribute) and node.attr in _BROAD:
            names.append(f"except {node.attr}")
    return names


@rule("exception-safety", "no bare/BaseException handlers; except Exception needs a pragma")
def check_exception_safety(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for source in project.sources():
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            broad = _broad_names(node)
            if not broad:
                continue
            pragmas = source.node_pragmas(node)
            reason = pragmas.get("broad-except-ok")
            if reason == "":
                findings.append(Finding(
                    rule="exception-safety", path=source.rel, line=node.lineno,
                    message="broad-except-ok pragma without a reason",
                    hint="write `# lint: broad-except-ok(<why this handler is safe>)`",
                ))
                continue
            for label in broad:
                # Only ``except Exception`` is pragma-able; a bare handler or
                # ``BaseException`` absorbs process deaths and has no safe use
                # on these paths.
                if reason and label == "except Exception":
                    continue
                consequence = (
                    "can mask StorageError/CorruptObjectError as something benign"
                    if label == "except Exception"
                    else "can absorb SimulatedCrash and neuter the crash-sweep suite"
                )
                findings.append(Finding(
                    rule="exception-safety",
                    path=source.rel,
                    line=node.lineno,
                    message=f"{label} {consequence}",
                    hint=(
                        "catch the narrowest exception type that can actually occur, "
                        "or annotate `# lint: broad-except-ok(reason)` for a deliberate "
                        "boundary handler"
                    ),
                ))
    return findings
