"""Static invariant analysis for the repository's own source tree.

PRs 6–8 made the hub crash-durable and concurrency-safe, but the
load-bearing invariants — downward-only layer dependencies, the
single-writer/many-readers lock contract, "every durable write goes
through ``utils/atomicio``", "no handler absorbs a ``SimulatedCrash``"
— lived only in prose and in tests that exercise a handful of paths.
This package pins them in CI the way ``benchmarks/perf_floors.json``
pins performance: an AST-based rule engine that runs over the whole
tree on every push, so the invariants hold on *every* code path, not
just the exercised ones.

Rules (see ``docs/ANALYSIS.md`` for the annotation grammar):

``layering``
    Imports must point downward through the layer order declared in
    ``tools/layers.toml``; module-scope import cycles are forbidden.
``lock-discipline``
    Attributes annotated ``# guarded-by: <lock>`` may only be mutated
    inside a ``with self.<lock>`` block (or a method annotated
    ``# lint: holds-lock(<lock>)`` whose callers hold it).
``durability``
    Raw ``open(..., "w")``, ``os.rename``/``os.replace``/``shutil.move``
    are forbidden outside ``utils/atomicio.py`` — durable writes go
    through the crash-atomic helpers.
``exception-safety``
    No bare ``except:`` / ``except BaseException``; ``except Exception``
    requires a ``# lint: broad-except-ok(reason)`` pragma.
``failpoint-coverage``
    Every registered failpoint has a ``fire()``/``corrupt()`` call site
    and an arming test; no call site names an undeclared failpoint.
``docs-consistency``
    Every package is mentioned in ``docs/ARCHITECTURE.md`` and every
    relative markdown link resolves (the old ``tools/check_docs.py``).

Entry points: ``gitcite analyze`` (CLI) and :func:`run_analysis`.
A committed baseline file (``tools/analysis_baseline.json``) lets
genuinely-intended exceptions pass while new violations fail CI.
"""

from repro.analysis.core import (
    Finding,
    Project,
    all_rules,
    load_baseline,
    run_analysis,
    write_baseline,
)

# Importing the rule modules registers them with the engine.
from repro.analysis import (  # noqa: E402  (registration imports)
    docs,
    durability,
    exceptions,
    failpoints,
    layering,
    locks,
)

__all__ = [
    "Finding",
    "Project",
    "all_rules",
    "load_baseline",
    "run_analysis",
    "write_baseline",
    "layering",
    "locks",
    "durability",
    "exceptions",
    "failpoints",
    "docs",
]
