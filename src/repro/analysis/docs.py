"""``docs-consistency`` — the reference docs track the tree.

The engine-resident successor of ``tools/check_docs.py`` (which remains
as a thin shim), so CI runs one analysis entry point.  Two checks, both
cheap and deliberately dumb:

* **Coverage** — every package under ``src/<package>/`` (and every
  top-level cross-cutting module) is mentioned in
  ``docs/ARCHITECTURE.md``, so the layer map cannot silently rot as
  subsystems are added.
* **Links** — every relative markdown link in ``README.md`` and
  ``docs/*.md`` resolves to a real file (anchors stripped, external
  schemes skipped), so a renamed doc fails CI instead of 404ing.
"""

from __future__ import annotations

import re
from pathlib import Path

from repro.analysis.core import Finding, Project, rule

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _packages(project: Project) -> list[str]:
    """Package directories and top-level modules under ``src/<package>``."""
    names: list[str] = []
    if not project.src_dir.is_dir():
        return names
    for entry in sorted(project.src_dir.iterdir()):
        if entry.is_dir() and (entry / "__init__.py").exists():
            names.append(entry.name)
        elif entry.suffix == ".py" and entry.name != "__init__.py":
            names.append(entry.stem)
    return names


def _doc_files(project: Project) -> list[Path]:
    files = [project.root / "README.md"]
    docs = project.root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [path for path in files if path.exists()]


@rule("docs-consistency", "architecture coverage and intra-doc links stay valid")
def check_docs(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    architecture = project.root / "docs" / "ARCHITECTURE.md"
    architecture_rel = "docs/ARCHITECTURE.md"
    if not architecture.exists():
        findings.append(Finding(
            rule="docs-consistency", path=architecture_rel, line=1,
            message="docs/ARCHITECTURE.md is missing",
        ))
    else:
        text = architecture.read_text(encoding="utf-8")
        for name in _packages(project):
            if f"{project.package}.{name}" not in text and name not in text:
                findings.append(Finding(
                    rule="docs-consistency", path=architecture_rel, line=1,
                    message=f"package {project.package}.{name} is not mentioned",
                    hint="add the new subsystem to the layer map",
                ))

    for doc in _doc_files(project):
        text = doc.read_text(encoding="utf-8")
        rel = project.rel(doc)
        for match in _LINK_PATTERN.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            if not (doc.parent / path).resolve().exists():
                findings.append(Finding(
                    rule="docs-consistency", path=rel,
                    line=text.count("\n", 0, match.start()) + 1,
                    message=f"broken link {target!r}",
                    hint="fix the path or remove the link",
                ))
    return findings
