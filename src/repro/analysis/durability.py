"""``durability`` — every durable write goes through ``utils/atomicio``.

PR 6's crash-safety contract: no reader may ever observe a torn file, so
durable artefacts are written to a unique temp name, fsynced, and
atomically renamed into place by :mod:`repro.utils.atomicio`.  A raw
``open(path, "w")`` or a hand-rolled ``os.rename``/``os.replace``/
``shutil.move`` anywhere else in the tree is a crash window waiting for
a power cut, so this rule flags:

* ``open(...)`` / ``<path>.open(...)`` with a write-capable mode literal
  (any of ``w``/``a``/``x``/``+`` in the mode string);
* ``os.rename``, ``os.replace``, ``os.renames`` and ``shutil.move``.

``utils/atomicio.py`` itself is exempt — it is the one place the
primitive belongs.  A genuinely-safe raw write (writing to a temp file
the atomic helpers then promote, a quarantine move of an already-corrupt
file) is annotated in place with ``# lint: raw-write-ok(reason)``.
Non-literal modes are not flagged: the rule is a tripwire for the easy
mistake, not a data-flow analysis.
"""

from __future__ import annotations

import ast

from repro.analysis.core import Finding, Project, rule

#: Module-relative paths where raw durable writes are the implementation.
_EXEMPT_SUFFIXES = ("utils/atomicio.py",)

_WRITE_MODE_CHARS = set("wax+")

_RENAME_CALLS = {
    ("os", "rename"), ("os", "replace"), ("os", "renames"), ("shutil", "move"),
}


def _literal_mode(node: ast.Call) -> str | None:
    """The mode string of an ``open``-style call, when it is a literal."""
    mode: ast.AST | None = None
    if len(node.args) >= 2:
        mode = node.args[1]
    elif len(node.args) == 1 and isinstance(node.func, ast.Attribute):
        mode = node.args[0]  # path.open("wb") style: mode is the first arg
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None


@rule("durability", "durable writes go through utils/atomicio, not raw open/rename")
def check_durability(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    for source in project.sources():
        if source.rel.endswith(_EXEMPT_SUFFIXES):
            continue
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            flagged: str | None = None
            if isinstance(func, ast.Name) and func.id == "open":
                mode = _literal_mode(node)
                if mode and _WRITE_MODE_CHARS & set(mode):
                    flagged = f"raw open(..., {mode!r})"
            elif isinstance(func, ast.Attribute):
                if func.attr == "open":
                    mode = _literal_mode(node)
                    if mode and _WRITE_MODE_CHARS & set(mode):
                        flagged = f"raw .open(..., {mode!r})"
                elif (
                    isinstance(func.value, ast.Name)
                    and (func.value.id, func.attr) in _RENAME_CALLS
                ):
                    flagged = f"raw {func.value.id}.{func.attr}()"
            if flagged is None:
                continue
            if "raw-write-ok" in source.pragmas(node.lineno):
                continue
            findings.append(Finding(
                rule="durability",
                path=source.rel,
                line=node.lineno,
                message=f"{flagged} outside utils/atomicio",
                hint=(
                    "use atomicio.atomic_write_bytes/atomic_write_text/AtomicFile "
                    "(or annotate `# lint: raw-write-ok(reason)` if this write is "
                    "genuinely not a durable artefact)"
                ),
            ))
    return findings
