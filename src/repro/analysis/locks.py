"""``lock-discipline`` — a static race detector for guarded attributes.

The PR 7 concurrency contract says which attributes are protected by
which lock; this rule makes the contract machine-checked.  An attribute
whose initialising assignment carries a ``# guarded-by: <lock>`` comment
may only be mutated:

* inside a ``with self.<lock>:`` block (any of the comma-separated lock
  names counts — a ``threading.Condition`` built on the same lock is a
  legitimate alias);
* in ``__init__`` (the object is not yet published to other threads);
* in a method whose ``def`` line carries ``# lint: holds-lock(<lock>)``
  (a private helper whose documented contract is "caller holds it");
* on a line (or in a method) carrying ``# lint: unguarded-ok(reason)``.

Guarded attributes are inherited: a subclass mutating an attribute its
base class guards is held to the base's contract (the pack backend's
``mutation_counter`` bumps are checked against
``ObjectBackend._write_lock``).  Reads are deliberately out of scope —
the architecture is single-writer/many-readers, and readers take no
lock by design.

Mutations recognised: plain/augmented/annotated assignment to
``self.X`` or ``self.X[...]``, ``del`` of either, and calls to mutating
container methods (``append``/``pop``/``update``/…) on ``self.X``.
"""

from __future__ import annotations

import ast
from typing import Optional

from repro.analysis.core import Finding, Project, SourceFile, rule

__all__ = ["MUTATOR_METHODS"]

#: Container methods that mutate their receiver in place.
MUTATOR_METHODS = frozenset({
    "append", "extend", "insert", "remove", "pop", "popitem", "clear",
    "update", "add", "discard", "setdefault", "appendleft", "popleft",
    "sort", "reverse", "move_to_end",
})


def _self_attribute(node: ast.AST) -> Optional[str]:
    """``self.X`` -> ``X`` (possibly through a subscript ``self.X[...]``)."""
    if isinstance(node, ast.Subscript):
        node = node.value
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _collect_guarded(source: SourceFile, class_node: ast.ClassDef) -> dict[str, tuple[str, ...]]:
    """``{attribute: (lock, ...)}`` from ``# guarded-by:`` comments."""
    guarded: dict[str, tuple[str, ...]] = {}
    for node in ast.walk(class_node):
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, ast.AnnAssign):
            targets = [node.target]
        else:
            continue
        locks = source.guarded_locks(node.lineno)
        if not locks:
            continue
        for target in targets:
            attribute = _self_attribute(target)
            if attribute is not None:
                guarded[attribute] = locks
    return guarded


def _walk_method(method: ast.AST):
    """Walk a method body without descending into nested ``def``/``class``."""
    stack = list(ast.iter_child_nodes(method))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _mutations(method: ast.AST) -> list[tuple[ast.AST, str, str]]:
    """``(node, attribute, kind)`` for every ``self.X`` mutation in ``method``."""
    found: list[tuple[ast.AST, str, str]] = []
    for node in _walk_method(method):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attribute = _self_attribute(target)
                if attribute:
                    found.append((node, attribute, "assignment"))
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            if isinstance(node, ast.AnnAssign) and node.value is None:
                continue
            attribute = _self_attribute(node.target)
            if attribute:
                found.append((node, attribute, "assignment"))
        elif isinstance(node, ast.Delete):
            for target in node.targets:
                attribute = _self_attribute(target)
                if attribute:
                    found.append((node, attribute, "deletion"))
        elif isinstance(node, ast.Call):
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in MUTATOR_METHODS
            ):
                attribute = _self_attribute(func.value)
                if attribute:
                    found.append((node, attribute, f".{func.attr}() call"))
    return found


def _held_locks(source: SourceFile, node: ast.AST, method: ast.AST) -> set[str]:
    """Lock attributes held by enclosing ``with self.<lock>:`` blocks."""
    held: set[str] = set()
    for ancestor in source.ancestors(node):
        if ancestor is method:
            break
        if isinstance(ancestor, (ast.With, ast.AsyncWith)):
            for item in ancestor.items:
                expr = item.context_expr
                # ``with self._lock:`` and ``with self._cond:`` both count;
                # ``with self._lock.something():`` does not.
                attribute = _self_attribute(expr)
                if attribute:
                    held.add(attribute)
    return held


@rule("lock-discipline", "guarded attributes are only mutated under their lock")
def check_lock_discipline(project: Project) -> list[Finding]:
    findings: list[Finding] = []
    # Pass 1: every class with guarded attributes, keyed by bare class name
    # so base-class contracts can be resolved across modules.
    guarded_by_class: dict[str, dict[str, tuple[str, ...]]] = {}
    bases_by_class: dict[str, list[str]] = {}
    class_nodes: list[tuple[SourceFile, ast.ClassDef]] = []
    for source in project.sources():
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            class_nodes.append((source, node))
            guarded = _collect_guarded(source, node)
            if guarded:
                guarded_by_class.setdefault(node.name, {}).update(guarded)
            names = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    names.append(base.id)
                elif isinstance(base, ast.Attribute):
                    names.append(base.attr)
            bases_by_class.setdefault(node.name, []).extend(names)

    def resolved_guarded(class_name: str, seen: frozenset[str] = frozenset()) -> dict[str, tuple[str, ...]]:
        if class_name in seen:
            return {}
        merged: dict[str, tuple[str, ...]] = {}
        for base in bases_by_class.get(class_name, []):
            merged.update(resolved_guarded(base, seen | {class_name}))
        merged.update(guarded_by_class.get(class_name, {}))
        return merged

    # Pass 2: check every method of every class against the merged contract.
    for source, class_node in class_nodes:
        guarded = resolved_guarded(class_node.name)
        if not guarded:
            continue
        for method in class_node.body:
            if not isinstance(method, (ast.FunctionDef, ast.AsyncFunctionDef)):
                continue
            if method.name == "__init__":
                continue  # construction precedes publication
            method_pragmas = source.node_pragmas(method)
            if "unguarded-ok" in method_pragmas:
                continue
            held_by_contract = {
                lock.strip()
                for lock in method_pragmas.get("holds-lock", "").split(",")
                if lock.strip()
            }
            for node, attribute, kind in _mutations(method):
                locks = guarded.get(attribute)
                if not locks:
                    continue
                if "unguarded-ok" in source.pragmas(node.lineno):
                    continue
                held = _held_locks(source, node, method) | held_by_contract
                if held & set(locks):
                    continue
                findings.append(Finding(
                    rule="lock-discipline",
                    path=source.rel,
                    line=node.lineno,
                    message=(
                        f"{class_node.name}.{method.name} mutates guarded attribute "
                        f"{attribute!r} ({kind}) without holding "
                        f"{' or '.join(f'self.{lock}' for lock in locks)}"
                    ),
                    hint=(
                        f"wrap the mutation in `with self.{locks[0]}:`, or annotate the "
                        "method `# lint: holds-lock(...)` if its callers hold the lock"
                    ),
                ))
    return findings
