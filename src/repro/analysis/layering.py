"""``layering`` — downward-only imports against ``tools/layers.toml``.

The declaration file assigns module prefixes to named layers and orders
the layers bottom-up; an import whose target sits in a *higher* layer
than the importing module is an upward dependency and fails, unless the
edge is explicitly allow-listed (``[[allow]]`` with a reason).  Imports
within one layer are free — that is what a layer *is* — but module-scope
import cycles are forbidden at any altitude: a cycle means there is no
load order in which both modules exist, and "it happens to work because
the symbol is touched late" is exactly the kind of accident this rule
exists to catch.  Function-scope (lazy) imports are exempt from the
cycle check but still direction-checked: deferring an upward import
hides it from the interpreter, not from the architecture.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass

from repro.analysis.core import LAYERS_PATH, Finding, Project, rule

__all__ = ["collect_imports", "ImportEdge"]


@dataclass(frozen=True)
class ImportEdge:
    """One import statement, resolved to a target module."""

    source: str  # importing module
    target: str  # imported module (absolute dotted name)
    line: int
    module_scope: bool  # directly executed at import time


def _resolve_from(
    node: ast.ImportFrom, importer: str, is_package: bool, known: set[str]
) -> list[str]:
    """Absolute target modules of a ``from X import a, b`` statement."""
    if node.level:  # relative import: resolve against the importing package
        parts = importer.split(".")
        # A plain module drops its own name to reach its package; a package
        # ``__init__`` *is* its package, so level 1 keeps it as the base.
        drop = node.level - (1 if is_package else 0)
        base = parts[: max(0, len(parts) - drop)]
        prefix = ".".join(base + ([node.module] if node.module else []))
    else:
        prefix = node.module or ""
    if not prefix:
        return []
    targets = []
    for alias in node.names:
        candidate = f"{prefix}.{alias.name}"
        targets.append(candidate if candidate in known else prefix)
    return targets


def collect_imports(project: Project) -> list[ImportEdge]:
    """Every intra-package import edge in the tree."""
    known = project.module_names()
    package = project.package
    edges: list[ImportEdge] = []
    for source in project.sources():
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                targets = [alias.name for alias in node.names]
            elif isinstance(node, ast.ImportFrom):
                targets = _resolve_from(
                    node, source.module, source.path.name == "__init__.py", known
                )
            else:
                continue
            in_function = any(
                isinstance(ancestor, (ast.FunctionDef, ast.AsyncFunctionDef))
                for ancestor in source.ancestors(node)
            )
            for target in targets:
                if target == package or target.startswith(package + "."):
                    edges.append(ImportEdge(
                        source=source.module,
                        target=target,
                        line=node.lineno,
                        module_scope=not in_function,
                    ))
    return edges


def _layer_of(module: str, assignment: dict[str, str]) -> str | None:
    """Longest-prefix layer lookup (``a.b.c`` before ``a.b`` before ``a``)."""
    probe = module
    while probe:
        if probe in assignment:
            return assignment[probe]
        probe = probe.rpartition(".")[0]
    return None


def _allowed(source: str, target: str, allows: list[dict]) -> bool:
    """Whether an ``[[allow]]`` entry covers this edge.

    The *source* must match exactly — an entry names one specific module
    that holds the reviewed exception, never a whole subtree (else
    ``from = "repro.vcs"`` would silently bless every module under it).
    The *target* matches by prefix, so allowing ``repro.citation`` covers
    importing any of its submodules.
    """
    for entry in allows:
        src = entry.get("from", "")
        dst = entry.get("to", "")
        if source == src and (target == dst or target.startswith(dst + ".")):
            return True
    return False


def _find_cycles(edges: list[ImportEdge]) -> list[list[str]]:
    """Strongly connected components of the module-scope graph (size > 1)."""
    graph: dict[str, set[str]] = {}
    for edge in edges:
        if edge.module_scope and edge.source != edge.target:
            graph.setdefault(edge.source, set()).add(edge.target)
            graph.setdefault(edge.target, set())
    # Tarjan, iterative.
    index: dict[str, int] = {}
    low: dict[str, int] = {}
    on_stack: set[str] = set()
    stack: list[str] = []
    counter = [0]
    components: list[list[str]] = []

    def strongconnect(start: str) -> None:
        work = [(start, iter(sorted(graph[start])))]
        index[start] = low[start] = counter[0]
        counter[0] += 1
        stack.append(start)
        on_stack.add(start)
        while work:
            node, successors = work[-1]
            advanced = False
            for successor in successors:
                if successor not in index:
                    index[successor] = low[successor] = counter[0]
                    counter[0] += 1
                    stack.append(successor)
                    on_stack.add(successor)
                    work.append((successor, iter(sorted(graph[successor]))))
                    advanced = True
                    break
                if successor in on_stack:
                    low[node] = min(low[node], index[successor])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                low[parent] = min(low[parent], low[node])
            if low[node] == index[node]:
                component = []
                while True:
                    member = stack.pop()
                    on_stack.discard(member)
                    component.append(member)
                    if member == node:
                        break
                if len(component) > 1:
                    components.append(sorted(component))

    for node in sorted(graph):
        if node not in index:
            strongconnect(node)
    return components


@rule("layering", "imports point downward through the declared layer order")
def check_layering(project: Project) -> list[Finding]:
    config = project.layers_config
    layers = config.get("layers", {})
    order = layers.get("order", [])
    assignment_tables = config.get("assign", {})
    allows = config.get("allow", [])
    findings: list[Finding] = []
    layers_rel = LAYERS_PATH.as_posix()
    if not order or not assignment_tables:
        findings.append(Finding(
            rule="layering", path=layers_rel, line=1,
            message="missing or empty layer declaration",
            hint="declare [layers] order and [assign] tables in tools/layers.toml",
        ))
        return findings
    rank = {layer: position for position, layer in enumerate(order)}
    assignment: dict[str, str] = {}
    for layer, prefixes in assignment_tables.items():
        if layer not in rank:
            findings.append(Finding(
                rule="layering", path=layers_rel, line=1,
                message=f"layer {layer!r} is assigned modules but missing from the order",
            ))
            continue
        for prefix in prefixes:
            assignment[prefix] = layer

    edges = collect_imports(project)
    rel_of = {source.module: source.rel for source in project.sources()}

    # Every module must belong to a declared layer.
    for module in sorted(project.module_names()):
        if _layer_of(module, assignment) is None:
            findings.append(Finding(
                rule="layering", path=rel_of[module], line=1,
                message=f"module {module} is not assigned to any layer",
                hint=f"add it to an [assign] table in {layers_rel}",
            ))

    seen: set[tuple[str, str]] = set()
    for edge in edges:
        source_layer = _layer_of(edge.source, assignment)
        target_layer = _layer_of(edge.target, assignment)
        if source_layer is None or target_layer is None:
            continue  # the unassigned-module finding already covers it
        if rank.get(target_layer, 0) <= rank.get(source_layer, 0):
            continue
        if _allowed(edge.source, edge.target, allows):
            continue
        key = (edge.source, edge.target)
        if key in seen:
            continue
        seen.add(key)
        findings.append(Finding(
            rule="layering", path=rel_of[edge.source], line=edge.line,
            message=(
                f"upward import: {edge.source} (layer {source_layer!r}) "
                f"imports {edge.target} (layer {target_layer!r})"
            ),
            hint=(
                "invert the dependency (move the shared code down a layer) "
                f"or allow-list the edge with a reason in {layers_rel}"
            ),
        ))

    for component in _find_cycles(edges):
        anchor = component[0]
        line = next(
            (e.line for e in edges
             if e.module_scope and e.source == anchor and e.target in component),
            1,
        )
        findings.append(Finding(
            rule="layering", path=rel_of.get(anchor, layers_rel), line=line,
            message="module-scope import cycle: " + " -> ".join(component + [anchor]),
            hint="break the cycle with a downward refactor or a function-scope import",
        ))
    return findings
