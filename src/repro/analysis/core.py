"""The analysis engine: source model, rule registry, baseline, runner.

The engine is deliberately self-contained (stdlib ``ast`` + ``tokenize``,
no third-party dependencies) and rootable at any directory that looks like
this repository — ``<root>/src/<package>`` for the code, ``<root>/tests``
for the test suite, ``<root>/tools/layers.toml`` for the layer
declaration.  The test suite exploits that: fixture packages with seeded
violations live under a ``tmp_path`` root and run through the exact same
engine as the real tree.

Pragmas are trailing comments read via ``tokenize`` (so a ``#`` inside a
string literal can never be misread as one):

* ``# guarded-by: <lock>[, <lock>]`` — on an attribute assignment inside
  a class: every later mutation of that attribute must hold one of the
  named locks (``with self.<lock>:``).
* ``# lint: holds-lock(<lock>)`` — on a ``def`` line: the method's
  callers hold ``<lock>``, so its mutations are considered guarded.
* ``# lint: broad-except-ok(<reason>)`` — on an ``except`` line: this
  broad handler is intentional; the reason is mandatory.
* ``# lint: raw-write-ok(<reason>)`` — on a raw-write line: this write
  intentionally bypasses ``utils/atomicio``.
* ``# lint: unguarded-ok(<reason>)`` — on a mutation or ``def`` line:
  this mutation of a guarded attribute is safe without the lock (e.g.
  construction of a not-yet-published object).
"""

from __future__ import annotations

import ast
import io
import json
import re
import tokenize
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional

from repro.utils.hashing import sha1_hex

__all__ = [
    "Finding",
    "SourceFile",
    "Project",
    "rule",
    "all_rules",
    "run_analysis",
    "load_baseline",
    "write_baseline",
    "read_layers_config",
    "BASELINE_PATH",
    "LAYERS_PATH",
]

#: Repo-relative locations of the checked-in analysis inputs.
LAYERS_PATH = Path("tools") / "layers.toml"
BASELINE_PATH = Path("tools") / "analysis_baseline.json"

_PRAGMA_PATTERN = re.compile(r"#\s*lint:\s*([a-z-]+)\s*\(([^)]*)\)")
_GUARDED_PATTERN = re.compile(r"#\s*guarded-by:\s*([A-Za-z0-9_,\s]+)")


@dataclass(frozen=True)
class Finding:
    """One rule violation, anchored to a file and line."""

    rule: str
    path: str  # repo-relative, forward slashes
    line: int
    message: str
    hint: str = ""

    @property
    def fingerprint(self) -> str:
        """Stable identity for baselining — deliberately line-free, so a
        baselined finding survives unrelated edits above it."""
        return sha1_hex(f"{self.rule}|{self.path}|{self.message}".encode("utf-8"))

    def render(self) -> str:
        text = f"{self.path}:{self.line}: [{self.rule}] {self.message}"
        if self.hint:
            text += f"\n    hint: {self.hint}"
        return text


class SourceFile:
    """A parsed python source file: AST, comments, and pragma lookup."""

    def __init__(self, path: Path, rel: str, module: str) -> None:
        self.path = path
        self.rel = rel
        self.module = module
        self.text = path.read_text(encoding="utf-8")
        self.tree = ast.parse(self.text, filename=rel)
        #: line number -> full comment text (without the leading ``#``).
        self.comments: dict[int, str] = {}
        try:
            for token in tokenize.generate_tokens(io.StringIO(self.text).readline):
                if token.type == tokenize.COMMENT:
                    self.comments[token.start[0]] = token.string
        except tokenize.TokenError:  # pragma: no cover - ast.parse succeeded
            pass
        self._parents: dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(self.tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        current = self._parents.get(node)
        while current is not None:
            yield current
            current = self._parents.get(current)

    def pragmas(self, line: int) -> dict[str, str]:
        """``# lint: name(args)`` pragmas on ``line`` as ``{name: args}``."""
        comment = self.comments.get(line)
        if not comment:
            return {}
        return {
            match.group(1): match.group(2).strip()
            for match in _PRAGMA_PATTERN.finditer(comment)
        }

    def node_pragmas(self, node: ast.AST) -> dict[str, str]:
        """Pragmas on any line the node's header spans (def/except lines)."""
        merged: dict[str, str] = {}
        end = getattr(node, "end_lineno", node.lineno) or node.lineno
        body = getattr(node, "body", None)
        if body:  # only the header, not the whole suite
            end = min(end, body[0].lineno - 1) if body[0].lineno > node.lineno else node.lineno
        for line in range(node.lineno, end + 1):
            merged.update(self.pragmas(line))
        return merged

    def guarded_locks(self, line: int) -> tuple[str, ...]:
        """Locks named by a ``# guarded-by:`` comment on ``line``."""
        comment = self.comments.get(line)
        if not comment:
            return ()
        match = _GUARDED_PATTERN.search(comment)
        if not match:
            return ()
        return tuple(
            name.strip() for name in match.group(1).split(",") if name.strip()
        )


class Project:
    """The analyzed tree: package sources, tests, and configuration."""

    def __init__(self, root: Path, package: str | None = None) -> None:
        self.root = Path(root).resolve()
        self.layers_config = read_layers_config(self.root / LAYERS_PATH)
        self.package = package or self.layers_config.get("project", {}).get("package", "repro")
        self.src_dir = self.root / "src" / self.package
        self.tests_dir = self.root / "tests"
        self._sources: dict[Path, SourceFile] = {}

    # -- discovery ---------------------------------------------------------

    def _module_name(self, path: Path) -> str:
        rel = path.relative_to(self.src_dir.parent).with_suffix("")
        parts = list(rel.parts)
        if parts[-1] == "__init__":
            parts = parts[:-1]
        return ".".join(parts)

    def rel(self, path: Path) -> str:
        return path.relative_to(self.root).as_posix()

    def source(self, path: Path) -> SourceFile:
        cached = self._sources.get(path)
        if cached is None:
            cached = SourceFile(path, self.rel(path), self._module_name(path))
            self._sources[path] = cached
        return cached

    def sources(self) -> list[SourceFile]:
        """Every python file under ``src/<package>``, sorted by module name."""
        files = sorted(self.src_dir.rglob("*.py"))
        return [self.source(path) for path in files]

    def test_sources(self) -> list[SourceFile]:
        if not self.tests_dir.is_dir():
            return []
        out = []
        for path in sorted(self.tests_dir.rglob("*.py")):
            cached = self._sources.get(path)
            if cached is None:
                cached = SourceFile(path, self.rel(path), path.stem)
                self._sources[path] = cached
            out.append(cached)
        return out

    def module_names(self) -> set[str]:
        return {source.module for source in self.sources()}


# ---------------------------------------------------------------------------
# Rule registry
# ---------------------------------------------------------------------------

RuleFn = Callable[[Project], list[Finding]]

_RULES: dict[str, tuple[str, RuleFn]] = {}


def rule(rule_id: str, description: str) -> Callable[[RuleFn], RuleFn]:
    """Register ``fn`` as the implementation of ``rule_id``."""

    def register(fn: RuleFn) -> RuleFn:
        _RULES[rule_id] = (description, fn)
        return fn

    return register


def all_rules() -> dict[str, str]:
    """``{rule id: one-line description}`` for every registered rule."""
    return {rule_id: meta[0] for rule_id, meta in sorted(_RULES.items())}


# ---------------------------------------------------------------------------
# Baseline
# ---------------------------------------------------------------------------


def load_baseline(path: Path) -> set[str]:
    """Fingerprints of accepted findings (empty when no baseline exists)."""
    if not path.is_file():
        return set()
    data = json.loads(path.read_text(encoding="utf-8"))
    accepted: set[str] = set()
    for entry in data.get("accepted", []):
        accepted.add(
            Finding(
                rule=entry["rule"], path=entry["path"], line=0,
                message=entry["message"],
            ).fingerprint
        )
    return accepted


def write_baseline(path: Path, findings: Iterable[Finding]) -> None:
    """Record ``findings`` as accepted (sorted, line numbers omitted)."""
    entries = sorted(
        {(f.rule, f.path, f.message) for f in findings}
    )
    payload = {
        "comment": (
            "Accepted findings of `gitcite analyze`. Regenerate with "
            "`gitcite analyze --baseline`; every entry here is a deliberate, "
            "reviewed exception to a rule."
        ),
        "accepted": [
            {"rule": rule_id, "path": rel, "message": message}
            for rule_id, rel, message in entries
        ],
    }
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


@dataclass
class AnalysisResult:
    findings: list[Finding] = field(default_factory=list)
    suppressed: int = 0
    rules_run: tuple[str, ...] = ()


def run_analysis(
    root: Path,
    rules: Optional[Iterable[str]] = None,
    baseline: Optional[Path] = None,
) -> AnalysisResult:
    """Run the selected rules (default: all) over the tree at ``root``.

    ``baseline`` points at an accepted-findings file; matching findings are
    suppressed and counted rather than reported.
    """
    project = Project(root)
    selected = list(rules) if rules else sorted(_RULES)
    unknown = [rule_id for rule_id in selected if rule_id not in _RULES]
    if unknown:
        raise ValueError(
            f"unknown rule(s) {', '.join(sorted(unknown))}; known: {', '.join(sorted(_RULES))}"
        )
    accepted = load_baseline(baseline) if baseline else set()
    result = AnalysisResult(rules_run=tuple(selected))
    for rule_id in selected:
        _, fn = _RULES[rule_id]
        for finding in fn(project):
            if finding.fingerprint in accepted:
                result.suppressed += 1
            else:
                result.findings.append(finding)
    result.findings.sort(key=lambda f: (f.path, f.line, f.rule, f.message))
    return result


# ---------------------------------------------------------------------------
# Minimal TOML subset reader (stdlib ``tomllib`` is 3.11+; the engine
# supports 3.10, so the declaration file sticks to this subset: ``[table]``
# and ``[[array-of-tables]]`` headers, ``key = "string"`` and
# ``key = ["string", ...]`` values, ``#`` comments, multi-line arrays)
# ---------------------------------------------------------------------------


def read_layers_config(path: Path) -> dict:
    if not path.is_file():
        return {}
    return _parse_toml_subset(path.read_text(encoding="utf-8"), str(path))


_STRING = re.compile(r'"((?:[^"\\]|\\.)*)"')


def _strings_in(fragment: str, context: str) -> list[str]:
    values = [match.group(1) for match in _STRING.finditer(fragment)]
    return [value.encode("utf-8").decode("unicode_escape") for value in values]


def _parse_toml_subset(text: str, context: str) -> dict:
    config: dict = {}
    current: dict = config
    pending_key: Optional[str] = None
    pending_items: list[str] = []
    for number, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        comment = line.find("#")
        if comment != -1 and line.count('"', 0, comment) % 2 == 0:
            line = line[:comment].rstrip()
        if not line:
            continue
        if pending_key is not None:  # inside a multi-line array
            pending_items.extend(_strings_in(line, context))
            if line.endswith("]"):
                current[pending_key] = pending_items
                pending_key, pending_items = None, []
            continue
        if line.startswith("[[") and line.endswith("]]"):
            name = line[2:-2].strip()
            current = {}
            config.setdefault(name, []).append(current)
            continue
        if line.startswith("[") and line.endswith("]"):
            name = line[1:-1].strip()
            current = config.setdefault(name, {})
            continue
        key, separator, value = line.partition("=")
        if not separator:
            raise ValueError(f"{context}:{number}: unsupported syntax: {raw!r}")
        key = key.strip()
        value = value.strip()
        if value.startswith("["):
            if value.endswith("]"):
                current[key] = _strings_in(value, context)
            else:
                pending_key = key
                pending_items = _strings_in(value, context)
        else:
            strings = _strings_in(value, context)
            if len(strings) != 1:
                raise ValueError(f"{context}:{number}: expected one string value: {raw!r}")
            current[key] = strings[0]
    return config
