"""Shared low-level utilities: hashing, path handling, timestamps and JSON.

These helpers are deliberately free of dependencies on the higher layers so
that every subsystem (VCS, hub, citation model, formats, archive) can rely on
exactly the same notion of "a repository path", "an object id" and "a
timestamp".
"""

from repro.utils.hashing import sha1_hex, object_id
from repro.utils.jsonutil import canonical_dumps, stable_loads
from repro.utils.paths import (
    RepoPath,
    ancestors,
    is_ancestor,
    is_dir_key,
    join_path,
    normalize_path,
    path_depth,
    relative_to,
    rewrite_prefix,
    split_path,
)
from repro.utils.timeutil import format_timestamp, now_utc, parse_timestamp

__all__ = [
    "sha1_hex",
    "object_id",
    "canonical_dumps",
    "stable_loads",
    "RepoPath",
    "ancestors",
    "is_ancestor",
    "is_dir_key",
    "join_path",
    "normalize_path",
    "path_depth",
    "relative_to",
    "rewrite_prefix",
    "split_path",
    "format_timestamp",
    "now_utc",
    "parse_timestamp",
]
