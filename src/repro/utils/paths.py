"""Repository path handling shared by the VCS and the citation model.

The citation model of the paper keys the ``citation.cite`` file by the
*relative path* of the cited file or directory (Listing 1 uses ``"/"`` for the
project root and keys such as ``".../CoreCover/"`` and ``".../citation/GUI/"``
for directories).  The version-control substrate, in contrast, stores tree
entries under plain relative segments such as ``"citation/GUI/app.py"``.

To keep every layer in agreement this module defines a single canonical form:

* a canonical repository path always starts with ``"/"``;
* the project root is exactly ``"/"``;
* no other path has a trailing slash;
* components are separated by single ``"/"`` characters, with ``"."`` and
  empty components removed;
* ``".."`` components are rejected (a citation key must stay inside the
  repository).

Inputs may be written in any of the looser forms that appear in the paper and
in user-facing tools (``"a/b"``, ``"/a/b/"``, ``"./a/b"``, ``".../a/b/"``) —
:func:`normalize_path` maps all of them to the canonical form.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import InvalidPathError

__all__ = [
    "ROOT",
    "RepoPath",
    "ancestors",
    "is_ancestor",
    "is_dir_key",
    "join_path",
    "normalize_path",
    "path_basename",
    "path_depth",
    "path_parent",
    "relative_to",
    "rewrite_prefix",
    "split_path",
    "to_citation_key",
]

#: Canonical path of the project root.
ROOT = "/"


def normalize_path(path: str) -> str:
    """Return the canonical form of a repository path.

    Examples
    --------
    >>> normalize_path("/")
    '/'
    >>> normalize_path("a/b/")
    '/a/b'
    >>> normalize_path(".../CoreCover/")
    '/CoreCover'
    >>> normalize_path("./citation/GUI")
    '/citation/GUI'
    """
    if not isinstance(path, str):
        raise InvalidPathError(f"path must be a string, got {type(path).__name__}")
    candidate = path.strip()
    if candidate in ("", "/", ".", "./"):
        return ROOT
    # The paper's Listing 1 prefixes nested keys with "..." (an ellipsis used
    # for display); treat a leading run of dots before a slash as the root.
    while candidate.startswith("..."):
        candidate = candidate[3:]
    parts: list[str] = []
    for raw in candidate.split("/"):
        component = raw.strip()
        if component in ("", "."):
            continue
        if component == "..":
            raise InvalidPathError(f"path escapes the repository root: {path!r}")
        if "\\" in component or "\0" in component:
            raise InvalidPathError(f"path contains illegal characters: {path!r}")
        parts.append(component)
    if not parts:
        return ROOT
    return "/" + "/".join(parts)


def split_path(path: str) -> tuple[str, ...]:
    """Split a canonical path into its components (the root splits to ``()``)."""
    canonical = normalize_path(path)
    if canonical == ROOT:
        return ()
    return tuple(canonical[1:].split("/"))


def join_path(base: str, *segments: str) -> str:
    """Join ``segments`` under ``base`` and return a canonical path."""
    parts = list(split_path(base))
    for segment in segments:
        parts.extend(split_path("/" + segment))
    if not parts:
        return ROOT
    return "/" + "/".join(parts)


def path_parent(path: str) -> str:
    """Return the canonical parent of ``path`` (the root is its own parent)."""
    parts = split_path(path)
    if not parts:
        return ROOT
    if len(parts) == 1:
        return ROOT
    return "/" + "/".join(parts[:-1])


def path_basename(path: str) -> str:
    """Return the final component of ``path`` (``""`` for the root)."""
    parts = split_path(path)
    return parts[-1] if parts else ""


def path_depth(path: str) -> int:
    """Return the number of components below the root (root has depth 0)."""
    return len(split_path(path))


def ancestors(path: str, include_self: bool = False) -> list[str]:
    """Return the ancestors of ``path`` ordered from closest to the root.

    This ordering is exactly the search order of the paper's citation
    resolution rule: ``Cite(V,P)(n)`` is the citation of the *closest*
    ancestor of ``n`` that carries an explicit citation.

    >>> ancestors("/a/b/c")
    ['/a/b', '/a', '/']
    >>> ancestors("/a", include_self=True)
    ['/a', '/']
    """
    parts = split_path(path)
    chain: list[str] = []
    if include_self:
        chain.append(normalize_path(path))
    for cut in range(len(parts) - 1, 0, -1):
        chain.append("/" + "/".join(parts[:cut]))
    if parts or include_self:
        if ROOT not in chain:
            chain.append(ROOT)
    else:
        chain.append(ROOT)
    # Deduplicate while preserving order (include_self on the root would
    # otherwise repeat "/").
    seen: set[str] = set()
    ordered: list[str] = []
    for item in chain:
        if item not in seen:
            seen.add(item)
            ordered.append(item)
    return ordered


def is_ancestor(ancestor: str, descendant: str, strict: bool = True) -> bool:
    """Return whether ``ancestor`` is an ancestor of ``descendant``.

    With ``strict=False`` a path counts as its own ancestor.
    """
    anc = split_path(ancestor)
    desc = split_path(descendant)
    if len(anc) > len(desc):
        return False
    if strict and len(anc) == len(desc):
        return False
    return tuple(desc[: len(anc)]) == anc


def relative_to(path: str, base: str) -> str:
    """Return ``path`` relative to ``base`` as a slash-joined segment string.

    >>> relative_to("/a/b/c", "/a")
    'b/c'
    >>> relative_to("/a", "/a")
    ''
    """
    path_parts = split_path(path)
    base_parts = split_path(base)
    if tuple(path_parts[: len(base_parts)]) != base_parts:
        raise InvalidPathError(f"{path!r} is not below {base!r}")
    return "/".join(path_parts[len(base_parts):])


def rewrite_prefix(path: str, old_prefix: str, new_prefix: str) -> str:
    """Re-root ``path`` from ``old_prefix`` to ``new_prefix``.

    Used by CopyCite: when a subtree rooted at ``old_prefix`` in the source
    repository is copied to ``new_prefix`` in the destination repository, every
    citation key below ``old_prefix`` must be rewritten so the migrated
    citation function remains correct (Section 3 of the paper).
    """
    remainder = relative_to(path, old_prefix)
    if not remainder:
        return normalize_path(new_prefix)
    return join_path(new_prefix, remainder)


def is_dir_key(key: str) -> bool:
    """Return whether a raw ``citation.cite`` key denotes a directory.

    In the on-disk format directories carry a trailing slash (and the root is
    ``"/"``); plain file keys do not.
    """
    return key.strip().endswith("/")


def to_citation_key(path: str, is_directory: bool) -> str:
    """Render a canonical path as a ``citation.cite`` key.

    The root is written ``"/"``; other directories gain a trailing slash,
    mirroring Listing 1 of the paper.
    """
    canonical = normalize_path(path)
    if canonical == ROOT:
        return ROOT
    return canonical + "/" if is_directory else canonical


@dataclass(frozen=True, order=True)
class RepoPath:
    """A small value object wrapping a canonical repository path.

    Most APIs accept plain strings and normalise internally; ``RepoPath`` is a
    convenience for code that wants path algebra with attribute access (the
    workload generators and some tests use it).
    """

    value: str

    def __init__(self, path: str | "RepoPath") -> None:
        raw = path.value if isinstance(path, RepoPath) else path
        object.__setattr__(self, "value", normalize_path(raw))

    def __str__(self) -> str:
        return self.value

    @property
    def parts(self) -> tuple[str, ...]:
        return split_path(self.value)

    @property
    def parent(self) -> "RepoPath":
        return RepoPath(path_parent(self.value))

    @property
    def name(self) -> str:
        return path_basename(self.value)

    @property
    def depth(self) -> int:
        return path_depth(self.value)

    def joinpath(self, *segments: str) -> "RepoPath":
        return RepoPath(join_path(self.value, *segments))

    def ancestors(self, include_self: bool = False) -> Iterator["RepoPath"]:
        for ancestor in ancestors(self.value, include_self=include_self):
            yield RepoPath(ancestor)

    def is_ancestor_of(self, other: "RepoPath | str", strict: bool = True) -> bool:
        other_value = other.value if isinstance(other, RepoPath) else other
        return is_ancestor(self.value, other_value, strict=strict)

    def relative_to(self, base: "RepoPath | str") -> str:
        base_value = base.value if isinstance(base, RepoPath) else base
        return relative_to(self.value, base_value)


def common_prefix(paths: Iterable[str]) -> str:
    """Return the deepest common ancestor of ``paths`` (the root if none)."""
    iterator = iter(paths)
    try:
        first = split_path(next(iterator))
    except StopIteration:
        return ROOT
    prefix = list(first)
    for path in iterator:
        parts = split_path(path)
        new_prefix: list[str] = []
        for a, b in zip(prefix, parts):
            if a != b:
                break
            new_prefix.append(a)
        prefix = new_prefix
        if not prefix:
            return ROOT
    return "/" + "/".join(prefix) if prefix else ROOT
