"""Timestamp handling.

The paper's ``citation.cite`` entries carry committed dates in the GitHub API
format (``"2018-09-04T02:35:20Z"``).  The substrate therefore represents all
timestamps as timezone-aware UTC :class:`~datetime.datetime` objects and
serialises them in exactly that format.

Determinism matters for reproduction: the scenario builders that regenerate
Listing 1 pass explicit timestamps everywhere, and tests may install a fake
clock via :func:`set_clock` so object ids remain stable.
"""

from __future__ import annotations

from datetime import datetime, timezone
from typing import Callable, Optional

__all__ = [
    "now_utc",
    "set_clock",
    "reset_clock",
    "format_timestamp",
    "parse_timestamp",
    "FixedClock",
]

_TIMESTAMP_FORMAT = "%Y-%m-%dT%H:%M:%SZ"

_clock: Optional[Callable[[], datetime]] = None


def now_utc() -> datetime:
    """Return the current UTC time (or the installed fake clock's time)."""
    if _clock is not None:
        value = _clock()
    else:
        value = datetime.now(timezone.utc)
    return value.astimezone(timezone.utc).replace(microsecond=0)


def set_clock(clock: Callable[[], datetime]) -> None:
    """Install a callable used instead of the wall clock (tests/benchmarks)."""
    global _clock
    _clock = clock


def reset_clock() -> None:
    """Restore wall-clock behaviour."""
    global _clock
    _clock = None


class FixedClock:
    """A deterministic clock that advances by a fixed step on every call.

    >>> clock = FixedClock(datetime(2018, 9, 4, 2, 35, 20, tzinfo=timezone.utc))
    >>> clock().isoformat()
    '2018-09-04T02:35:20+00:00'
    >>> clock().isoformat()
    '2018-09-04T02:35:21+00:00'
    """

    def __init__(self, start: datetime, step_seconds: int = 1) -> None:
        if start.tzinfo is None:
            start = start.replace(tzinfo=timezone.utc)
        self._current = start.astimezone(timezone.utc)
        self._step_seconds = step_seconds

    def __call__(self) -> datetime:
        from datetime import timedelta

        value = self._current
        self._current = self._current + timedelta(seconds=self._step_seconds)
        return value


def format_timestamp(value: datetime) -> str:
    """Serialise a datetime in the GitHub API format used by Listing 1."""
    if value.tzinfo is None:
        value = value.replace(tzinfo=timezone.utc)
    return value.astimezone(timezone.utc).strftime(_TIMESTAMP_FORMAT)


def parse_timestamp(value: str) -> datetime:
    """Parse a timestamp in the GitHub API format (``YYYY-MM-DDTHH:MM:SSZ``).

    The paper's listing contains whitespace introduced by typesetting
    (``"2018 -09 -04 T02:35:20Z"``); stray spaces are tolerated.
    """
    cleaned = value.replace(" ", "")
    parsed = datetime.strptime(cleaned, _TIMESTAMP_FORMAT)
    return parsed.replace(tzinfo=timezone.utc)
