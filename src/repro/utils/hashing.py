"""Content hashing used by the version-control substrate.

The substrate mirrors Git's object model: every stored object (blob, tree,
commit, tag) is identified by the SHA-1 digest of a small header followed by
its serialised payload.  Keeping the header format identical to Git's
(``"<type> <size>\\0<payload>"``) means blob ids computed here match the ids
``git hash-object`` would produce for the same content, which makes the
substrate easy to validate against intuition even though no ``git`` binary is
available in this environment.
"""

from __future__ import annotations

import hashlib

__all__ = ["sha1_hex", "object_id", "short_id"]

#: Length of a full hexadecimal object id.
FULL_ID_LENGTH = 40

#: Conventional length of an abbreviated object id (as used in Listing 1 of
#: the paper, e.g. ``"bbd248a"``).
SHORT_ID_LENGTH = 7


def sha1_hex(data: bytes) -> str:
    """Return the SHA-1 digest of ``data`` as a 40-character hex string."""
    return hashlib.sha1(data).hexdigest()


def object_id(object_type: str, payload: bytes) -> str:
    """Compute the object id for a typed payload.

    Parameters
    ----------
    object_type:
        One of ``"blob"``, ``"tree"``, ``"commit"`` or ``"tag"``.
    payload:
        The serialised object body.

    Returns
    -------
    str
        The 40-character hexadecimal id of the object.
    """
    header = f"{object_type} {len(payload)}\0".encode("ascii")
    return sha1_hex(header + payload)


def short_id(oid: str, length: int = SHORT_ID_LENGTH) -> str:
    """Abbreviate an object id to ``length`` characters.

    The paper's Listing 1 records abbreviated commit ids (``"bbd248a"``,
    ``"5cc951e"``); the citation model stores abbreviations produced by this
    helper so generated ``citation.cite`` files have the same shape.
    """
    if length < 4:
        raise ValueError("abbreviated object ids must keep at least 4 characters")
    return oid[:length]
