"""Canonical JSON helpers.

The ``citation.cite`` file, the hosting-platform API payloads and the archive
simulator all serialise to JSON.  Canonical serialisation (sorted keys, fixed
separators, UTF-8, trailing newline) keeps object ids stable across runs: the
same citation function always serialises to the same bytes, so the commit that
snapshots ``citation.cite`` always has the same id — which is what makes the
Listing 1 reproduction exact.
"""

from __future__ import annotations

import json
from typing import Any

__all__ = ["canonical_dumps", "canonical_dump_bytes", "stable_loads", "pretty_dumps"]


def canonical_dumps(value: Any) -> str:
    """Serialise ``value`` as canonical JSON (sorted keys, compact separators)."""
    return json.dumps(value, sort_keys=True, separators=(",", ":"), ensure_ascii=False)


def canonical_dump_bytes(value: Any) -> bytes:
    """Serialise ``value`` as canonical UTF-8 JSON bytes with a trailing newline."""
    return (canonical_dumps(value) + "\n").encode("utf-8")


def pretty_dumps(value: Any) -> str:
    """Serialise ``value`` as human-readable JSON (2-space indent, sorted keys)."""
    return json.dumps(value, sort_keys=True, indent=2, ensure_ascii=False)


def stable_loads(data: str | bytes) -> Any:
    """Parse JSON from text or UTF-8 bytes, raising ``ValueError`` on failure."""
    if isinstance(data, bytes):
        data = data.decode("utf-8")
    return json.loads(data)
