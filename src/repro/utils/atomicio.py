"""Crash-atomic file writes: unique temp names, ``os.replace``, fsync.

Every durable artefact in the repository — ``state.json``, pack data files,
their indexes, loose objects — goes through :func:`atomic_write_bytes` (or
the streaming :class:`AtomicFile`).  The contract:

* A reader never observes a partial file: data lands under a ``.tmp-*``
  name and is atomically renamed into place with ``os.replace``.
* Temp names are unique per write (pid + per-process counter + random
  fragment), so a crashed writer's leftovers can never collide with a live
  writer even across pid reuse.
* ``durable=True`` fsyncs the file before the rename and the containing
  directory after it, so the rename itself survives a power cut.  Callers
  reserve it for source-of-truth artefacts (state.json, pack data);
  rebuildable caches (idx, midx) skip the fsyncs — losing one costs a
  rescan, not data.
* Orphaned temp files from crashed writers are removed by
  :func:`sweep_orphan_tmp` when a backend opens its directory.

Writes accept an optional *failpoint* name (see :mod:`repro.faults`) and
honour the full action semantics: ``crash`` dies before any byte is
written, ``truncate`` leaves a partial orphan temp file and dies (the torn
write a real crash produces), ``flip`` corrupts the payload but completes
(silent corruption for fsck to find), ``error`` raises the armed exception.
"""

from __future__ import annotations

import os
import uuid
from pathlib import Path

from repro import faults

__all__ = [
    "TMP_PREFIX",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "sweep_orphan_tmp",
    "unique_tmp_path",
    "AtomicFile",
]

TMP_PREFIX = ".tmp-"

#: Per-process monotonic counter folded into temp names.
_counter = 0


def _next_serial() -> int:
    global _counter
    _counter += 1
    return _counter


def unique_tmp_path(target: Path) -> Path:
    """A temp path next to ``target`` that no other writer can be using.

    pid alone is not enough — a crashed writer's pid can be reused by a new
    process mid-write — so the name also carries a per-process serial and a
    random fragment.
    """
    token = uuid.uuid4().hex[:8]
    name = f"{TMP_PREFIX}{target.name}.{os.getpid()}.{_next_serial()}.{token}"
    return target.parent / name


def fsync_directory(directory: Path) -> None:
    """Flush a directory's entry table so a completed rename survives a crash.

    Platforms that cannot fsync a directory (some filesystems, Windows)
    simply skip — the rename is still atomic, only its durability window
    widens to the OS's own flush.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def sweep_orphan_tmp(directory: Path, recursive: bool = False) -> int:
    """Delete leftover ``.tmp-*`` files under ``directory``; returns the count.

    Safe under the repository's single-writer discipline: any ``.tmp-*``
    file visible when a backend *opens* belongs to a writer that is gone —
    live writes only exist between our own write call and its rename.
    """
    removed = 0
    if not directory.is_dir():
        return removed
    entries = directory.rglob(f"{TMP_PREFIX}*") if recursive else directory.glob(f"{TMP_PREFIX}*")
    for entry in entries:
        if not entry.is_file():
            continue
        try:
            entry.unlink()
            removed += 1
        except OSError:
            continue
    return removed


def _apply_payload_fault(target: Path, data: bytes, failpoint: str | None) -> bytes:
    """Run the armed fault action for one whole-payload write."""
    action = faults.consume(failpoint)
    if action is None:
        return data
    if action.kind == "crash":
        raise faults.SimulatedCrash(failpoint or "?")
    if action.kind == "error":
        raise action.make_error(failpoint or "?")
    if action.kind == "truncate":
        # A real torn write: the partial temp file stays behind as an
        # orphan, the rename never happens, and the process dies.
        torn = unique_tmp_path(target)
        torn.write_bytes(data[: max(0, action.keep)])
        raise faults.SimulatedCrash(failpoint or "?", f"torn write after {action.keep} bytes")
    # flip: the write "succeeds" with silently corrupted content.
    if not data:
        return data
    position = min(max(action.offset, 0), len(data) - 1)
    mutated = bytearray(data)
    mutated[position] ^= action.xor or 0xFF
    return bytes(mutated)


def atomic_write_bytes(
    target: Path,
    data: bytes,
    durable: bool = False,
    failpoint: str | None = None,
) -> None:
    """Write ``data`` to ``target`` via temp + ``os.replace``.

    With ``durable``, the temp file is fsynced before the rename and the
    parent directory after it.  ``failpoint`` threads a fault-injection
    point through the write (no-op when disarmed).
    """
    data = _apply_payload_fault(target, data, failpoint)
    temporary = unique_tmp_path(target)
    try:
        with temporary.open("wb") as handle:
            handle.write(data)
            if durable:
                handle.flush()
                os.fsync(handle.fileno())
        os.replace(temporary, target)
    except OSError:
        try:
            temporary.unlink()
        except OSError:
            pass
        raise
    if durable:
        fsync_directory(target.parent)


def atomic_write_text(
    target: Path,
    text: str,
    encoding: str = "utf-8",
    durable: bool = False,
    failpoint: str | None = None,
) -> None:
    atomic_write_bytes(target, text.encode(encoding), durable=durable, failpoint=failpoint)


class AtomicFile:
    """Streaming variant for writers too large to buffer (pack streams).

    Usage::

        out = AtomicFile(target, durable=True, failpoint="storage.flush")
        out.write(chunk)        # repeatedly
        out.commit()            # fsync (if durable) + rename into place
        # or out.abort() / rely on close() to discard the temp file

    The failpoint is consumed once, at construction: ``crash`` dies before
    any byte exists, ``truncate`` lets exactly ``keep`` payload bytes
    through and then dies (leaving the orphan temp file), ``flip`` corrupts
    one byte of the stream at ``offset``, ``error`` raises immediately.
    """

    def __init__(self, target: Path, durable: bool = False, failpoint: str | None = None) -> None:
        self.target = Path(target)
        self.durable = durable
        self._written = 0
        self._committed = False
        self._failpoint = failpoint or "?"
        self._action = faults.consume(failpoint)
        if self._action is not None and self._action.kind == "crash":
            raise faults.SimulatedCrash(failpoint or "?")
        if self._action is not None and self._action.kind == "error":
            raise self._action.make_error(failpoint or "?")
        self.path = unique_tmp_path(self.target)
        self._handle = self.path.open("wb")

    def write(self, data: bytes) -> None:
        action = self._action
        if action is not None and action.kind == "truncate":
            remaining = max(0, action.keep - self._written)
            if len(data) > remaining:
                self._handle.write(data[:remaining])
                self._handle.close()
                # The orphan temp file stays behind, exactly like a crash.
                raise faults.SimulatedCrash(
                    self._failpoint, f"torn stream after {action.keep} bytes"
                )
        elif action is not None and action.kind == "flip" and data:
            start = self._written
            if start <= action.offset < start + len(data):
                mutated = bytearray(data)
                mutated[action.offset - start] ^= action.xor or 0xFF
                data = bytes(mutated)
        self._handle.write(data)
        self._written += len(data)

    def tell(self) -> int:
        return self._written

    def commit(self) -> None:
        if self.durable:
            self._handle.flush()
            os.fsync(self._handle.fileno())
        self._handle.close()
        os.replace(self.path, self.target)
        self._committed = True
        if self.durable:
            fsync_directory(self.target.parent)

    def abort(self) -> None:
        self.close()

    def close(self) -> None:
        if self._committed:
            return
        try:
            self._handle.close()
        except OSError:
            pass
        try:
            self.path.unlink()
        except OSError:
            pass
