"""Sorted-key-list maintenance shared by the bisect-backed indexes.

Both :class:`repro.citation.function.CitationFunction` and
:class:`repro.vcs.index.StagingIndex` keep a sorted list of canonical paths
next to their hash map so prefix queries become bisect-bounded range scans.
The insert/remove bookkeeping lives here so the two indexes cannot drift.
"""

from __future__ import annotations

from bisect import bisect_left, insort

__all__ = ["sorted_insert", "sorted_remove", "descendant_slice"]


def sorted_insert(keys: list[str], key: str) -> None:
    """Insert ``key`` into the sorted list (caller ensures it is new)."""
    insort(keys, key)


def sorted_remove(keys: list[str], key: str) -> None:
    """Remove ``key`` from the sorted list if present."""
    position = bisect_left(keys, key)
    if position < len(keys) and keys[position] == key:
        del keys[position]


def descendant_slice(keys: list[str], prefix: str) -> tuple[int, int]:
    """Index range in ``keys`` of the strict descendants of canonical ``prefix``.

    Canonical paths make string-prefix and component-ancestor checks agree:
    every descendant of ``/a`` starts with ``"/a/"``, and those keys form
    the contiguous range ``["/a/", "/a0")`` ("0" is the successor of "/").
    The root ``"/"`` is everyone's ancestor, so its range is everything
    after the root key itself.
    """
    if prefix == "/":
        start = bisect_left(keys, "/")
        if start < len(keys) and keys[start] == "/":
            start += 1
        return start, len(keys)
    return bisect_left(keys, prefix + "/"), bisect_left(keys, prefix + "0")
