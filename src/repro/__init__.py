"""GitCite reproduction: automated software citation for version-controlled repositories.

This library is a from-scratch reproduction of *"Automating Software Citation
using GitCite"* (Chen & Davidson).  It contains the paper's citation model and
both GitCite components (the browser extension and the local executable tool),
plus every substrate they need, implemented in pure Python:

* :mod:`repro.vcs` — a content-addressable version-control system with Git
  semantics (the substrate the paper builds on);
* :mod:`repro.hub` — a hosting-platform simulator standing in for GitHub,
  with users, permissions, forks and a REST-style API;
* :mod:`repro.citation` — the citation model: citation functions with
  closest-ancestor resolution, the ``citation.cite`` file, AddCite / DelCite /
  ModifyCite / GenCite, CopyCite / MergeCite / ForkCite, conflict-resolution
  strategies, consistency checking and retroactive citation;
* :mod:`repro.extension` — the browser-extension simulator (Figure 2);
* :mod:`repro.cli` — the ``gitcite`` local executable tool;
* :mod:`repro.formats` — BibTeX / CFF / RIS / APA / DataCite renderings;
* :mod:`repro.archive` — Zenodo-style DOI minting and Software Heritage
  identifiers;
* :mod:`repro.workloads` — the paper's scenarios (Figure 1, Listing 1,
  Figure 2) and synthetic workload generators for the benchmarks.

Quick start::

    from repro.vcs import Repository
    from repro.citation import CitationManager

    repo = Repository.init("my-project", "alice")
    repo.write_file("src/model.py", "def train(): ...\\n")
    repo.commit("initial commit")

    citations = CitationManager(repo)
    citations.init_citations()          # attach the default root citation
    citations.commit("enable citations")
    print(citations.cite("/src/model.py").citation)
"""

from repro.citation import Citation, CitationFunction, CitationManager
from repro.vcs import Repository

__version__ = "1.0.0"

__all__ = ["Citation", "CitationFunction", "CitationManager", "Repository", "__version__"]
