"""Exception hierarchy shared by every ``repro`` subsystem.

The reproduction spans several subsystems (a version-control substrate, a
hosting-platform simulator, the citation model itself, formatters, an archive
simulator and a command-line tool).  All of them raise exceptions derived from
:class:`ReproError` so callers can catch a single base class at API
boundaries, while tests can assert on the precise subclass.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "VCSError",
    "ObjectNotFoundError",
    "InvalidObjectError",
    "RefError",
    "IndexError_",
    "StorageError",
    "CorruptObjectError",
    "CheckoutError",
    "MergeError",
    "MergeConflictError",
    "RemoteError",
    "BundleError",
    "BundleChecksumError",
    "TransportError",
    "HubError",
    "AuthenticationError",
    "PermissionDeniedError",
    "NotFoundError",
    "ValidationError",
    "TransferCorruptError",
    "ServiceUnavailableError",
    "RateLimitExceededError",
    "CitationError",
    "CitationNotFoundError",
    "CitationExistsError",
    "CitationConflictError",
    "CitationFileError",
    "InvalidCitationError",
    "InvalidPathError",
    "ConsistencyError",
    "FormatError",
    "ArchiveError",
    "DepositError",
    "CLIError",
]


class ReproError(Exception):
    """Base class for every error raised by this package."""


# ---------------------------------------------------------------------------
# Version-control substrate (``repro.vcs``)
# ---------------------------------------------------------------------------


class VCSError(ReproError):
    """Base class for errors raised by the version-control substrate."""


class ObjectNotFoundError(VCSError):
    """An object id was not present in the object store."""

    def __init__(self, oid: str) -> None:
        super().__init__(f"object not found: {oid}")
        self.oid = oid


class InvalidObjectError(VCSError):
    """An object could not be parsed or failed integrity checks."""


class RefError(VCSError):
    """A branch, tag or HEAD reference was missing or malformed."""


class IndexError_(VCSError):
    """The staging index was used incorrectly (e.g. path outside the tree)."""


class StorageError(VCSError):
    """A storage backend could not be created, opened or written."""


class CorruptObjectError(StorageError):
    """On-disk object data failed its integrity check when read back."""

    def __init__(self, oid: str, detail: str) -> None:
        super().__init__(f"corrupt object {oid}: {detail}")
        self.oid = oid


class CheckoutError(VCSError):
    """A working-tree checkout could not be completed."""


class MergeError(VCSError):
    """A merge could not be performed (e.g. unrelated histories)."""


class MergeConflictError(MergeError):
    """A three-way merge produced conflicts that the caller must resolve.

    The conflicting paths are available on :attr:`conflicts`.
    """

    def __init__(self, conflicts: list[str]) -> None:
        super().__init__(f"merge produced {len(conflicts)} conflict(s): {sorted(conflicts)}")
        self.conflicts = list(conflicts)


class RemoteError(VCSError):
    """Push/pull/clone between repositories failed."""


class BundleError(RemoteError):
    """A transfer bundle is malformed, truncated, corrupt or inapplicable.

    Raised by the sync subsystem *before* anything is written, so a bad
    bundle never leaves the receiving repository partially updated.
    """


class BundleChecksumError(BundleError):
    """The bundle *stream* failed its checksum or arrived truncated.

    Distinguished from the semantic :class:`BundleError` cases (bad refs,
    missing prerequisites) because a checksum failure means the bytes were
    damaged in flight or on disk — re-reading or re-sending the stream may
    succeed, so the transport layer treats it as retryable.
    """


class TransportError(RemoteError):
    """The wire transport itself failed (connection reset, dropped response).

    Always retryable: the failure happened before a well-formed response
    arrived, so re-issuing the request cannot double-apply anything the
    server already did — the wire operations are idempotent by design.
    """


# ---------------------------------------------------------------------------
# Hosting-platform simulator (``repro.hub``)
# ---------------------------------------------------------------------------


class HubError(ReproError):
    """Base class for hosting-platform errors."""

    status_code: int = 500
    #: Whether re-sending the identical request can plausibly succeed.
    #: Surfaced in wire responses so a remote client's retry policy can
    #: distinguish transient failures from semantic rejections.
    retryable: bool = False


class AuthenticationError(HubError):
    """Missing or invalid credentials (HTTP 401 analogue)."""

    status_code = 401


class PermissionDeniedError(HubError):
    """The authenticated user lacks the required permission (HTTP 403)."""

    status_code = 403


class NotFoundError(HubError):
    """The requested hosted resource does not exist (HTTP 404)."""

    status_code = 404


class ValidationError(HubError):
    """The request payload was malformed (HTTP 422)."""

    status_code = 422


class TransferCorruptError(ValidationError):
    """An uploaded bundle was damaged in flight (checksum mismatch).

    Still a 422 — the *request* is bad — but retryable, because the sender
    holds an intact copy and a re-send may arrive clean.
    """

    retryable = True


class ServiceUnavailableError(HubError):
    """The hub cannot serve this request right now (HTTP 503).

    Raised for the three lifecycle conditions that heal without the client
    changing anything: the server is draining for shutdown, the in-flight
    gauge shed the request under overload, or the hub is running degraded
    (read-only) after a disk failure or an unclean recovery.  Always
    retryable; ``retry_after`` hints how long to back off before the
    retry has a chance.
    """

    status_code = 503
    retryable = True

    def __init__(self, message: str = "service unavailable", retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


class RateLimitExceededError(HubError):
    """The client exhausted its request quota (HTTP 429).

    ``retry_after`` carries the seconds until the quota window resets, when
    the limiter can compute it; it is echoed in the wire response so clients
    can sleep exactly long enough instead of guessing.
    """

    status_code = 429
    retryable = True

    def __init__(self, message: str = "rate limit exceeded", retry_after: float | None = None) -> None:
        super().__init__(message)
        self.retry_after = retry_after


# ---------------------------------------------------------------------------
# Citation model (``repro.citation``)
# ---------------------------------------------------------------------------


class CitationError(ReproError):
    """Base class for citation-model errors."""


class CitationNotFoundError(CitationError):
    """No explicit citation is attached to the given path."""

    def __init__(self, path: str) -> None:
        super().__init__(f"no explicit citation attached to path: {path!r}")
        self.path = path


class CitationExistsError(CitationError):
    """AddCite was applied to a path that already has an explicit citation."""

    def __init__(self, path: str) -> None:
        super().__init__(
            f"path already has an explicit citation: {path!r} (use ModifyCite instead)"
        )
        self.path = path


class CitationConflictError(CitationError):
    """MergeCite found same-key/different-value conflicts and no resolver."""

    def __init__(self, paths: list[str]) -> None:
        super().__init__(
            f"citation merge produced {len(paths)} unresolved conflict(s): {sorted(paths)}"
        )
        self.paths = list(paths)


class CitationFileError(CitationError):
    """The ``citation.cite`` file is missing, malformed or inconsistent."""


class InvalidCitationError(CitationError):
    """A citation record failed validation."""


class InvalidPathError(CitationError):
    """A citation key is not a valid repository-relative POSIX path."""


class ConsistencyError(CitationError):
    """The citation function violates an invariant w.r.t. the project tree."""


# ---------------------------------------------------------------------------
# Formatters, archive, CLI
# ---------------------------------------------------------------------------


class FormatError(ReproError):
    """A citation could not be rendered in the requested bibliographic format."""


class ArchiveError(ReproError):
    """Base class for archival-simulator errors (Zenodo / Software Heritage)."""


class DepositError(ArchiveError):
    """A Zenodo-style deposit could not be created or published."""


class CLIError(ReproError):
    """A command-line invocation failed; carries the intended exit status."""

    def __init__(self, message: str, exit_code: int = 1) -> None:
        super().__init__(message)
        self.exit_code = exit_code
