"""API-level operations of the GitCite browser extension.

The extension never touches a local checkout: every read and write goes
through the hosting platform's REST API, exactly as described in Section 3
("The extension communicates with the GitHub servers using its REST API, and
directly modifies the citation file on the remote repository").

:class:`ExtensionClient` therefore works purely in terms of
``owner/name`` slugs, refs and paths; it downloads ``citation.cite`` through
the contents endpoint, evaluates the citation function locally, and — for
project members — uploads the modified file back through the same endpoint.
"""

from __future__ import annotations

import base64
from dataclasses import dataclass
from typing import Optional

from repro.errors import CitationFileError, HubError, NotFoundError, PermissionDeniedError
from repro.citation.citefile import CITATION_FILE_PATH, dumps_citation_file, loads_citation_file
from repro.citation.function import CitationFunction, ResolvedCitation
from repro.citation.operators import AddCite, DelCite, ModifyCite, apply_operation
from repro.citation.record import Citation
from repro.hub.api import RestApi
from repro.hub.retry import RetryingApi, RetryPolicy
from repro.utils.paths import normalize_path

__all__ = ["ExtensionClient", "RemoteCitationView"]


@dataclass(frozen=True)
class RemoteCitationView:
    """What the extension knows about one node of a remote repository."""

    slug: str
    ref: str
    path: str
    is_member: bool
    explicit_citation: Optional[Citation]
    resolved: ResolvedCitation

    @property
    def generated_text(self) -> str:
        """The citation text shown in the popup's window (copy-paste ready)."""
        return str(self.resolved.citation)


class ExtensionClient:
    """The extension's network layer plus citation logic.

    Pass ``retry`` (a :class:`~repro.hub.retry.RetryPolicy`) to wrap the API
    in a :class:`~repro.hub.retry.RetryingApi`: a flaky wire — dropped
    requests, lost responses, 429s, transient 5xxs — is then retried with
    backoff instead of surfacing as a popup error on the first hiccup.
    """

    def __init__(
        self,
        api: RestApi,
        token: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
    ) -> None:
        self.api = RetryingApi(api, policy=retry) if retry is not None else api
        self.token = token

    # ------------------------------------------------------------------
    # Session / identity
    # ------------------------------------------------------------------

    def sign_in(self, token: str) -> str:
        """Store credentials and return the authenticated login.

        Raises :class:`~repro.errors.AuthenticationError`-shaped API failures
        as :class:`HubError` so the popup can show them.
        """
        response = self.api.get("/user", token=token)
        if not response.ok:
            raise PermissionDeniedError(f"sign-in failed: {response.json.get('message')}")
        self.token = token
        return response.json["login"]

    def sign_out(self) -> None:
        self.token = None

    def current_login(self) -> Optional[str]:
        if self.token is None:
            return None
        response = self.api.get("/user", token=self.token)
        return response.json["login"] if response.ok else None

    # ------------------------------------------------------------------
    # Remote repository inspection
    # ------------------------------------------------------------------

    def repository_info(self, slug: str) -> dict:
        response = self.api.get(f"/repos/{slug}", token=self.token)
        self._raise_for_status(response)
        return response.json

    def default_branch(self, slug: str) -> str:
        return self.repository_info(slug)["default_branch"]

    def is_member(self, slug: str) -> bool:
        """Whether the signed-in user may modify files (add/delete citations)."""
        login = self.current_login()
        if login is None:
            return False
        response = self.api.get(f"/repos/{slug}/collaborators/{login}/permission", token=self.token)
        if not response.ok:
            return False
        return response.json["permission"] in ("write", "admin")

    def citation_function(self, slug: str, ref: Optional[str] = None) -> CitationFunction:
        """Download and parse the remote ``citation.cite`` of a version."""
        ref = ref or self.default_branch(slug)
        url = f"/repos/{slug}/contents{CITATION_FILE_PATH}?ref={ref}"
        response = self.api.get(url, token=self.token)
        if response.status == 404:
            raise CitationFileError(
                f"{slug}@{ref} is not citation-enabled (no {CITATION_FILE_PATH[1:]} found)"
            )
        self._raise_for_status(response)
        text = base64.b64decode(response.json["content"]).decode("utf-8")
        return loads_citation_file(text)

    # ------------------------------------------------------------------
    # GenCite (available to everyone with read access)
    # ------------------------------------------------------------------

    def view_node(self, slug: str, path: str, ref: Optional[str] = None) -> RemoteCitationView:
        """Gather what the popup needs for one node (Figure 2's main view)."""
        ref = ref or self.default_branch(slug)
        function = self.citation_function(slug, ref)
        canonical = normalize_path(path)
        return RemoteCitationView(
            slug=slug,
            ref=ref,
            path=canonical,
            is_member=self.is_member(slug),
            explicit_citation=function.get_explicit(canonical),
            resolved=function.resolve(canonical),
        )

    def generate_citation(self, slug: str, path: str, ref: Optional[str] = None) -> ResolvedCitation:
        """GenCite for a remote node: evaluate ``Cite(V,P)(path)`` remotely."""
        return self.view_node(slug, path, ref=ref).resolved

    # ------------------------------------------------------------------
    # AddCite / ModifyCite / DelCite (project members only)
    # ------------------------------------------------------------------

    def add_citation(
        self,
        slug: str,
        path: str,
        citation: Citation,
        ref: Optional[str] = None,
        is_directory: bool = False,
    ) -> str:
        """Attach a citation to a remote node by rewriting ``citation.cite``."""
        return self._mutate(
            slug,
            ref,
            AddCite(path=path, citation=citation, is_directory=is_directory),
            f"AddCite {normalize_path(path)} via GitCite extension",
        )

    def modify_citation(
        self, slug: str, path: str, citation: Citation, ref: Optional[str] = None
    ) -> str:
        """Replace the citation of a remote node."""
        return self._mutate(
            slug,
            ref,
            ModifyCite(path=path, citation=citation),
            f"ModifyCite {normalize_path(path)} via GitCite extension",
        )

    def delete_citation(self, slug: str, path: str, ref: Optional[str] = None) -> str:
        """Remove the explicit citation of a remote node."""
        return self._mutate(
            slug,
            ref,
            DelCite(path=path),
            f"DelCite {normalize_path(path)} via GitCite extension",
        )

    def _mutate(self, slug: str, ref: Optional[str], operation, message: str) -> str:
        if not self.is_member(slug):
            raise PermissionDeniedError(
                "only project members may add, modify or delete citations "
                "(non-members can still generate citations)"
            )
        ref = ref or self.default_branch(slug)
        function = self.citation_function(slug, ref)
        apply_operation(function, operation)
        payload = {
            "message": message,
            "content": base64.b64encode(dumps_citation_file(function).encode("utf-8")).decode("ascii"),
            "branch": ref,
        }
        response = self.api.put(
            f"/repos/{slug}/contents{CITATION_FILE_PATH}", payload, token=self.token
        )
        self._raise_for_status(response)
        return response.json["commit"]["sha"]

    # ------------------------------------------------------------------

    @staticmethod
    def _raise_for_status(response) -> None:
        if response.ok:
            return
        message = (response.json or {}).get("message", "request failed")
        if response.status == 404:
            raise NotFoundError(message)
        if response.status == 403:
            raise PermissionDeniedError(message)
        raise HubError(message)
