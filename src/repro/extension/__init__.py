"""The GitCite browser-extension simulator.

The paper's extension (Figure 2) is a Chrome popup written in JavaScript that
talks to GitHub's REST API.  This package reproduces its behaviour in Python
against the :mod:`repro.hub` platform simulator:

* :mod:`client` — :class:`~repro.extension.client.ExtensionClient`, the
  API-facing operations: generate a citation for any node of a remote
  repository, and (for project members) add / modify / delete citations by
  rewriting the remote ``citation.cite``;
* :mod:`popup` — :class:`~repro.extension.popup.PopupSession`, the popup's
  state machine: credential entry, node selection, the text box whose content
  depends on membership, and the button-enablement rules of Section 3.
"""

from repro.extension.client import ExtensionClient, RemoteCitationView
from repro.extension.popup import PopupSession, PopupView

__all__ = ["ExtensionClient", "RemoteCitationView", "PopupSession", "PopupView"]
