"""The popup state machine of the GitCite browser extension (Figure 2).

Section 3 describes the popup's behaviour precisely:

* users provide their credentials to obtain access to the repository, then
  click on a node;
* if the user is **not** a project member the extension *immediately
  generates the citation* (shown in the text window) so it can be copy-pasted
  into a bibliography manager, and the Add/Delete buttons are disabled;
* if the user **is** a project member, the text box shows the citation
  *explicitly attached* to the node if one exists (which they may modify);
  otherwise the box stays empty, and the user may type a citation or press
  "Generate Citation" to see the closest ancestor's citation, edit it, and
  attach it to the current node.

:class:`PopupSession` models exactly those interactions so the reproduction
of Figure 2 (benchmark FIG2-EXTENSION-POPUP) can assert on the rendered
state, not just on API effects.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Optional

from repro.errors import CitationError
from repro.citation.record import Citation
from repro.extension.client import ExtensionClient
from repro.utils.paths import normalize_path

__all__ = ["PopupView", "PopupSession"]


@dataclass(frozen=True)
class PopupView:
    """A rendering of the popup for the currently selected node."""

    slug: str
    ref: str
    path: str
    signed_in_as: Optional[str]
    is_member: bool
    text_box: str
    generated_text: str
    add_enabled: bool
    delete_enabled: bool
    modify_enabled: bool
    generate_enabled: bool

    def as_lines(self) -> list[str]:
        """A plain-text rendering (used by the example scripts)."""
        def mark(enabled: bool) -> str:
            return "enabled" if enabled else "disabled"

        return [
            f"Repository : {self.slug} @ {self.ref}",
            f"Node       : {self.path}",
            f"User       : {self.signed_in_as or '(anonymous)'}"
            + ("  [project member]" if self.is_member else "  [not a member]"),
            f"Citation   : {self.text_box or '(empty)'}",
            f"[Generate Citation: {mark(self.generate_enabled)}] "
            f"[Add: {mark(self.add_enabled)}] "
            f"[Modify: {mark(self.modify_enabled)}] "
            f"[Delete: {mark(self.delete_enabled)}]",
        ]


class PopupSession:
    """Drive the popup through its states: sign in → select node → act."""

    def __init__(self, client: ExtensionClient) -> None:
        self.client = client
        self.slug: Optional[str] = None
        self.ref: Optional[str] = None
        self.path: Optional[str] = None
        self._text_box: str = ""

    # ------------------------------------------------------------------
    # State transitions
    # ------------------------------------------------------------------

    def sign_in(self, token: str) -> str:
        """Provide credentials (the popup's token field)."""
        return self.client.sign_in(token)

    def open_repository(self, slug: str, ref: Optional[str] = None) -> None:
        """Point the popup at a repository page."""
        self.slug = slug
        self.ref = ref or self.client.default_branch(slug)
        self.path = None
        self._text_box = ""

    def select_node(self, path: str) -> PopupView:
        """Click on a file or directory of the repository page."""
        if self.slug is None or self.ref is None:
            raise CitationError("open a repository before selecting a node")
        self.path = normalize_path(path)
        view = self._render()
        self._text_box = view.text_box
        return view

    def _render(self) -> PopupView:
        assert self.slug and self.ref and self.path
        node = self.client.view_node(self.slug, self.path, ref=self.ref)
        signed_in_as = self.client.current_login()
        if node.is_member:
            # Members see the explicit citation (or an empty box inviting input).
            text_box = (
                json.dumps(node.explicit_citation.to_dict(), indent=2, sort_keys=True)
                if node.explicit_citation is not None
                else ""
            )
        else:
            # Non-members immediately get the generated citation to copy-paste.
            text_box = node.generated_text
        return PopupView(
            slug=self.slug,
            ref=self.ref,
            path=self.path,
            signed_in_as=signed_in_as,
            is_member=node.is_member,
            text_box=text_box,
            generated_text=node.generated_text,
            add_enabled=node.is_member and node.explicit_citation is None,
            delete_enabled=node.is_member and node.explicit_citation is not None,
            modify_enabled=node.is_member and node.explicit_citation is not None,
            generate_enabled=True,
        )

    # ------------------------------------------------------------------
    # Button actions
    # ------------------------------------------------------------------

    def press_generate(self) -> str:
        """The "Generate Citation" button: fill the box with Cite(V,P)(node)."""
        self._require_node()
        resolved = self.client.generate_citation(self.slug, self.path, ref=self.ref)
        self._text_box = json.dumps(resolved.citation.to_dict(), indent=2, sort_keys=True)
        return self._text_box

    def edit_text_box(self, citation: Citation) -> str:
        """Type/replace the citation shown in the text box (members only edit)."""
        self._require_node()
        self._text_box = json.dumps(citation.to_dict(), indent=2, sort_keys=True)
        return self._text_box

    def press_add(self, is_directory: bool = False) -> str:
        """The "Add" button: attach the box's citation to the selected node."""
        citation = self._citation_from_box()
        commit = self.client.add_citation(
            self.slug, self.path, citation, ref=self.ref, is_directory=is_directory
        )
        return commit

    def press_modify(self) -> str:
        """Save an edited citation over the node's existing one."""
        citation = self._citation_from_box()
        return self.client.modify_citation(self.slug, self.path, citation, ref=self.ref)

    def press_delete(self) -> str:
        """The "Delete" button: remove the node's explicit citation."""
        self._require_node()
        return self.client.delete_citation(self.slug, self.path, ref=self.ref)

    # ------------------------------------------------------------------

    def _require_node(self) -> None:
        if not (self.slug and self.ref and self.path):
            raise CitationError("select a node in an open repository first")

    def _citation_from_box(self) -> Citation:
        self._require_node()
        if not self._text_box.strip():
            raise CitationError("the citation text box is empty; generate or type a citation first")
        try:
            return Citation.from_dict(json.loads(self._text_box))
        except (ValueError, CitationError) as exc:
            raise CitationError(f"the text box does not contain a valid citation: {exc}") from exc
