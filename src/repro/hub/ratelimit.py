"""Request quotas, modelled on the GitHub REST API rate limits.

The browser extension talks to the platform through authenticated requests;
GitHub enforces a per-token quota (and a much lower anonymous quota).  The
simulator reproduces that behaviour deterministically: quotas are counted
per identity and reset explicitly (benchmarks reset between iterations), or
— when a ``clock`` is injected — by rolling time windows, which is what
lets a retry policy sleep through a 429 and deterministically succeed.

A 429 carries a ``Retry-After`` hint (seconds until the identity's window
resets) whenever the limiter can compute one, mirroring the HTTP header of
the same name; without a clock there is no window to wait out, so the hint
is the full window length.

The limiter is thread-safe: counting is a read-modify-write, so
:meth:`RateLimiter.check`, :meth:`~RateLimiter.status` and
:meth:`~RateLimiter.reset` run under one internal lock — concurrent requests
from the same identity can never double-spend a quota slot.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable

from repro.errors import RateLimitExceededError

__all__ = [
    "RateLimiter",
    "QuotaStatus",
    "AUTHENTICATED_LIMIT",
    "ANONYMOUS_LIMIT",
    "DEFAULT_WINDOW_SECONDS",
]

#: Default request quotas (requests per window), mirroring GitHub's 5000/60.
AUTHENTICATED_LIMIT = 5000
ANONYMOUS_LIMIT = 60
#: Quota window length, mirroring GitHub's hourly reset.
DEFAULT_WINDOW_SECONDS = 3600.0


@dataclass(frozen=True)
class QuotaStatus:
    """Remaining quota for one identity."""

    identity: str
    limit: int
    used: int

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.used)


class RateLimiter:
    """Per-identity request counting with hard limits.

    ``clock`` (a zero-arg callable returning seconds, e.g. a fake monotonic
    clock in tests) enables time-windowed quotas: an identity's counter
    starts its window at the first counted request and resets once
    ``window_seconds`` elapse.  Without a clock the limiter keeps the
    original explicit-reset behaviour.
    """

    def __init__(
        self,
        authenticated_limit: int = AUTHENTICATED_LIMIT,
        anonymous_limit: int = ANONYMOUS_LIMIT,
        enabled: bool = True,
        window_seconds: float = DEFAULT_WINDOW_SECONDS,
        clock: Callable[[], float] | None = None,
    ) -> None:
        self.authenticated_limit = authenticated_limit
        self.anonymous_limit = anonymous_limit
        self.enabled = enabled
        self.window_seconds = window_seconds
        self.clock = clock
        self._used: dict[str, int] = {}  # guarded-by: _lock
        self._window_start: dict[str, float] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def _limit_for(self, identity: str) -> int:
        return self.anonymous_limit if identity == "anonymous" else self.authenticated_limit

    def _roll_window(self, key: str) -> None:  # lint: holds-lock(_lock)
        if self.clock is None:
            return
        start = self._window_start.get(key)
        if start is not None and self.clock() - start >= self.window_seconds:
            self._used.pop(key, None)
            self._window_start.pop(key, None)

    def retry_after(self, identity: str | None) -> float:
        """Seconds until ``identity``'s quota window resets.

        With a clock this is exact; without one the window never rolls on
        its own, so the full window length is the honest upper bound.
        """
        key = identity or "anonymous"
        if self.clock is not None:
            start = self._window_start.get(key)  # atomic; called under the lock too
            if start is not None:
                return max(0.0, self.window_seconds - (self.clock() - start))
        return self.window_seconds

    def check(self, identity: str | None) -> QuotaStatus:
        """Record one request for ``identity`` and return the remaining quota.

        Raises
        ------
        RateLimitExceededError
            When the identity has exhausted its quota.  Carries
            ``retry_after`` — the seconds until the window resets.
        """
        key = identity or "anonymous"
        with self._lock:
            self._roll_window(key)
            used = self._used.get(key, 0)
            limit = self._limit_for(key)
            if self.enabled and used >= limit:
                raise RateLimitExceededError(
                    f"API rate limit exceeded for {key} ({limit} requests)",
                    retry_after=self.retry_after(key),
                )
            if self.clock is not None and key not in self._window_start:
                self._window_start[key] = self.clock()
            self._used[key] = used + 1
            return QuotaStatus(identity=key, limit=limit, used=used + 1)

    def status(self, identity: str | None) -> QuotaStatus:
        """Return the quota status without consuming a request."""
        key = identity or "anonymous"
        with self._lock:
            self._roll_window(key)
            return QuotaStatus(
                identity=key, limit=self._limit_for(key), used=self._used.get(key, 0)
            )

    def reset(self, identity: str | None = None) -> None:
        """Reset one identity's counter, or everyone's when ``identity`` is ``None``."""
        with self._lock:
            if identity is None:
                self._used.clear()
                self._window_start.clear()
            else:
                self._used.pop(identity, None)
                self._window_start.pop(identity, None)
