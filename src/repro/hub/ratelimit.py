"""Request quotas, modelled on the GitHub REST API rate limits.

The browser extension talks to the platform through authenticated requests;
GitHub enforces a per-token quota (and a much lower anonymous quota).  The
simulator reproduces that behaviour deterministically: quotas are counted per
identity and reset explicitly (benchmarks reset between iterations) rather
than by wall-clock windows.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RateLimitExceededError

__all__ = ["RateLimiter", "QuotaStatus", "AUTHENTICATED_LIMIT", "ANONYMOUS_LIMIT"]

#: Default request quotas (requests per window), mirroring GitHub's 5000/60.
AUTHENTICATED_LIMIT = 5000
ANONYMOUS_LIMIT = 60


@dataclass(frozen=True)
class QuotaStatus:
    """Remaining quota for one identity."""

    identity: str
    limit: int
    used: int

    @property
    def remaining(self) -> int:
        return max(0, self.limit - self.used)


class RateLimiter:
    """Per-identity request counting with hard limits."""

    def __init__(
        self,
        authenticated_limit: int = AUTHENTICATED_LIMIT,
        anonymous_limit: int = ANONYMOUS_LIMIT,
        enabled: bool = True,
    ) -> None:
        self.authenticated_limit = authenticated_limit
        self.anonymous_limit = anonymous_limit
        self.enabled = enabled
        self._used: dict[str, int] = {}

    def _limit_for(self, identity: str) -> int:
        return self.anonymous_limit if identity == "anonymous" else self.authenticated_limit

    def check(self, identity: str | None) -> QuotaStatus:
        """Record one request for ``identity`` and return the remaining quota.

        Raises
        ------
        RateLimitExceededError
            When the identity has exhausted its quota.
        """
        key = identity or "anonymous"
        used = self._used.get(key, 0)
        limit = self._limit_for(key)
        if self.enabled and used >= limit:
            raise RateLimitExceededError(
                f"API rate limit exceeded for {key} ({limit} requests); reset the window first"
            )
        self._used[key] = used + 1
        return QuotaStatus(identity=key, limit=limit, used=used + 1)

    def status(self, identity: str | None) -> QuotaStatus:
        """Return the quota status without consuming a request."""
        key = identity or "anonymous"
        return QuotaStatus(identity=key, limit=self._limit_for(key), used=self._used.get(key, 0))

    def reset(self, identity: str | None = None) -> None:
        """Reset one identity's counter, or everyone's when ``identity`` is ``None``."""
        if identity is None:
            self._used.clear()
        else:
            self._used.pop(identity, None)
