"""Retrying wire transport: exponential backoff, jitter, ``Retry-After``.

The wire between a client and the hub can fail three ways: the request is
lost before the server sees it, the server fails transiently (a 5xx, a
damaged-in-flight upload, a 429), or the *response* is lost after the
server already acted.  :class:`RetryPolicy` + :class:`RetryingApi` make all
three survivable with one mechanism, because every wire endpoint is
idempotent — re-sending an identical receive-pack is a no-op success
(see :func:`repro.vcs.transfer.session.apply_bundle`), reads are pure, and
ref updates converge to the same tips.

Determinism is injected, never assumed: the backoff jitter comes from a
seeded RNG, sleeping goes through a caller-supplied ``sleep`` callable, so
tests (and the fleet's fault schedules) replay byte-identical retry traces
with a fake clock — a ``sleep`` that *advances* that clock makes 429
windows genuinely expire mid-test.

Retry classification:

* raised :class:`~repro.errors.TransportError` — always retry (the request
  or response died in flight);
* HTTP 429 — retry after the response's ``retry_after`` hint (the rate
  window's actual remaining time) or the backoff delay, whichever is later;
* HTTP 5xx — retry (server-side failure of a well-formed request);
* any response whose body carries ``retryable: true`` (e.g. a 422 from a
  checksum-corrupt upload, where the sender's copy is intact) — retry;
* everything else — return immediately; semantic rejections do not heal
  with repetition.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Callable, Optional

from repro.errors import TransportError

__all__ = ["RetryPolicy", "RetryingApi"]


@dataclass(frozen=True)
class RetryPolicy:
    """Exponential backoff with full jitter and a hard attempt cap."""

    #: Total tries, including the first (1 = no retries at all).
    max_attempts: int = 5
    base_delay: float = 0.1
    max_delay: float = 30.0
    multiplier: float = 2.0
    #: Fraction of each delay randomised away (0 = fully deterministic).
    jitter: float = 0.5
    seed: int = 0

    def delays(self) -> "_DelaySequence":
        return _DelaySequence(self)


class _DelaySequence:
    """The per-operation delay stream (owns this operation's RNG state)."""

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self._rng = random.Random(policy.seed)

    def delay_for(self, attempt: int, retry_after: Optional[float] = None) -> float:
        """Seconds to wait before retry number ``attempt`` (1-based).

        A server-provided ``retry_after`` is a floor, never a cap: sleeping
        less than the rate window's remaining time would burn an attempt on
        a guaranteed 429.
        """
        policy = self.policy
        delay = min(policy.max_delay, policy.base_delay * policy.multiplier ** (attempt - 1))
        if policy.jitter:
            spread = delay * policy.jitter
            delay = delay - spread + self._rng.random() * 2 * spread
        if retry_after is not None:
            delay = max(delay, retry_after)
        return min(delay, max(policy.max_delay, retry_after or 0.0))


def _should_retry(response) -> bool:
    if response.status == 429 or response.status >= 500:
        return True
    body = response.json if isinstance(response.json, dict) else {}
    return bool(body.get("retryable"))


def _retry_after_hint(response) -> Optional[float]:
    body = response.json if isinstance(response.json, dict) else {}
    hint = body.get("retry_after")
    return float(hint) if isinstance(hint, (int, float)) else None


class RetryingApi:
    """A drop-in :class:`~repro.hub.api.RestApi` wrapper that retries.

    ``sleep`` is how time passes between attempts — inject a fake for
    deterministic tests (the default does nothing, because the in-process
    hub's rate windows only advance through their own injected clock).
    Exhausting the policy returns the last failed response, or re-raises
    the last :class:`TransportError`; a :class:`SimulatedCrash` always
    propagates — a retry loop must not survive its own process death.
    """

    def __init__(
        self,
        api,
        policy: RetryPolicy | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.api = api
        self.policy = policy or RetryPolicy()
        self.sleep = sleep if sleep is not None else (lambda seconds: None)
        #: Total retries performed (observability for tests and benchmarks).
        self.retries = 0

    def request(self, method, url, token=None, payload=None):
        delays = self.policy.delays()
        last_error: TransportError | None = None
        response = None
        for attempt in range(1, self.policy.max_attempts + 1):
            try:
                response = self.api.request(method, url, token=token, payload=payload)
                last_error = None
            except TransportError as exc:
                last_error = exc
                response = None
            if response is not None and not _should_retry(response):
                return response
            if attempt == self.policy.max_attempts:
                break
            hint = _retry_after_hint(response) if response is not None else None
            self.sleep(delays.delay_for(attempt, retry_after=hint))
            self.retries += 1
        if last_error is not None:
            raise last_error
        return response

    # The RestApi convenience verbs, routed through the retry loop.

    def get(self, url, token=None):
        return self.request("GET", url, token=token)

    def put(self, url, payload, token=None):
        return self.request("PUT", url, token=token, payload=payload)

    def post(self, url, payload=None, token=None):
        return self.request("POST", url, token=token, payload=payload)

    def delete(self, url, payload=None, token=None):
        return self.request("DELETE", url, token=token, payload=payload)
