"""A REST-shaped façade over the hosting platform.

The browser extension in the paper talks to GitHub through its REST API.
:class:`RestApi` reproduces the relevant endpoints — repository metadata,
permissions, contents read/write/delete, forks, commit listings — with the
same verbs, route shapes, status codes and (simplified) JSON payloads, so the
extension simulator exercises the same request/response discipline a real
extension would, including authentication failures and rate limiting.

Routes implemented::

    GET    /user
    GET    /rate_limit
    GET    /repos/{owner}/{repo}
    GET    /repos/{owner}/{repo}/branches
    GET    /repos/{owner}/{repo}/commits?sha={ref}
    GET    /repos/{owner}/{repo}/collaborators/{username}/permission
    GET    /repos/{owner}/{repo}/git/trees/{ref}
    GET    /repos/{owner}/{repo}/git/refs
    POST   /repos/{owner}/{repo}/git/upload-pack
    POST   /repos/{owner}/{repo}/git/receive-pack
    GET    /repos/{owner}/{repo}/contents/{path}?ref={ref}
    PUT    /repos/{owner}/{repo}/contents/{path}
    DELETE /repos/{owner}/{repo}/contents/{path}
    POST   /repos/{owner}/{repo}/forks

The three ``git/*`` sync endpoints carry the have/want negotiation and the
bundle payloads of :mod:`repro.vcs.transfer`, so a client can clone, fetch
and push over the same REST discipline the browser extension uses —
authentication, permissions and rate limiting included.
"""

from __future__ import annotations

import base64
import binascii
from dataclasses import dataclass, field
from typing import Any, Optional
from urllib.parse import parse_qs, urlsplit

from repro import faults
from repro.errors import (
    HubError,
    InvalidObjectError,
    NotFoundError,
    ObjectNotFoundError,
    StorageError,
    ValidationError,
)
from repro.hub.models import Permission
from repro.hub.server import HostingPlatform

__all__ = ["ApiResponse", "RestApi"]


@dataclass(frozen=True)
class ApiResponse:
    """A simplified HTTP response."""

    status: int
    json: Any = None

    @property
    def ok(self) -> bool:
        return 200 <= self.status < 300


@dataclass
class _Route:
    method: str
    path: str
    query: dict[str, str] = field(default_factory=dict)


class RestApi:
    """Dispatch REST-style requests to a :class:`HostingPlatform`."""

    def __init__(self, platform: HostingPlatform) -> None:
        self.platform = platform

    # ------------------------------------------------------------------
    # Public entry point
    # ------------------------------------------------------------------

    def request(
        self,
        method: str,
        url: str,
        token: Optional[str] = None,
        payload: Optional[dict] = None,
    ) -> ApiResponse:
        """Perform a request; errors become status codes instead of exceptions.

        ``wire.request`` / ``wire.response`` failpoints model the network on
        either side of the server: an ``error`` armed there surfaces as
        :class:`TransportError` in the *caller* (the request or response was
        lost in flight — the server may or may not have acted), which is the
        exact ambiguity the retry policy plus idempotent endpoints resolve.
        Error bodies carry ``retryable`` (and ``retry_after`` for 429) so a
        remote client can make the retry decision without knowing the
        server's exception hierarchy.
        """
        faults.fire("wire.request")
        route = self._parse(method, url)
        try:
            self._check_rate_limit(token, route)
            handler = self._resolve_handler(route)
            body = handler(route, token, payload or {})
            status = 201 if method.upper() in ("POST", "PUT") else 200
            if method.upper() == "DELETE":
                status = 200
            faults.fire("wire.response")
            return ApiResponse(status=status, json=body)
        except HubError as exc:
            body = {"message": str(exc), "retryable": exc.retryable}
            retry_after = getattr(exc, "retry_after", None)
            if retry_after is not None:
                body["retry_after"] = retry_after
            return ApiResponse(status=exc.status_code, json=body)
        except (StorageError, ObjectNotFoundError, InvalidObjectError) as exc:
            # The platform layer deliberately lets storage corruption
            # propagate instead of masking it as a 404; at the REST boundary
            # that is a server-side failure, not a client error.  5xx is
            # retryable by convention: the request itself was well-formed.
            return ApiResponse(
                status=500,
                json={"message": f"internal storage error: {exc}", "retryable": True},
            )
        except OSError as exc:
            # A raw disk failure mid-request (full disk, yanked volume) that
            # no layer translated.  The request may be re-sent once the disk
            # recovers — the wire endpoints are idempotent — so it sheds as
            # a retryable 503 rather than tearing down the handler thread.
            return ApiResponse(
                status=503,
                json={
                    "message": f"server disk failure: {exc}",
                    "retryable": True,
                    "retry_after": 5.0,
                },
            )

    # Convenience verbs ---------------------------------------------------

    def get(self, url: str, token: Optional[str] = None) -> ApiResponse:
        return self.request("GET", url, token=token)

    def put(self, url: str, payload: dict, token: Optional[str] = None) -> ApiResponse:
        return self.request("PUT", url, token=token, payload=payload)

    def post(self, url: str, payload: Optional[dict] = None, token: Optional[str] = None) -> ApiResponse:
        return self.request("POST", url, token=token, payload=payload)

    def delete(self, url: str, payload: Optional[dict] = None, token: Optional[str] = None) -> ApiResponse:
        return self.request("DELETE", url, token=token, payload=payload)

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------

    def _parse(self, method: str, url: str) -> _Route:
        split = urlsplit(url)
        query = {key: values[0] for key, values in parse_qs(split.query).items()}
        path = split.path.rstrip("/") or "/"
        return _Route(method=method.upper(), path=path, query=query)

    def _check_rate_limit(self, token: Optional[str], route: _Route) -> None:
        if route.path == "/rate_limit":
            return
        identity = None
        if token is not None:
            access = self.platform.tokens.authenticate(token)
            identity = access.login if access else None
        self.platform.rate_limiter.check(identity)

    def _resolve_handler(self, route: _Route):
        parts = [part for part in route.path.split("/") if part]
        method = route.method

        if route.path == "/user" and method == "GET":
            return self._get_user
        if route.path == "/rate_limit" and method == "GET":
            return self._get_rate_limit
        if len(parts) >= 3 and parts[0] == "repos":
            if len(parts) == 3 and method == "GET":
                return self._get_repo
            if len(parts) == 4 and parts[3] == "branches" and method == "GET":
                return self._get_branches
            if len(parts) == 4 and parts[3] == "commits" and method == "GET":
                return self._get_commits
            if len(parts) == 4 and parts[3] == "forks" and method == "POST":
                return self._post_fork
            if len(parts) == 6 and parts[3] == "collaborators" and parts[5] == "permission" and method == "GET":
                return self._get_permission
            if len(parts) == 5 and parts[3] == "git" and parts[4] == "refs" and method == "GET":
                return self._get_git_refs
            if len(parts) == 5 and parts[3] == "git" and parts[4] == "upload-pack" and method == "POST":
                return self._post_upload_pack
            if len(parts) == 5 and parts[3] == "git" and parts[4] == "receive-pack" and method == "POST":
                return self._post_receive_pack
            if len(parts) >= 5 and parts[3] == "git" and parts[4] == "trees" and method == "GET":
                return self._get_tree
            if len(parts) >= 5 and parts[3] == "contents":
                if method == "GET":
                    return self._get_contents
                if method == "PUT":
                    return self._put_contents
                if method == "DELETE":
                    return self._delete_contents
        raise NotFoundError(f"no such endpoint: {route.method} {route.path}")

    @staticmethod
    def _slug(route: _Route) -> str:
        parts = [part for part in route.path.split("/") if part]
        return f"{parts[1]}/{parts[2]}"

    @staticmethod
    def _contents_path(route: _Route) -> str:
        parts = [part for part in route.path.split("/") if part]
        return "/" + "/".join(parts[4:])

    # ------------------------------------------------------------------
    # Handlers
    # ------------------------------------------------------------------

    def _get_user(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        access = self.platform.tokens.authenticate(token)
        if access is None:
            raise NotFoundError("requires authentication")
        user = self.platform.get_user(access.login)
        return {"login": user.login, "name": user.name, "email": user.email}

    def _get_rate_limit(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        access = self.platform.tokens.authenticate(token) if token else None
        status = self.platform.rate_limiter.status(access.login if access else None)
        return {
            "resources": {
                "core": {"limit": status.limit, "used": status.used, "remaining": status.remaining}
            }
        }

    def _get_repo(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        hosted = self.platform.get_repository(self._slug(route), token=token)
        body = hosted.to_dict()
        body["html_url"] = self.platform.repository_url(hosted.full_name)
        return body

    def _get_branches(self, route: _Route, token: Optional[str], payload: dict) -> list[dict]:
        branches = self.platform.branches(self._slug(route), token=token)
        return [{"name": name, "commit": {"sha": oid}} for name, oid in sorted(branches.items())]

    def _get_commits(self, route: _Route, token: Optional[str], payload: dict) -> list[dict]:
        ref = route.query.get("sha")
        limit = int(route.query["per_page"]) if "per_page" in route.query else None
        return self.platform.commits(self._slug(route), ref=ref, token=token, limit=limit)

    def _get_permission(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        parts = [part for part in route.path.split("/") if part]
        username = parts[4]
        hosted = self.platform.get_repository(self._slug(route), token=token)
        permission = hosted.permission_for(username)
        label = {
            Permission.ADMIN: "admin",
            Permission.WRITE: "write",
            Permission.READ: "read",
            Permission.NONE: "none",
        }[permission]
        return {"permission": label, "user": {"login": username}}

    def _get_tree(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        parts = [part for part in route.path.split("/") if part]
        ref = parts[5] if len(parts) > 5 else None
        listing = self.platform.list_tree(self._slug(route), ref=ref, token=token)
        return {"tree": listing, "truncated": False}

    def _get_git_refs(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        return self.platform.git_refs(self._slug(route), token=token)

    def _post_upload_pack(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        wants = payload.get("wants")
        if (
            not isinstance(wants, list)
            or not wants
            or not all(isinstance(want, str) for want in wants)
        ):
            raise ValidationError("upload-pack requires a non-empty list of 'wants' strings")
        haves = payload.get("haves") or []
        if not isinstance(haves, list) or not all(isinstance(have, str) for have in haves):
            raise ValidationError("'haves' must be a list of commit id strings")
        data = self.platform.upload_pack(
            self._slug(route), wants=wants, haves=haves, token=token
        )
        return {
            "bundle": base64.b64encode(data).decode("ascii"),
            "size": len(data),
        }

    def _post_receive_pack(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        if "bundle" not in payload:
            raise ValidationError("receive-pack requires a base64 'bundle' field")
        try:
            encoded = payload["bundle"]
            if isinstance(encoded, str):
                encoded = "".join(encoded.split())
            data = base64.b64decode(encoded, validate=True)
        except (binascii.Error, ValueError, TypeError) as exc:
            raise ValidationError(f"bundle is not valid base64: {exc}") from exc
        return self.platform.receive_pack(
            self._slug(route),
            token=token,
            bundle_data=data,
            force=bool(payload.get("force", False)),
        )

    def _get_contents(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        slug = self._slug(route)
        path = self._contents_path(route)
        ref = route.query.get("ref")
        data = self.platform.get_file(slug, path, ref=ref, token=token)
        return {
            "path": path.lstrip("/"),
            "encoding": "base64",
            "content": base64.b64encode(data).decode("ascii"),
            "size": len(data),
        }

    def _put_contents(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        slug = self._slug(route)
        path = self._contents_path(route)
        if "content" not in payload or "message" not in payload:
            raise ValidationError("PUT contents requires 'message' and base64 'content' fields")
        try:
            # validate=True: without it b64decode silently discards any
            # non-alphabet characters, so a corrupted payload would commit
            # garbage bytes instead of being rejected with a 422.  MIME-style
            # line wrapping (RFC 2045 encoders insert newlines every 76
            # chars; GitHub accepts it) is legitimate, so whitespace is
            # stripped before validating.
            encoded = payload["content"]
            if isinstance(encoded, str):
                encoded = "".join(encoded.split())
            content = base64.b64decode(encoded, validate=True)
        except (binascii.Error, ValueError, TypeError) as exc:
            raise ValidationError(f"content is not valid base64: {exc}") from exc
        commit_oid = self.platform.put_file(
            slug,
            path,
            content,
            message=payload["message"],
            token=token,
            branch=payload.get("branch"),
            author_name=(payload.get("committer") or {}).get("name"),
        )
        return {"content": {"path": path.lstrip("/")}, "commit": {"sha": commit_oid}}

    def _delete_contents(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        slug = self._slug(route)
        path = self._contents_path(route)
        if "message" not in payload:
            raise ValidationError("DELETE contents requires a 'message' field")
        commit_oid = self.platform.delete_file(
            slug,
            path,
            message=payload["message"],
            token=token,
            branch=payload.get("branch"),
            author_name=(payload.get("committer") or {}).get("name"),
        )
        return {"content": None, "commit": {"sha": commit_oid}}

    def _post_fork(self, route: _Route, token: Optional[str], payload: dict) -> dict:
        hosted = self.platform.fork(self._slug(route), token=token, new_name=(payload or {}).get("name"))
        body = hosted.to_dict()
        body["html_url"] = self.platform.repository_url(hosted.full_name)
        return body
