"""The hosting platform: accounts, repositories, permissions, forks, contents.

:class:`HostingPlatform` is the stateful "GitHub" the GitCite components talk
to.  It hosts :class:`~repro.vcs.repository.Repository` objects, enforces the
member/non-member distinction the browser extension relies on ("if the user
is not a project member ... they will not be allowed to use the Add/Delete
button functionalities", Section 3), and implements the platform-side halves
of ForkCite (fork) and the local tool's publish step (receive a push).

Thread-safety contract
----------------------
The platform serves concurrent requests (it sits behind
:class:`~repro.hub.httpd.HubHttpServer`, one thread per request):

* account and repository *registration* (register_user, host_repository,
  fork) runs under the platform lock so two requests cannot claim the same
  login or slug;
* operations that mutate a hosted repository's *worktree* (put_file,
  delete_file, and receive_pack's ref-update + checkout phase) serialise on
  a per-slug lock — the checkout-target/commit/checkout-back dance is not
  re-entrant, and concurrent content commits to one repository must land in
  some serial order;
* the expensive part of a push — bundle verification and object install in
  :func:`~repro.vcs.transfer.session.apply_bundle` — deliberately runs
  *outside* any platform lock (the object store tolerates concurrent
  writers), so large pushes do not starve the contents API;
* pure reads (get_file, list_tree, git_refs, upload_pack, commits) take no
  lock at all and may overlap everything above.
"""

from __future__ import annotations

import threading
from datetime import datetime
from typing import Optional

from repro.errors import (
    AuthenticationError,
    BundleChecksumError,
    BundleError,
    InvalidObjectError,
    NotFoundError,
    ObjectNotFoundError,
    PermissionDeniedError,
    RefError,
    RemoteError,
    ServiceUnavailableError,
    StorageError,
    TransferCorruptError,
    ValidationError,
    VCSError,
)
from repro.hub.auth import TokenAuthority
from repro.hub.models import AccessToken, HostedRepository, Permission, User
from repro.hub.ratelimit import RateLimiter
from repro.utils.paths import normalize_path
from repro.utils.timeutil import now_utc
from repro.vcs.remote import clone_repository, fork_repository, push
from repro.vcs.repository import Repository
from repro.vcs.transfer import (
    RefAdvertisement,
    advertise_refs,
    apply_bundle,
    create_bundle,
    update_refs_from_bundle,
)
from repro.vcs.treeops import flatten_tree

__all__ = ["HostingPlatform"]


class HostingPlatform:
    """An in-process, multi-user repository hosting service."""

    def __init__(self, url_base: str = "https://github.com", rate_limiter: RateLimiter | None = None) -> None:
        self.url_base = url_base.rstrip("/")
        self.users: dict[str, User] = {}
        self.repositories: dict[str, HostedRepository] = {}
        self.tokens = TokenAuthority()
        self.rate_limiter = rate_limiter or RateLimiter()
        #: Guards the account/repository registries (see module docstring).
        self._lock = threading.RLock()
        #: One lock per hosted slug, serialising worktree-mutating requests.
        self._repo_locks: dict[str, threading.RLock] = {}
        #: Per-slug write-ahead journals (``repro.hub.durability.PushJournal``).
        #: When a slug has one attached, every acknowledged mutation is
        #: journalled *before* the response leaves — see :meth:`_journal_append`.
        self._journals: dict[str, object] = {}
        #: Optional :class:`repro.hub.lifecycle.ServingState`; a journal write
        #: failure flips it to degraded so subsequent writes are shed upstream.
        self._lifecycle = None

    def attach_journal(self, slug: str, journal) -> None:
        """Journal every acknowledged mutation of ``slug`` through ``journal``."""
        self._journals[slug] = journal

    def bind_lifecycle(self, state) -> None:
        """Let the platform flip ``state`` to degraded on durability failures."""
        self._lifecycle = state

    def _journal_append(self, slug: str, bundle_data: bytes, force: bool = False) -> None:
        """Persist an acknowledged mutation, or refuse the acknowledgement.

        Called under the per-slug lock, *after* the ref transaction committed,
        so journal order matches ref order — replay's prerequisite chain is
        exactly the order clients observed.  If the disk refuses the append,
        the in-memory state has moved but the client gets a retryable 503
        instead of an acknowledgement: losing an *unacknowledged* mutation on
        crash preserves the durability contract, and the hub goes degraded
        (read-only) until a ``/healthz`` probe sees the disk take writes again.
        """
        journal = self._journals.get(slug)
        if journal is None:
            return
        try:
            journal.append(bundle_data, force=force)
        except OSError as exc:
            if self._lifecycle is not None:
                self._lifecycle.mark_degraded(
                    f"push journal write failed: {exc}", recoverable=True
                )
            raise ServiceUnavailableError(
                f"could not persist the update durably ({exc}); the hub is "
                "degraded (read-only) until its disk recovers",
                retry_after=5.0,
            ) from exc

    def _journal_contents_commit(
        self, repo: Repository, slug: str, branch: str, old_tip: Optional[str], commit_oid: str
    ) -> None:
        """Journal a contents-API commit as a single-commit push bundle.

        The journal speaks one record shape — a push bundle — so a commit
        made through put_file/delete_file is wrapped as the bundle the
        equivalent push would have sent: the new commit thin against the
        branch's previous tip, advertising only the branch it moved.  Replay
        then needs no second code path.  Called under the per-slug lock.
        """
        if self._journals.get(slug) is None:
            return
        refs = RefAdvertisement(
            branches={branch: commit_oid},
            tags={},
            default_branch=branch,
            head_branch=None,
            head_oid=None,
        )
        bundle_data = create_bundle(
            repo.store,
            [commit_oid],
            haves=(old_tip,) if old_tip else (),
            refs=refs,
        )
        self._journal_append(slug, bundle_data, force=False)

    def _repo_lock(self, slug: str) -> threading.RLock:
        """The per-slug mutation lock (created on first use)."""
        with self._lock:
            lock = self._repo_locks.get(slug)
            if lock is None:
                lock = self._repo_locks[slug] = threading.RLock()
            return lock

    # ------------------------------------------------------------------
    # Accounts
    # ------------------------------------------------------------------

    def register_user(self, login: str, name: str | None = None, email: str | None = None) -> User:
        """Create an account (logins are unique)."""
        with self._lock:
            if login in self.users:
                raise ValidationError(f"login already taken: {login!r}")
            user = User(login=login, name=name or login, email=email or f"{login}@example.org")
            self.users[login] = user
            return user

    def get_user(self, login: str) -> User:
        try:
            return self.users[login]
        except KeyError:
            raise NotFoundError(f"no such user: {login!r}") from None

    def issue_token(self, login: str, scopes: tuple[str, ...] = ("repo",)) -> AccessToken:
        """Issue a personal access token for an existing account."""
        return self.tokens.issue(self.get_user(login), scopes=scopes)

    def _require_user(self, token_value: Optional[str]) -> Optional[User]:
        token = self.tokens.authenticate(token_value)
        if token is None:
            return None
        return self.get_user(token.login)

    # ------------------------------------------------------------------
    # Repositories
    # ------------------------------------------------------------------

    def create_repository(
        self,
        owner_login: str,
        name: str,
        private: bool = False,
        description: str = "",
        default_branch: str = "main",
    ) -> HostedRepository:
        """Create an empty hosted repository owned by ``owner_login``."""
        owner = self.get_user(owner_login)
        repo = Repository.init(
            name=name, owner=owner.login, default_branch=default_branch, description=description
        )
        return self.host_repository(repo, private=private)

    def host_repository(self, repo: Repository, private: bool = False,
                        forked_from: Optional[str] = None) -> HostedRepository:
        """Host an existing repository object under its owner's account."""
        with self._lock:
            if repo.owner not in self.users:
                self.register_user(repo.owner)
            slug = repo.full_name
            if slug in self.repositories:
                raise ValidationError(f"repository already exists: {slug!r}")
            hosted = HostedRepository(
                repo=repo, private=private, created_at=now_utc(), forked_from=forked_from
            )
            self.repositories[slug] = hosted
            return hosted

    def get_repository(self, slug: str, token: Optional[str] = None) -> HostedRepository:
        """Look up ``owner/name``, honouring private-repository visibility."""
        hosted = self.repositories.get(slug)
        if hosted is None:
            raise NotFoundError(f"no such repository: {slug!r}")
        user = self._require_user(token)
        if hosted.permission_for(user.login if user else None) == Permission.NONE:
            # Private repositories are indistinguishable from missing ones.
            raise NotFoundError(f"no such repository: {slug!r}")
        return hosted

    def repository_url(self, slug: str) -> str:
        return f"{self.url_base}/{slug}"

    def list_repositories(self, login: Optional[str] = None) -> list[HostedRepository]:
        """All repositories, or the ones owned by ``login``."""
        hosted = sorted(self.repositories.values(), key=lambda h: h.full_name)
        if login is None:
            return hosted
        return [h for h in hosted if h.owner == login]

    def add_collaborator(self, slug: str, login: str, permission: Permission | str,
                         token: Optional[str] = None) -> None:
        """Grant a user access to a repository (requires admin)."""
        hosted = self.get_repository(slug, token=token)
        if token is not None:
            self._require_permission(hosted, token, Permission.ADMIN)
        if isinstance(permission, str):
            permission = Permission.from_label(permission)
        self.get_user(login)
        hosted.collaborators[login] = permission

    def permission_for(self, slug: str, token: Optional[str]) -> Permission:
        """The effective permission the token's user has on ``slug``."""
        hosted = self.repositories.get(slug)
        if hosted is None:
            raise NotFoundError(f"no such repository: {slug!r}")
        user = self._require_user(token)
        return hosted.permission_for(user.login if user else None)

    def _require_permission(self, hosted: HostedRepository, token: Optional[str],
                            needed: Permission) -> User:
        user = self._require_user(token)
        if user is None:
            raise AuthenticationError("this operation requires authentication")
        have = hosted.permission_for(user.login)
        if have < needed:
            raise PermissionDeniedError(
                f"{user.login!r} needs {needed.label!r} access to {hosted.full_name!r} "
                f"but only has {have.label!r}"
            )
        return user

    # ------------------------------------------------------------------
    # Forks, clones and pushes
    # ------------------------------------------------------------------

    def fork(self, slug: str, token: str, new_name: Optional[str] = None) -> HostedRepository:
        """Fork a repository into the authenticated user's account.

        This is the platform operation ForkCite rides on: the full history —
        including every version's ``citation.cite`` — is copied.
        """
        hosted = self.get_repository(slug, token=token)
        user = self._require_permission(hosted, token, Permission.READ)
        forked = fork_repository(hosted.repo, new_owner=user.login, new_name=new_name)
        return self.host_repository(forked, private=hosted.private, forked_from=slug)

    def clone(self, slug: str, token: Optional[str] = None) -> Repository:
        """Return a full local clone (what the local executable tool works on)."""
        hosted = self.get_repository(slug, token=token)
        return clone_repository(hosted.repo)

    def receive_push(self, slug: str, token: str, local_repo: Repository,
                     branch: Optional[str] = None, force: bool = False) -> str:
        """Accept a push from a local clone (requires write access)."""
        hosted = self.get_repository(slug, token=token)
        self._require_permission(hosted, token, Permission.WRITE)
        return push(local_repo, hosted.repo, branch=branch, force=force)

    # ------------------------------------------------------------------
    # Git wire protocol (what the sync subsystem speaks over the REST API)
    # ------------------------------------------------------------------

    def git_refs(self, slug: str, token: Optional[str] = None) -> dict:
        """The ref advertisement of a hosted repository (read visibility)."""
        hosted = self.get_repository(slug, token=token)
        return advertise_refs(hosted.repo).to_dict()

    def upload_pack(self, slug: str, wants, haves=(), token: Optional[str] = None) -> bytes:
        """Serve a bundle of the wanted history, thin against ``haves``.

        ``wants`` may be commit ids (full or abbreviated) or ref names; the
        negotiation drops ``haves`` this repository has never seen, exactly
        like a real fetch negotiation.  Requires read visibility (private
        repositories stay indistinguishable from missing ones).
        """
        hosted = self.get_repository(slug, token=token)
        repo = hosted.repo
        resolved: list[str] = []
        for want in wants:
            try:
                resolved.append(repo.resolve(str(want)))
            except (RefError, VCSError) as exc:
                raise NotFoundError(f"{slug} has no ref or commit {want!r}") from exc
        if not resolved:
            raise ValidationError("upload-pack requires at least one want")
        return create_bundle(
            repo.store, resolved, haves=tuple(haves), refs=advertise_refs(repo)
        )

    def receive_pack(self, slug: str, token: str, bundle_data: bytes,
                     force: bool = False) -> dict:
        """Accept a pushed bundle (write access required).

        The bundle is verified end to end — checksum, per-object hashes,
        prerequisites, connectivity — before any object lands, so a corrupt
        or truncated bundle changes nothing at all.  Branch updates are
        fast-forward-only unless ``force``; a non-fast-forward rejection
        moves no refs (objects already installed stay, unreachable, until
        the next gc — exactly git's behaviour).  Both failure shapes surface
        as :class:`ValidationError` (HTTP 422 at the REST boundary).
        """
        hosted = self.get_repository(slug, token=token)
        self._require_permission(hosted, token, Permission.WRITE)
        repo = hosted.repo
        try:
            # Verification + object install runs unlocked (see the module
            # docstring); only the ref-move + checkout phase — which must not
            # interleave with a put_file/delete_file commit dance — takes the
            # per-slug lock.  Ref-vs-ref races are additionally resolved by
            # the CAS transaction inside update_refs_from_bundle itself.
            result = apply_bundle(repo.store, bundle_data)
            with self._repo_lock(slug):
                updated = update_refs_from_bundle(repo, result.bundle, force=force)
                # Journal unconditionally — even an apparent no-op.  A retry
                # of a push whose first attempt moved refs but failed its
                # journal append looks like a no-op here, yet *this* attempt
                # is the one that gets acknowledged, so it must be the one
                # that is durable.  Replay is idempotent; a duplicate record
                # costs bytes, a missing one costs an acknowledged push.
                self._journal_append(slug, bundle_data, force=force)
        except BundleChecksumError as exc:
            # Stream-level damage, not a semantic rejection: the sender's
            # copy is intact, so the client is told a re-send may succeed.
            raise TransferCorruptError(f"bundle damaged in transfer: {exc}") from exc
        except BundleError as exc:
            raise ValidationError(f"rejected bundle: {exc}") from exc
        except RemoteError as exc:
            raise ValidationError(str(exc)) from exc
        return {
            "updated": updated,
            "objects_in_bundle": result.objects_total,
            "objects_added": result.objects_added,
        }

    # ------------------------------------------------------------------
    # Contents API (what the browser extension uses)
    # ------------------------------------------------------------------

    def get_file(self, slug: str, path: str, ref: Optional[str] = None,
                 token: Optional[str] = None) -> bytes:
        """Read a file from a repository version (read access required)."""
        hosted = self.get_repository(slug, token=token)
        repo = hosted.repo
        resolved_ref = ref or hosted.default_branch
        try:
            return repo.read_file_at(resolved_ref, path)
        except (StorageError, ObjectNotFoundError, InvalidObjectError):
            # Storage corruption (a blob that fails its integrity re-hash, a
            # dangling tree entry) is a server-side failure: it must surface,
            # not masquerade as a missing file.
            raise
        except VCSError as exc:
            # Ref/path resolution only: unknown ref, no such file, path is a
            # directory — the legitimate 404s.
            raise NotFoundError(f"{slug}@{resolved_ref} has no file {path!r}") from exc

    def path_exists(self, slug: str, path: str, ref: Optional[str] = None,
                    token: Optional[str] = None) -> bool:
        hosted = self.get_repository(slug, token=token)
        resolved_ref = ref or hosted.default_branch
        try:
            return hosted.repo.path_exists_at(resolved_ref, path)
        except (StorageError, ObjectNotFoundError, InvalidObjectError):
            raise  # corruption is not "the path does not exist"
        except VCSError:
            return False

    def list_tree(self, slug: str, ref: Optional[str] = None, token: Optional[str] = None) -> list[dict]:
        """List every path of a repository version (files and directories)."""
        hosted = self.get_repository(slug, token=token)
        repo = hosted.repo
        resolved_ref = ref or hosted.default_branch
        tree_oid = repo.tree_oid_of(resolved_ref)
        listing = []
        for path, (oid, mode) in sorted(flatten_tree(repo.store, tree_oid).items()):
            if path == "/":
                continue
            listing.append(
                {"path": path, "type": "tree" if mode == "040000" else "blob", "sha": oid}
            )
        return listing

    def put_file(
        self,
        slug: str,
        path: str,
        content: bytes | str,
        message: str,
        token: str,
        branch: Optional[str] = None,
        author_name: Optional[str] = None,
        timestamp: Optional[datetime] = None,
    ) -> str:
        """Create or update a file on a branch and commit (write access required).

        This is the endpoint the browser extension uses to "directly modify
        the citation file on the remote repository".
        """
        hosted = self.get_repository(slug, token=token)
        user = self._require_permission(hosted, token, Permission.WRITE)
        repo = hosted.repo
        # Per-slug lock: the checkout/commit/checkout-back dance below must
        # not interleave with another content commit or a push's ref phase.
        with self._repo_lock(slug):
            target_branch = branch or hosted.default_branch
            original_branch = repo.current_branch
            if not repo.refs.has_branch(target_branch):
                raise NotFoundError(f"{slug} has no branch {target_branch!r}")
            old_tip = repo.refs.branch_target(target_branch)
            if original_branch != target_branch:
                repo.checkout(target_branch)
            try:
                repo.write_file(path, content)
                commit_oid = repo.commit(
                    message,
                    author_name=author_name or user.name,
                    timestamp=timestamp,
                )
            finally:
                if original_branch is not None and original_branch != target_branch:
                    repo.checkout(original_branch)
            self._journal_contents_commit(repo, slug, target_branch, old_tip, commit_oid)
            return commit_oid

    def delete_file(
        self,
        slug: str,
        path: str,
        message: str,
        token: str,
        branch: Optional[str] = None,
        author_name: Optional[str] = None,
        timestamp: Optional[datetime] = None,
    ) -> str:
        """Delete a file on a branch and commit (write access required)."""
        hosted = self.get_repository(slug, token=token)
        user = self._require_permission(hosted, token, Permission.WRITE)
        repo = hosted.repo
        with self._repo_lock(slug):
            target_branch = branch or hosted.default_branch
            original_branch = repo.current_branch
            if not repo.refs.has_branch(target_branch):
                raise NotFoundError(f"{slug} has no branch {target_branch!r}")
            old_tip = repo.refs.branch_target(target_branch)
            if original_branch != target_branch:
                repo.checkout(target_branch)
            try:
                canonical = normalize_path(path)
                if not repo.file_exists(canonical):
                    raise NotFoundError(f"{slug}@{target_branch} has no file {path!r}")
                repo.remove_file(canonical)
                commit_oid = repo.commit(
                    message,
                    author_name=author_name or user.name,
                    timestamp=timestamp,
                )
            finally:
                if original_branch is not None and original_branch != target_branch:
                    repo.checkout(original_branch)
            self._journal_contents_commit(repo, slug, target_branch, old_tip, commit_oid)
            return commit_oid

    # ------------------------------------------------------------------
    # History metadata (used when building citations for remote versions)
    # ------------------------------------------------------------------

    def branches(self, slug: str, token: Optional[str] = None) -> dict[str, str]:
        hosted = self.get_repository(slug, token=token)
        return hosted.repo.branches()

    def commits(self, slug: str, ref: Optional[str] = None, token: Optional[str] = None,
                limit: Optional[int] = None) -> list[dict]:
        """GitHub-style commit listing for a ref."""
        hosted = self.get_repository(slug, token=token)
        resolved_ref = ref or hosted.default_branch
        history = hosted.repo.log(resolved_ref, limit=limit)
        return [
            {
                "sha": info.oid,
                "commit": {
                    "message": info.commit.message,
                    "author": {
                        "name": info.commit.author.name,
                        "date": info.commit.author.timestamp.strftime("%Y-%m-%dT%H:%M:%SZ"),
                    },
                },
            }
            for info in history
        ]
