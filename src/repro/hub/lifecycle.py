"""Hub serving lifecycle: drain, overload shedding, degraded mode, health.

:mod:`repro.hub.durability` makes an acknowledged push survive the process;
this module governs the process itself.  It is deliberately transport-
agnostic — everything operates on the :class:`~repro.hub.api.RestApi` verb
surface, so the same guarantees hold for the in-process API the tests use
and the live socket ``gitcite serve`` runs.

* :class:`ServingState` — the one shared, lock-protected view of the
  server's mode (``serving`` / ``degraded`` / ``draining``), its in-flight
  request gauge and its shed/overrun counters.
* :class:`GuardedApi` — wraps any ``RestApi``-shaped object and enforces
  the lifecycle contract around every request:

  - ``GET /healthz`` answers from :class:`ServingState` without touching
    the platform (and, while degraded-recoverable, probes the disk so a
    healed failure flips the hub back to serving);
  - while **draining**, every request is shed with a retryable 503 — the
    client's retry lands on the restarted server;
  - while **degraded**, write requests are shed with a retryable 503 and
    reads pass through — a hub that lost objects to quarantine still
    serves clones of the intact history;
  - the **in-flight gauge** bounds concurrent handler work; request
    ``max_in_flight + 1`` is shed immediately with a retryable 503 and a
    ``retry_after`` hint instead of queueing without bound;
  - a per-request **deadline** is watched: a request that blew it is
    counted, and a *failed* response past the deadline is converted to a
    retryable 503 (the client has long stopped waiting; a successful
    mutation is never discarded — the acknowledgement is the contract).

* :func:`drain` — the shutdown half: stop accepting, wait for in-flight
  requests under a deadline, report whether the drain was clean.

Every shed response carries the ``retryable`` / ``retry_after`` body
fields documented in ``docs/WIRE_PROTOCOL.md``, which
:class:`~repro.hub.retry.RetryingApi` already honours — a well-behaved
client rides out a drain/overload/degradation window without new code.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass
from typing import Callable, Optional

from repro.hub.api import ApiResponse

__all__ = ["ServingState", "GuardedApi", "drain", "HEALTH_ROUTE"]

HEALTH_ROUTE = "/healthz"

#: Routes that mutate hosted state.  ``POST git/upload-pack`` is a read
#: (it only serialises a bundle); every other POST/PUT/DELETE writes.
_READ_METHODS = frozenset({"GET", "HEAD"})


def _is_write(method: str, url: str) -> bool:
    if method.upper() in _READ_METHODS:
        return False
    path = url.split("?", 1)[0].rstrip("/")
    return not path.endswith("/git/upload-pack")


def _shed(status: int, message: str, retry_after: Optional[float]) -> ApiResponse:
    body: dict = {"message": message, "retryable": True}
    if retry_after is not None:
        body["retry_after"] = retry_after
    return ApiResponse(status=status, json=body)


class ServingState:
    """Thread-safe lifecycle state shared by the transport and the platform.

    Mode transitions: ``serving → draining`` (one-way, at shutdown);
    ``serving ⇄ degraded`` (a disk failure flips in, a successful
    ``/healthz`` probe flips back out when ``recoverable``; an unclean
    recovery pins ``recoverable=False`` so only operator action clears it).
    """

    def __init__(self, max_in_flight: int = 64, request_deadline: float = 30.0) -> None:
        self.max_in_flight = max(1, int(max_in_flight))
        self.request_deadline = float(request_deadline)
        self._lock = threading.Lock()
        self._in_flight = 0  # guarded-by: _lock
        self._draining = False  # guarded-by: _lock
        self._degraded_reason: Optional[str] = None  # guarded-by: _lock
        self._degraded_recoverable = True  # guarded-by: _lock
        # ``_idle`` shares the state lock, so waiting on the condition and
        # checking ``_in_flight`` are one critical section.
        self._idle = threading.Condition(self._lock)
        #: Observability counters (exact under the lock).
        self.shed_overload = 0  # guarded-by: _lock
        self.shed_draining = 0  # guarded-by: _lock
        self.shed_degraded = 0  # guarded-by: _lock
        self.deadline_overruns = 0  # guarded-by: _lock
        self.requests_served = 0  # guarded-by: _lock

    # -- mode ----------------------------------------------------------

    @property
    def draining(self) -> bool:
        with self._lock:
            return self._draining

    @property
    def degraded(self) -> Optional[str]:
        """The degradation reason, or ``None`` while fully serving."""
        with self._lock:
            return self._degraded_reason

    @property
    def mode(self) -> str:
        with self._lock:
            if self._draining:
                return "draining"
            if self._degraded_reason is not None:
                return "degraded"
            return "serving"

    def start_draining(self) -> None:
        with self._lock:
            self._draining = True

    def mark_degraded(self, reason: str, recoverable: bool = True) -> None:
        with self._lock:
            self._degraded_reason = reason
            self._degraded_recoverable = recoverable

    def clear_degraded(self) -> None:
        with self._lock:
            self._degraded_reason = None
            self._degraded_recoverable = True

    @property
    def degraded_recoverable(self) -> bool:
        with self._lock:
            return self._degraded_recoverable

    # -- the in-flight gauge -------------------------------------------

    @property
    def in_flight(self) -> int:
        with self._lock:
            return self._in_flight

    def try_enter(self) -> bool:
        """Claim an in-flight slot, or refuse (the caller sheds)."""
        with self._lock:
            if self._in_flight >= self.max_in_flight:
                self.shed_overload += 1
                return False
            self._in_flight += 1
            return True

    def leave(self) -> None:
        with self._lock:
            self._in_flight = max(0, self._in_flight - 1)
            self.requests_served += 1
            if self._in_flight == 0:
                self._idle.notify_all()

    def wait_idle(self, timeout: float) -> bool:
        """Block until no request is in flight (or ``timeout`` elapses)."""
        deadline = time.monotonic() + timeout
        with self._lock:
            while self._in_flight > 0:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return False
                self._idle.wait(remaining)
            return True

    def note_shed_draining(self) -> None:
        with self._lock:
            self.shed_draining += 1

    def note_shed_degraded(self) -> None:
        with self._lock:
            self.shed_degraded += 1

    def note_deadline_overrun(self) -> None:
        with self._lock:
            self.deadline_overruns += 1

    # -- health --------------------------------------------------------

    def snapshot(self) -> dict:
        with self._lock:
            return {
                "status": (
                    "draining" if self._draining
                    else "degraded" if self._degraded_reason is not None
                    else "ok"
                ),
                "degraded_reason": self._degraded_reason,
                "in_flight": self._in_flight,
                "max_in_flight": self.max_in_flight,
                "requests_served": self.requests_served,
                "shed": {
                    "overload": self.shed_overload,
                    "draining": self.shed_draining,
                    "degraded": self.shed_degraded,
                },
                "deadline_overruns": self.deadline_overruns,
            }


class GuardedApi:
    """Lifecycle enforcement around any ``RestApi``-shaped object.

    ``probe`` is the degradation-recovery check ``/healthz`` runs while the
    state is degraded-recoverable — typically
    :meth:`repro.hub.durability.PushJournal.verify_writable`.  Returning
    ``True`` clears the degradation.
    """

    def __init__(
        self,
        api,
        state: ServingState,
        probe: Optional[Callable[[], bool]] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.api = api
        self.state = state
        self.probe = probe
        self.clock = clock

    # ------------------------------------------------------------------

    def _health(self) -> ApiResponse:
        state = self.state
        if state.degraded is not None and state.degraded_recoverable and self.probe is not None:
            # The probe is itself the recovery attempt: a journal fsync that
            # succeeds means the disk took writes again, so flip back.
            if self.probe():
                state.clear_degraded()
        body = state.snapshot()
        status = 200 if body["status"] == "ok" else 503
        return ApiResponse(status=status, json=body)

    def request(self, method, url, token=None, payload=None) -> ApiResponse:
        state = self.state
        path = url.split("?", 1)[0].rstrip("/") or "/"
        if path == HEALTH_ROUTE and method.upper() == "GET":
            return self._health()
        if state.draining:
            state.note_shed_draining()
            return _shed(503, "server is draining for shutdown", 1.0)
        degraded = state.degraded
        if degraded is not None and _is_write(method, url):
            state.note_shed_degraded()
            return _shed(503, f"hub is degraded (read-only): {degraded}", 5.0)
        if not state.try_enter():
            return _shed(
                503,
                f"server is at its in-flight capacity ({state.max_in_flight})",
                0.05,
            )
        started = self.clock()
        try:
            response = self.api.request(method, url, token=token, payload=payload)
        finally:
            state.leave()
        elapsed = self.clock() - started
        if elapsed > state.request_deadline:
            state.note_deadline_overrun()
            if not response.ok:
                # The client gave up long ago; a late failure is re-shaped
                # into "try again" rather than a stale semantic rejection.
                # Late *successes* are returned untouched: an acknowledged
                # mutation must never be re-labelled retryable-failed.
                return _shed(
                    503,
                    f"request exceeded its {state.request_deadline:.1f}s deadline",
                    None,
                )
        return response

    # The RestApi convenience verbs, so the guard is a drop-in api.

    def get(self, url, token=None):
        return self.request("GET", url, token=token)

    def put(self, url, payload, token=None):
        return self.request("PUT", url, token=token, payload=payload)

    def post(self, url, payload=None, token=None):
        return self.request("POST", url, token=token, payload=payload)

    def delete(self, url, payload=None, token=None):
        return self.request("DELETE", url, token=token, payload=payload)


def drain(state: ServingState, http_server=None, timeout: float = 10.0) -> bool:
    """Graceful shutdown: stop accepting, finish in-flight work, report.

    Marks ``state`` draining (new requests shed retryable 503), stops the
    HTTP accept loop if one is given, then waits up to ``timeout`` seconds
    for the in-flight gauge to reach zero.  Returns ``True`` when every
    in-flight request finished — the caller may then take the final save
    knowing no handler is mid-mutation.
    """
    state.start_draining()
    if http_server is not None:
        http_server.stop()
    return state.wait_idle(timeout)
