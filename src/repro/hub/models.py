"""Data model of the hosting platform: users, tokens, permissions, repositories."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from datetime import datetime
from typing import Optional

from repro.errors import ValidationError
from repro.vcs.repository import Repository

__all__ = ["User", "AccessToken", "Permission", "HostedRepository"]


class Permission(enum.IntEnum):
    """Access levels, ordered so comparisons express "at least"."""

    NONE = 0
    READ = 1
    WRITE = 2
    ADMIN = 3

    @property
    def label(self) -> str:
        return self.name.lower()

    @classmethod
    def from_label(cls, label: str) -> "Permission":
        try:
            return cls[label.upper()]
        except KeyError:
            raise ValidationError(f"unknown permission level: {label!r}") from None


@dataclass(frozen=True)
class User:
    """An account on the platform."""

    login: str
    name: str
    email: str

    def __post_init__(self) -> None:
        if not self.login or "/" in self.login or " " in self.login:
            raise ValidationError(f"illegal login: {self.login!r}")


@dataclass(frozen=True)
class AccessToken:
    """A personal access token ("users provide their credentials", Section 3)."""

    value: str
    login: str
    created_at: datetime
    scopes: tuple[str, ...] = ("repo",)

    def has_scope(self, scope: str) -> bool:
        return scope in self.scopes


@dataclass
class HostedRepository:
    """A repository hosted on the platform, with collaboration metadata."""

    repo: Repository
    private: bool = False
    created_at: Optional[datetime] = None
    collaborators: dict[str, Permission] = field(default_factory=dict)
    forked_from: Optional[str] = None
    stars: int = 0
    archived: bool = False

    @property
    def owner(self) -> str:
        return self.repo.owner

    @property
    def name(self) -> str:
        return self.repo.name

    @property
    def full_name(self) -> str:
        return self.repo.full_name

    @property
    def default_branch(self) -> str:
        return self.repo.refs.default_branch

    def permission_for(self, login: Optional[str]) -> Permission:
        """The effective permission of a user (or of an anonymous client)."""
        if login == self.owner:
            return Permission.ADMIN
        if login is not None and login in self.collaborators:
            return self.collaborators[login]
        return Permission.NONE if self.private else Permission.READ

    def is_member(self, login: Optional[str]) -> bool:
        """Project members are users allowed to modify files (Section 3)."""
        return self.permission_for(login) >= Permission.WRITE

    def to_dict(self) -> dict:
        """A GitHub-style repository JSON summary."""
        return {
            "full_name": self.full_name,
            "name": self.name,
            "owner": {"login": self.owner},
            "private": self.private,
            "description": self.repo.description,
            "default_branch": self.default_branch,
            "fork": self.forked_from is not None,
            "parent": self.forked_from,
            "archived": self.archived,
            "stargazers_count": self.stars,
        }
