"""Token issuance and verification for the hosting platform.

Tokens are deterministic (derived from the login and an issuance counter) so
scenario builders and tests can hard-code them; nothing about the citation
model depends on token randomness.

The authority is thread-safe: issuance increments a per-login counter, so
:meth:`TokenAuthority.issue` runs under an internal lock (two concurrent
issuances must never mint the same token value); authenticate/revoke are
single atomic dict operations and need none.
"""

from __future__ import annotations

import threading
from datetime import datetime
from typing import Optional

from repro.errors import AuthenticationError
from repro.hub.models import AccessToken, User
from repro.utils.hashing import sha1_hex
from repro.utils.timeutil import now_utc

__all__ = ["TokenAuthority"]


class TokenAuthority:
    """Issues and validates personal access tokens."""

    def __init__(self) -> None:
        # ``_tokens`` is deliberately lock-free: every access is one atomic
        # dict operation and token values are unique, so the worst
        # interleaving is a revoke racing an issue of a *different* key.
        self._tokens: dict[str, AccessToken] = {}
        self._issued: dict[str, int] = {}  # guarded-by: _lock
        self._lock = threading.Lock()

    def issue(self, user: User, scopes: tuple[str, ...] = ("repo",),
              created_at: Optional[datetime] = None) -> AccessToken:
        """Issue a new token for ``user``."""
        with self._lock:
            count = self._issued.get(user.login, 0) + 1
            self._issued[user.login] = count
        value = "ghs_" + sha1_hex(f"{user.login}:{count}".encode("utf-8"))[:36]
        token = AccessToken(
            value=value,
            login=user.login,
            created_at=created_at or now_utc(),
            scopes=tuple(scopes),
        )
        self._tokens[value] = token
        return token

    def revoke(self, value: str) -> None:
        """Revoke a token (unknown tokens are ignored)."""
        self._tokens.pop(value, None)

    def authenticate(self, value: Optional[str]) -> Optional[AccessToken]:
        """Resolve a token value to its :class:`AccessToken`.

        ``None`` (no credentials) is allowed and returns ``None`` — public
        repositories are readable anonymously.  An *invalid* token raises, as
        GitHub does with HTTP 401.
        """
        if value is None:
            return None
        token = self._tokens.get(value)
        if token is None:
            raise AuthenticationError("invalid or revoked access token")
        return token

    def tokens_for(self, login: str) -> list[AccessToken]:
        """All live tokens of a user (for the admin views in examples)."""
        return [token for token in self._tokens.values() if token.login == login]
