"""An in-process hosting-platform simulator standing in for GitHub.

The GitCite browser extension "communicates with the GitHub servers using its
REST API, and directly modifies the citation file on the remote repository"
(Section 3).  This package provides everything that interaction needs,
offline and deterministic:

* :mod:`models` — users, access tokens, roles and hosted repositories;
* :mod:`auth` — token issuance and verification;
* :mod:`ratelimit` — a request quota per token (GitHub-style 403/429);
* :mod:`server` — :class:`~repro.hub.server.HostingPlatform`, the stateful
  service (accounts, repositories, permissions, forks, contents);
* :mod:`api` — a REST-shaped façade over the platform with routes, status
  codes and JSON payloads, which is what the browser-extension simulator
  talks to;
* :mod:`retry` — :class:`~repro.hub.retry.RetryingApi`, the fault-tolerant
  wrapper around the API (backoff, jitter, ``Retry-After``);
* :mod:`sync` — :class:`~repro.hub.sync.HubRemote`, clone/fetch/pull/push
  spoken entirely over the three ``git/*`` wire endpoints;
* :mod:`httpd` — :class:`~repro.hub.httpd.HubHttpServer`, the same REST API
  behind a real threaded TCP socket, and
  :class:`~repro.hub.httpd.HttpTransport`, the matching wire client;
* :mod:`durability` — the write-ahead push journal and the serve-startup
  recovery pipeline (``gitcite serve`` persists every acknowledged
  mutation before its 2xx leaves the socket);
* :mod:`lifecycle` — drain, overload shedding, degraded read-only mode and
  the ``/healthz`` probe around any ``RestApi``-shaped object.

Since PR 7 the whole stack is **concurrency-safe**: the platform serialises
per-repository mutations, ref updates are compare-and-swap with optimistic
retry, storage backends take a store-level write lock that readers do not
block on, and the token authority and rate limiter lock their counters.
PR 8 makes the served hub **crash-durable and operable**: write-ahead
acknowledgements, graceful SIGTERM/SIGINT drain, and retryable-503 shedding
under overload or degradation.  ``docs/ARCHITECTURE.md`` documents the
contract layer by layer; ``docs/OPERATIONS.md`` has the runbook.
"""

from repro.hub.models import AccessToken, HostedRepository, Permission, User
from repro.hub.server import HostingPlatform
from repro.hub.api import ApiResponse, RestApi
from repro.hub.durability import PushJournal, RecoveryReport, recover_working_copy
from repro.hub.httpd import HubHttpServer, HttpTransport, serve_platform
from repro.hub.lifecycle import GuardedApi, ServingState, drain
from repro.hub.retry import RetryingApi, RetryPolicy
from repro.hub.sync import HubRemote

__all__ = [
    "AccessToken",
    "HostedRepository",
    "Permission",
    "User",
    "HostingPlatform",
    "ApiResponse",
    "RestApi",
    "PushJournal",
    "RecoveryReport",
    "recover_working_copy",
    "HubHttpServer",
    "HttpTransport",
    "serve_platform",
    "GuardedApi",
    "ServingState",
    "drain",
    "RetryingApi",
    "RetryPolicy",
    "HubRemote",
]
