"""Serve the hub's REST API over a real TCP socket — and speak to it.

Until this module existed, :class:`~repro.hub.api.RestApi` was only ever a
method call: client and server shared one process, one thread and one Python
object graph.  :class:`HubHttpServer` puts the same API behind a stdlib
:class:`~http.server.ThreadingHTTPServer`, so every request arrives on its
own thread over a genuine socket, and :class:`HttpTransport` is the client
half — an object with the exact ``RestApi`` verb surface (``request`` /
``get`` / ``put`` / ``post`` / ``delete`` returning
:class:`~repro.hub.api.ApiResponse`), implemented with
:class:`http.client.HTTPConnection`.

Because the surfaces match, everything built against the in-process API
works over the wire unchanged: wrap an :class:`HttpTransport` in
:class:`~repro.hub.retry.RetryingApi` and hand it to
:class:`~repro.hub.sync.HubRemote` and clone/fetch/pull/push run over TCP
with transparent retry.  Socket-level failures (connection refused, reset,
timeout) surface as :class:`~repro.errors.TransportError` — the same
exception the ``wire.*`` failpoints raise — so the retry classification
needs no new cases.

Thread-safety contract
----------------------
``HubHttpServer`` handles each request on its own thread; it is safe exactly
because every layer below it is: the platform serialises per-repository
mutations, ref moves are compare-and-swap, storage backends take a write
lock, and the token authority and rate limiter lock their counters (see
``docs/ARCHITECTURE.md``).  ``HttpTransport`` opens one connection per
request and keeps no mutable state, so a single transport instance may be
shared freely between client threads.

HTTP mapping
------------
* the request path + query string is passed verbatim to ``RestApi.request``;
* ``Authorization: token <value>`` (or ``Bearer <value>``) carries the
  access token;
* request and response bodies are JSON (``Content-Type:
  application/json``); an unparseable request body is a 400;
* the :class:`~repro.hub.api.ApiResponse` status becomes the HTTP status
  line and its ``json`` the response body — including the ``retryable`` /
  ``retry_after`` error fields documented in ``docs/WIRE_PROTOCOL.md``.
"""

from __future__ import annotations

import json
import os
import sys
import threading
from http.client import HTTPConnection, HTTPException
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional
from urllib.parse import urlsplit

from repro.errors import ReproError, TransportError
from repro.faults import SimulatedCrash
from repro.hub.api import ApiResponse, RestApi

__all__ = ["HubHttpServer", "HttpTransport", "serve_platform"]

#: Sockets a handler will wait on before giving up on a stalled client.
DEFAULT_REQUEST_TIMEOUT = 30.0
#: Largest request body the server will read (a receive-pack bundle).
DEFAULT_MAX_BODY_BYTES = 64 * 1024 * 1024
#: Largest response body the client transport will buffer.
DEFAULT_MAX_RESPONSE_BYTES = 256 * 1024 * 1024


#: Socket-level failures a request thread absorbs quietly: the client
#: vanished or stalled, which is its prerogative, not a server fault.
_CLIENT_GONE = (BrokenPipeError, ConnectionResetError, TimeoutError)


class _HubRequestHandler(BaseHTTPRequestHandler):
    """Translate one HTTP exchange into one ``RestApi.request`` call."""

    protocol_version = "HTTP/1.1"
    server_version = "gitcite-hub/1.0"

    def setup(self) -> None:
        # A per-connection socket timeout: a client that stops sending (or
        # reading) mid-exchange gets its connection dropped instead of
        # pinning this handler thread forever.
        self.timeout = self.server.request_timeout
        super().setup()

    def _token(self) -> Optional[str]:
        header = self.headers.get("Authorization")
        if not header:
            return None
        parts = header.split(None, 1)
        # "token <v>" (GitHub style) or "Bearer <v>"; a bare value also works.
        return parts[1].strip() if len(parts) == 2 else parts[0].strip()

    def _read_payload(self):
        """Return ``(ok, payload)``; a malformed body answers 400 itself."""
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            self._send(400, {"message": "invalid Content-Length header", "retryable": False})
            return False, None
        if not length:
            return True, None
        if length > self.server.max_body_bytes:
            # The 413 analogue, shaped as the protocol's 422 rejection: the
            # body is refused *before* it is read, the payload is told it is
            # not retryable (re-sending the same oversized bundle cannot
            # succeed), and the connection is closed so the unread bytes
            # cannot poison a keep-alive successor request.
            self.close_connection = True
            self._send(
                422,
                {
                    "message": (
                        f"request body of {length} bytes exceeds the server's "
                        f"{self.server.max_body_bytes}-byte limit"
                    ),
                    "retryable": False,
                },
            )
            return False, None
        raw = self.rfile.read(length)
        if len(raw) < length:
            # Truncated upload (client died mid-body): nothing to answer.
            self.close_connection = True
            return False, None
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            self._send(400, {"message": "request body is not valid JSON", "retryable": False})
            return False, None
        if payload is not None and not isinstance(payload, dict):
            self._send(
                422,
                {"message": "request body must be a JSON object", "retryable": False},
            )
            return False, None
        return True, payload

    def _dispatch(self, method: str) -> None:
        try:
            ok, payload = self._read_payload()
        except _CLIENT_GONE:
            self.close_connection = True
            return
        if not ok:
            return
        try:
            response = self.server.api.request(
                method, self.path, token=self._token(), payload=payload
            )
        except SimulatedCrash:
            # In a real process a crash in a request thread takes the whole
            # server with it.  ``gitcite serve`` opts in (the chaos suite's
            # in-process kill points); in-process test servers keep the
            # default and let the crash surface to the spawning test.
            if self.server.exit_on_crash:
                os._exit(70)
            raise
        except ReproError as exc:
            # RestApi already maps hub errors to statuses; anything that
            # still escapes (an armed wire failpoint, an unexpected internal
            # error) is a server-side failure the client may retry.
            self._send(500, {"message": str(exc), "retryable": True})
            return
        self._send(response.status, response.json)

    def _send(self, status: int, body) -> None:
        data = json.dumps(body).encode("utf-8")
        try:
            self.send_response(status)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(data)))
            self.end_headers()
            self.wfile.write(data)
        except _CLIENT_GONE:
            # The client disconnected (or stalled past the socket timeout)
            # while we were answering.  That is not a server-side failure:
            # the request itself completed, so no traceback, no error mark —
            # just drop the connection.
            self.close_connection = True

    def do_GET(self) -> None:
        self._dispatch("GET")

    def do_POST(self) -> None:
        self._dispatch("POST")

    def do_PUT(self) -> None:
        self._dispatch("PUT")

    def do_DELETE(self) -> None:
        self._dispatch("DELETE")

    def log_message(self, format: str, *args) -> None:  # noqa: A002 - stdlib signature
        """Route access logs to the server's optional callback (default: silent)."""
        log = getattr(self.server, "log", None)
        if log is not None:
            log(format % args)


class HubHttpServer(ThreadingHTTPServer):
    """``RestApi`` behind a real listening TCP socket, one thread per request.

    ``port=0`` binds an ephemeral port (read it back from :attr:`port`).
    Use as a context manager — entering starts the accept loop on a
    background thread, leaving shuts it down and closes the socket::

        with HubHttpServer(RestApi(platform)) as server:
            api = HttpTransport(server.url)
            ...

    or call :meth:`start` / :meth:`stop` explicitly.  ``api`` may be any
    object with the ``RestApi.request`` signature (a bare :class:`RestApi`,
    or one already wrapped in instrumentation).
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(
        self,
        api,
        host: str = "127.0.0.1",
        port: int = 0,
        log=None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        max_body_bytes: int = DEFAULT_MAX_BODY_BYTES,
        exit_on_crash: bool = False,
    ) -> None:
        super().__init__((host, port), _HubRequestHandler)
        self.api = api
        self.log = log
        #: Per-connection socket timeout (None disables; stalls pin threads).
        self.request_timeout = request_timeout
        #: Hard cap on request bodies (oversized receive-pack → 422).
        self.max_body_bytes = max_body_bytes
        #: ``gitcite serve`` sets this: a :class:`SimulatedCrash` escaping a
        #: request thread kills the whole process, like a real crash would.
        self.exit_on_crash = exit_on_crash
        self._thread: Optional[threading.Thread] = None

    def handle_error(self, request, client_address) -> None:
        """Client disconnects and stalls are routine, not tracebacks."""
        exc = sys.exc_info()[1]
        if isinstance(exc, _CLIENT_GONE):
            return
        super().handle_error(request, client_address)

    @property
    def host(self) -> str:
        return self.server_address[0]

    @property
    def port(self) -> int:
        return self.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "HubHttpServer":
        """Serve on a daemon thread; returns ``self`` once the socket accepts."""
        if self._thread is None:
            thread = threading.Thread(
                target=self.serve_forever, name="gitcite-hub-httpd", daemon=True
            )
            thread.start()
            self._thread = thread
        return self

    def stop(self) -> None:
        """Stop the accept loop (if running) and close the listening socket."""
        if self._thread is not None:
            self.shutdown()
            self._thread.join()
            self._thread = None
        self.server_close()

    def __enter__(self) -> "HubHttpServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


def serve_platform(platform, host: str = "127.0.0.1", port: int = 0) -> HubHttpServer:
    """Convenience: wrap ``platform`` in a :class:`RestApi` and start serving."""
    return HubHttpServer(RestApi(platform), host=host, port=port).start()


class HttpTransport:
    """The ``RestApi`` verb surface spoken over a real HTTP connection.

    ``base`` is either a full ``http://host:port`` URL (e.g.
    :attr:`HubHttpServer.url`) or a bare host, with ``port`` given
    separately.  One connection is opened per request —
    :class:`http.client.HTTPConnection` is not thread-safe, the hub's
    endpoints are stateless, and per-request connections are what make a
    single shared transport instance safe for N client threads.

    Socket-level failures raise :class:`~repro.errors.TransportError`
    (always retryable — the server may or may not have acted, which is the
    ambiguity :class:`~repro.hub.retry.RetryingApi` plus the idempotent
    wire endpoints resolve).  The error message names the phase that died —
    ``connect`` (the server never saw the request; a retry is free) versus
    ``request/read`` (the server may have acted; the retry leans on endpoint
    idempotence).  Non-2xx responses are *returned*, not raised, exactly
    like the in-process :class:`RestApi`.

    ``max_response_bytes`` bounds how much response body the transport will
    buffer: a huge (or hostile — Content-Length lies, the stream just keeps
    coming) response raises :class:`TransportError` instead of growing RAM
    without limit.  ``connect_timeout`` defaults to ``timeout`` but can be
    set tighter — connection establishment to a dead host should fail in
    seconds even when reads of a slow-but-live server are allowed minutes.
    """

    def __init__(
        self,
        base: str,
        port: Optional[int] = None,
        timeout: float = 30.0,
        connect_timeout: Optional[float] = None,
        max_response_bytes: int = DEFAULT_MAX_RESPONSE_BYTES,
    ) -> None:
        if "//" in base:
            split = urlsplit(base)
            self.host = split.hostname or "127.0.0.1"
            self.port = split.port or port or 80
        else:
            self.host = base
            self.port = port or 80
        self.timeout = timeout
        self.connect_timeout = connect_timeout if connect_timeout is not None else timeout
        self.max_response_bytes = max_response_bytes

    def _read_capped(self, response, method: str, url: str) -> bytes:
        """Drain the response body, refusing to buffer past the cap."""
        chunks: list[bytes] = []
        total = 0
        while True:
            chunk = response.read(65536)
            if not chunk:
                return b"".join(chunks)
            total += len(chunk)
            if total > self.max_response_bytes:
                raise TransportError(
                    f"{method} {url}: response body exceeds the "
                    f"{self.max_response_bytes}-byte client limit"
                )
            chunks.append(chunk)

    def request(
        self,
        method: str,
        url: str,
        token: Optional[str] = None,
        payload: Optional[dict] = None,
    ) -> ApiResponse:
        headers = {"Accept": "application/json"}
        if token is not None:
            headers["Authorization"] = f"token {token}"
        body = None
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = HTTPConnection(self.host, self.port, timeout=self.connect_timeout)
        try:
            try:
                connection.connect()
            except (OSError, HTTPException) as exc:
                reason = "connect timeout" if isinstance(exc, TimeoutError) else "connect failed"
                raise TransportError(
                    f"{method} {url}: {reason} "
                    f"({self.host}:{self.port}, {self.connect_timeout:.1f}s): {exc}"
                ) from exc
            # Connected: the remaining socket operations (send, await the
            # response, drain the body) run under the read timeout.
            connection.sock.settimeout(self.timeout)
            try:
                connection.request(method.upper(), url, body=body, headers=headers)
                response = connection.getresponse()
                status = response.status
                raw = self._read_capped(response, method, url)
            except (OSError, HTTPException) as exc:
                reason = "read timeout" if isinstance(exc, TimeoutError) else "request/read failed"
                raise TransportError(
                    f"{method} {url}: {reason} (after connect, {self.timeout:.1f}s): {exc}"
                ) from exc
        finally:
            connection.close()
        try:
            parsed = json.loads(raw.decode("utf-8")) if raw else None
        except (UnicodeDecodeError, ValueError):
            parsed = None
        return ApiResponse(status=status, json=parsed)

    # The RestApi convenience verbs, so the transport is a drop-in api.

    def get(self, url: str, token: Optional[str] = None) -> ApiResponse:
        return self.request("GET", url, token=token)

    def put(self, url: str, payload: dict, token: Optional[str] = None) -> ApiResponse:
        return self.request("PUT", url, token=token, payload=payload)

    def post(self, url: str, payload: Optional[dict] = None, token: Optional[str] = None) -> ApiResponse:
        return self.request("POST", url, token=token, payload=payload)

    def delete(self, url: str, payload: Optional[dict] = None, token: Optional[str] = None) -> ApiResponse:
        return self.request("DELETE", url, token=token, payload=payload)
