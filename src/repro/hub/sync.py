"""A remote repository spoken to entirely over the hub's REST wire.

:class:`HubRemote` is the client half of the sync subsystem's wire story:
where :mod:`repro.vcs.remote` moves history between two in-process
:class:`~repro.vcs.repository.Repository` objects, this module performs the
same clone/fetch/pull/push operations against a hosted repository it can
only reach through ``GET git/refs``, ``POST git/upload-pack`` and
``POST git/receive-pack`` — the negotiation happens with advertised tips
instead of store probes, bundles travel base64-encoded in JSON bodies, and
every failure arrives as a status code rather than an exception.

Pair it with :class:`~repro.hub.retry.RetryingApi` and the operations become
crash-convergent: a push whose response was lost in flight is simply
re-sent, and the receiver's idempotent ``apply_bundle`` plus fast-forward
ref updates make the retry a no-op instead of a duplicate.
"""

from __future__ import annotations

from base64 import b64decode, b64encode
from typing import Optional

from repro.errors import (
    AuthenticationError,
    NotFoundError,
    PermissionDeniedError,
    RateLimitExceededError,
    RemoteError,
    ValidationError,
)
from repro.vcs.merge import is_ancestor_commit
from repro.vcs.repository import Repository
from repro.vcs.transfer import (
    RefAdvertisement,
    advertise_refs,
    apply_bundle,
    create_bundle,
)

__all__ = ["HubRemote"]


def _raise_for_status(response, context: str) -> None:
    """Turn a non-2xx wire response back into the matching client exception."""
    if response is None:
        raise RemoteError(f"{context}: no response from hub")
    if response.ok:
        return
    body = response.json if isinstance(response.json, dict) else {}
    message = body.get("message", f"HTTP {response.status}")
    if response.status == 401:
        raise AuthenticationError(message)
    if response.status == 403:
        raise PermissionDeniedError(message)
    if response.status == 404:
        raise NotFoundError(message)
    if response.status == 422:
        raise ValidationError(message)
    if response.status == 429:
        raise RateLimitExceededError(message, retry_after=body.get("retry_after"))
    raise RemoteError(f"{context}: {message}")


def _remote_known_commits(local: Repository, advert: RefAdvertisement) -> set[str]:
    """Commits both sides provably share: ancestors of advertised tips we hold."""
    store = local.store
    known: set[str] = set()
    frontier = [
        tip for tip in advert.tips() if tip in store and store.get_type(tip) == "commit"
    ]
    while frontier:
        oid = frontier.pop()
        if oid in known:
            continue
        known.add(oid)
        frontier.extend(store.get_commit(oid).parent_oids)
    return known


class HubRemote:
    """Clone, fetch, pull and push against one hosted repository over REST.

    ``api`` is anything with the :class:`~repro.hub.api.RestApi` verb surface
    — pass a :class:`~repro.hub.retry.RetryingApi` to get transparent retry
    of transport faults, 429s and 5xxs on every wire round trip.
    """

    def __init__(self, api, slug: str, token: Optional[str] = None) -> None:
        self.api = api
        self.slug = slug
        self.token = token

    # ------------------------------------------------------------------
    # Wire round trips
    # ------------------------------------------------------------------

    def refs(self) -> RefAdvertisement:
        """The remote's current ref advertisement (one ``git/refs`` GET)."""
        response = self.api.get(f"/repos/{self.slug}/git/refs", token=self.token)
        _raise_for_status(response, f"cannot read refs of {self.slug}")
        return RefAdvertisement.from_dict(response.json)

    def repository_info(self) -> dict:
        """The hosted repository's metadata (name, owner, default branch …)."""
        response = self.api.get(f"/repos/{self.slug}", token=self.token)
        _raise_for_status(response, f"cannot read {self.slug}")
        return response.json

    def _upload_pack(self, wants, haves) -> bytes:
        response = self.api.post(
            f"/repos/{self.slug}/git/upload-pack",
            payload={"wants": sorted(wants), "haves": sorted(haves)},
            token=self.token,
        )
        _raise_for_status(response, f"cannot fetch from {self.slug}")
        return b64decode(response.json["bundle"])

    def _receive_pack(self, bundle_data: bytes, force: bool) -> dict:
        response = self.api.post(
            f"/repos/{self.slug}/git/receive-pack",
            payload={
                "bundle": b64encode(bundle_data).decode("ascii"),
                "force": force,
            },
            token=self.token,
        )
        _raise_for_status(response, f"cannot push to {self.slug}")
        return response.json

    # ------------------------------------------------------------------
    # The remote operations
    # ------------------------------------------------------------------

    def fetch(self, local: Repository, wants=None) -> RefAdvertisement:
        """Transfer the remote history for ``wants`` into ``local``'s store.

        ``wants`` defaults to everything the remote advertises.  No local
        ref moves — the advertisement is returned so the caller can decide
        (exactly the split :func:`repro.vcs.remote.fetch_branch` makes).
        The haves sent are the local tips walked back to the first commit
        provably shared with the remote, so a local clone that is *ahead*
        still yields a thin bundle instead of the whole history.
        """
        advert = self.refs()
        wanted = sorted(set(wants) if wants is not None else advert.tips())
        if not wanted:
            return advert
        known = _remote_known_commits(local, advert)
        store = local.store
        haves: list[str] = []
        seen: set[str] = set()
        frontier = sorted(advertise_refs(local).tips())
        while frontier:
            oid = frontier.pop()
            if oid in seen:
                continue
            seen.add(oid)
            if oid in known:
                haves.append(oid)
                continue
            if oid in store and store.get_type(oid) == "commit":
                frontier.extend(store.get_commit(oid).parent_oids)
        data = self._upload_pack(wanted, sorted(haves))
        apply_bundle(store, data)
        return advert

    def fetch_branch(self, local: Repository, branch: str) -> str:
        """Fetch one remote branch's objects; return its tip without moving refs."""
        advert = self.refs()
        tip = advert.branches.get(branch)
        if tip is None:
            raise RemoteError(f"{self.slug} has no branch {branch!r}")
        self.fetch(local, wants=[tip])
        return tip

    def pull(self, local: Repository, branch: Optional[str] = None) -> str:
        """Fetch ``branch`` and fast-forward the local branch onto it."""
        branch = branch or local.current_branch or local.refs.default_branch
        tip = self.fetch_branch(local, branch)
        if not local.refs.has_branch(branch):
            local.refs.set_branch(branch, tip)
            if local.current_branch == branch:
                local.checkout(branch)
            return tip
        local_tip = local.refs.branch_target(branch)
        if local_tip == tip:
            return tip
        if is_ancestor_commit(local.store, local_tip, tip):
            local.refs.set_branch(branch, tip)
            if local.current_branch == branch:
                local.checkout(branch)
            return tip
        raise RemoteError(
            f"pull cannot fast-forward branch {branch!r}: local and remote histories "
            "diverged; use MergeCite to merge them"
        )

    def push(self, local: Repository, branch: Optional[str] = None,
             force: bool = False) -> dict:
        """Push one local branch over ``receive-pack``; return the server report.

        The bundle is thin against the remote's advertised tips (those the
        local store holds) and carries *only* the pushed branch as a ref
        record, so the receiver moves exactly one ref.  Safe to retry: if a
        previous identical attempt landed but its response was lost, the
        receiver's idempotent apply adds zero objects and the ref update is
        already fast-forwarded — the report then shows ``objects_added: 0``.
        """
        branch = branch or local.current_branch or local.refs.default_branch
        if not local.refs.has_branch(branch):
            raise RemoteError(f"local repository has no branch {branch!r}")
        local_tip = local.refs.branch_target(branch)
        advert = self.refs()
        haves = [tip for tip in sorted(advert.tips()) if tip in local.store]
        pushed_refs = RefAdvertisement(
            branches={branch: local_tip},
            tags={},
            default_branch=local.refs.default_branch,
            head_branch=None,
            head_oid=None,
        )
        data = create_bundle(local.store, [local_tip], haves=haves, refs=pushed_refs)
        return self._receive_pack(data, force=force)

    def clone(self, name: Optional[str] = None, owner: Optional[str] = None) -> Repository:
        """Materialise a full local clone of the hosted repository.

        Every advertised branch and tag is fetched and recreated; HEAD is
        attached to the remote's HEAD branch (or left detached at its oid).
        Like the wire itself, this carries graph-reachable objects only —
        dangling pre-gc garbage on the server never crosses.
        """
        info = self.repository_info()
        advert = self.refs()
        clone = Repository(
            name=name or info["name"],
            owner=owner or info["owner"]["login"],
            default_branch=advert.default_branch,
            description=info.get("description") or "",
        )
        self.fetch(clone)
        for ref_name, oid in sorted(advert.branches.items()):
            clone.refs.set_branch(ref_name, oid)
        for ref_name, oid in sorted(advert.tags.items()):
            clone.refs.set_tag(ref_name, oid)
        if advert.head_branch and clone.refs.has_branch(advert.head_branch):
            clone.checkout(advert.head_branch)
        elif advert.head_oid:
            clone.checkout(advert.head_oid)
        return clone
