"""Write-ahead durability for the serving hub.

``gitcite serve`` used to persist accepted pushes only on a clean shutdown:
a ``kill -9`` between a push's 2xx and the final ``state.json`` save silently
discarded an update the server had already *acknowledged* — the one thing
the storage layer's crash-atomic writes (PR 6) and the CAS ref transactions
(PR 7) were built to prevent.  This module closes that window:

* :class:`PushJournal` — an append-only, checksummed journal next to
  ``state.json``.  Every accepted mutation (a pushed bundle, a contents-API
  commit re-expressed as a single-commit bundle) is appended — and, in
  ``durable`` mode, fsynced — **before** the acknowledgement leaves the
  socket.  A ``write-behind`` mode batches the fsyncs (every
  ``flush_every`` records) for benchmarks and trusted deployments, trading
  a bounded loss window for throughput.
* :func:`replay_journal` — reads the journal tolerantly: a record torn by a
  crash mid-append (short frame, checksum mismatch) ends the replay at the
  last intact record; everything before it is replayed.  Replay is
  idempotent — bundles re-apply as no-ops and ref moves fast-forward onto
  themselves — so a double restart (crash during recovery included) always
  converges to the same state.
* :func:`recover_working_copy` — the serve-startup recovery pipeline:
  sweep orphan temp files, fsck the store (``--repair`` semantics:
  quarantine + salvage + index rebuild), load the last checkpoint, replay
  the journal, and checkpoint the merged state.  If the repair left
  genuinely unrecoverable objects the hub should come up **read-only
  degraded** (:attr:`RecoveryReport.degraded`) instead of refusing to
  start — clones of intact history still work; writes answer retryable
  503 until an operator intervenes.

Journal format (``.gitcite/journal/pushes.waj``)::

    GCWAJ1\\n                                   file header (magic)
    [ 4-byte BE payload length | 20-byte SHA-1 of payload | payload ]*

    payload = 1 flag byte (b"F" force / b"-" plain) + raw RBNDL1 bundle

The bundle already embeds the ref transaction (its header carries the
branch/tag tips the push moved), so one record is the complete durable
description of one acknowledged mutation.
"""

from __future__ import annotations

import hashlib
import os
import struct
import threading
from dataclasses import dataclass, field
from pathlib import Path

from repro import faults
from repro.errors import StorageError
from repro.utils import atomicio

__all__ = [
    "JOURNAL_DIR",
    "JOURNAL_FILE",
    "JournalRecord",
    "JournalReplay",
    "PushJournal",
    "RecoveryReport",
    "journal_path",
    "replay_journal",
    "recover_working_copy",
]

JOURNAL_DIR = "journal"
JOURNAL_FILE = "pushes.waj"

_MAGIC = b"GCWAJ1\n"
_FRAME = struct.Struct(">I")
_DIGEST_SIZE = hashlib.sha1().digest_size

#: Failpoints on the serve durability path (registered up front so sweep
#: harnesses can enumerate them without importing this module lazily).
FP_APPEND = faults.register("journal.append")
FP_RECOVER = faults.register("serve.recover")


def journal_path(directory: str | os.PathLike[str]) -> Path:
    """Where a working copy keeps its write-ahead push journal."""
    from repro.vcs.workingcopy import STATE_DIR

    return Path(directory) / STATE_DIR / JOURNAL_DIR / JOURNAL_FILE


@dataclass(frozen=True)
class JournalRecord:
    """One acknowledged mutation: a bundle plus its force flag."""

    bundle: bytes
    force: bool = False


@dataclass
class JournalReplay:
    """What reading a journal back established."""

    records: list[JournalRecord] = field(default_factory=list)
    #: The file ended mid-record (the torn frame a crash during append
    #: leaves); everything in :attr:`records` precedes the tear.
    torn_tail: bool = False
    #: A record body failed its checksum (silent corruption, not a tear).
    corrupt_record: bool = False
    #: Byte offset of the first damaged/torn frame (= intact prefix length).
    intact_bytes: int = 0


class PushJournal:
    """Append-only write-ahead journal of acknowledged hub mutations.

    ``durable=True`` (the default) fsyncs every append before it returns,
    so the 2xx that follows is backed by bytes on stable storage.
    ``durable=False`` is write-behind: appends are buffered by the OS and
    fsynced every ``flush_every`` records (and on :meth:`flush`/
    :meth:`close`), bounding the kill -9 loss window to the last
    ``flush_every - 1`` acknowledgements.

    Appends are serialised by an internal lock; the caller additionally
    orders them under its per-repository lock so journal order matches ref
    transaction order (replay depends on it: a later push's prerequisites
    are an earlier push's objects).
    """

    def __init__(
        self,
        path: str | os.PathLike[str],
        durable: bool = True,
        flush_every: int = 8,
    ) -> None:
        self.path = Path(path)
        self.durable = durable
        self.flush_every = max(1, int(flush_every))
        self._lock = threading.Lock()
        self._unsynced = 0
        self.records_appended = 0
        self.syncs = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        atomicio.sweep_orphan_tmp(self.path.parent)
        fresh = not self.path.exists()
        # A write-ahead journal is an append-only log: records are framed and
        # checksummed individually, so torn tails are detected on replay and
        # temp+rename would defeat the whole point of appending.
        self._handle = open(self.path, "ab")  # lint: raw-write-ok(append-only journal, torn tails handled by replay)
        if fresh or self.path.stat().st_size == 0:
            self._handle.write(_MAGIC)
            self._fsync()

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------

    def _fsync(self) -> None:
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self.syncs += 1
        self._unsynced = 0

    def append(self, bundle: bytes, force: bool = False) -> None:
        """Frame, append and (mode permitting) fsync one record.

        Honours the ``journal.append`` failpoint with full payload
        semantics: ``crash`` dies before any byte, ``truncate`` writes a
        torn frame and dies (what a real mid-append power cut leaves),
        ``flip`` corrupts the payload silently (replay's checksum catches
        it), ``error`` raises the armed exception — the disk-failure signal
        the lifecycle layer turns into degraded mode.
        """
        payload = (b"F" if force else b"-") + bundle
        frame = _FRAME.pack(len(payload)) + hashlib.sha1(payload).digest() + payload
        action = faults.consume(FP_APPEND)
        with self._lock:
            if action is not None:
                if action.kind == "crash":
                    raise faults.SimulatedCrash(FP_APPEND)
                if action.kind == "error":
                    raise action.make_error(FP_APPEND)
                if action.kind == "truncate":
                    self._handle.write(frame[: max(0, action.keep)])
                    self._fsync()
                    raise faults.SimulatedCrash(
                        FP_APPEND, f"torn journal append after {action.keep} bytes"
                    )
                if action.kind == "flip" and len(payload) > 0:
                    position = min(max(action.offset, 0), len(payload) - 1)
                    mutated = bytearray(payload)
                    mutated[position] ^= action.xor or 0xFF
                    payload = bytes(mutated)
                    # Re-frame with the *original* checksum so the damage is
                    # the silent kind replay must detect.
                    frame = frame[: _FRAME.size + _DIGEST_SIZE] + payload
            self._handle.write(frame)
            self.records_appended += 1
            self._unsynced += 1
            if self.durable or self._unsynced >= self.flush_every:
                self._fsync()

    def flush(self) -> None:
        """Force everything appended so far onto stable storage."""
        with self._lock:
            if self._unsynced or not self.durable:
                self._fsync()

    def verify_writable(self) -> bool:
        """Probe the journal's disk: can an fsync still succeed?

        The ``/healthz`` recovery probe uses this to decide whether a
        disk-failure degradation has healed.  A probe is also a real fsync,
        so a positive answer means the journal tail is durable again.
        """
        try:
            with self._lock:
                self._fsync()
            return True
        except (OSError, ValueError):
            # ValueError: the handle itself was closed out from under us —
            # as unwritable as a failed fsync.
            return False

    def truncate(self) -> None:
        """Reset the journal to empty (called after a successful checkpoint).

        The replaced file is written crash-atomically: a crash mid-truncate
        leaves either the old journal (replayed again — idempotent) or the
        fresh empty one, never a torn header.
        """
        with self._lock:
            self._handle.close()
            atomicio.atomic_write_bytes(self.path, _MAGIC, durable=True)
            self._handle = open(self.path, "ab")  # lint: raw-write-ok(re-opening the append-only journal after truncation)
            self._unsynced = 0

    def close(self) -> None:
        with self._lock:
            try:
                if self._unsynced or not self.durable:
                    self._fsync()
            finally:
                self._handle.close()

    def __enter__(self) -> "PushJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


# ----------------------------------------------------------------------
# Reading the journal back
# ----------------------------------------------------------------------


def replay_journal(path: str | os.PathLike[str]) -> JournalReplay:
    """Read a journal tolerantly; the intact prefix is what recovery replays.

    A short frame or length field (torn tail) ends the read; a checksum
    mismatch (flipped byte) does too — everything *after* a damaged record
    is unordered with respect to it, so replaying past the damage could
    apply a push whose prerequisites were in the lost record.  Idempotent
    re-application makes stopping early always safe: an un-replayed record
    whose effects already reached the last checkpoint is simply absent from
    the recovered delta.
    """
    replay = JournalReplay()
    journal = Path(path)
    if not journal.is_file():
        return replay
    data = journal.read_bytes()
    if not data.startswith(_MAGIC):
        replay.corrupt_record = bool(data)
        return replay
    offset = len(_MAGIC)
    total = len(data)
    while offset < total:
        header_end = offset + _FRAME.size + _DIGEST_SIZE
        if header_end > total:
            replay.torn_tail = True
            break
        (length,) = _FRAME.unpack_from(data, offset)
        digest = data[offset + _FRAME.size : header_end]
        body_end = header_end + length
        if length < 1 or body_end > total:
            replay.torn_tail = True
            break
        payload = data[header_end:body_end]
        if hashlib.sha1(payload).digest() != digest:
            replay.corrupt_record = True
            break
        replay.records.append(
            JournalRecord(bundle=payload[1:], force=payload[:1] == b"F")
        )
        offset = body_end
        replay.intact_bytes = offset
    if not replay.records:
        replay.intact_bytes = min(len(_MAGIC), total)
    return replay


# ----------------------------------------------------------------------
# Serve-startup recovery
# ----------------------------------------------------------------------


@dataclass
class RecoveryReport:
    """What bringing a working copy back up established."""

    #: Journal records found intact / actually re-applied (an already
    #: reflected record replays as a no-op and still counts as replayed).
    records_found: int = 0
    records_replayed: int = 0
    objects_restored: int = 0
    refs_restored: dict[str, str] = field(default_factory=dict)
    torn_tail: bool = False
    corrupt_record: bool = False
    #: Repair actions fsck took (quarantines, salvages, index rebuilds).
    repairs: list[str] = field(default_factory=list)
    #: Oids fsck could not salvage, with the refs their loss strands.
    unrecoverable: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Records that would not re-apply (damaged beyond their checksum, or
    #: prerequisites lost with an unrecoverable object).
    failed_records: int = 0
    #: The hub must come up read-only: fsck quarantined reachable history
    #: or journal records failed to re-apply.
    degraded: bool = False
    degraded_reason: str = ""

    @property
    def clean(self) -> bool:
        return not self.degraded and not self.corrupt_record and self.failed_records == 0


def recover_working_copy(
    directory: str | os.PathLike[str],
    repair: bool = True,
    checkpoint: bool = True,
):
    """Bring a served working copy back from any crash point.

    Pipeline: sweep orphan temp files → fsck (with repair: quarantine,
    salvage, rebuild indexes) → load the last checkpoint (``state.json`` +
    object store) → replay the intact journal prefix → checkpoint the
    merged state and truncate the journal.  Returns ``(repo, report)``.

    Every step is idempotent, so a crash *during* recovery (including the
    ``serve.recover`` failpoint the chaos suite arms) restarts cleanly:
    the journal is only truncated after the merged state is durably saved.

    With ``checkpoint=False`` the journal is left in place (used by
    read-only tooling and tests that want to re-run recovery).
    """
    from repro.vcs.workingcopy import load_repository, save_repository
    from repro.vcs.fsck import fsck_working_copy
    from repro.vcs.transfer import apply_bundle, update_refs_from_bundle
    from repro.errors import BundleError, RemoteError, VCSError

    root = Path(directory)
    report = RecoveryReport()

    # 1. fsck: crash-atomic writes guarantee state.json and every object
    # file is either old or new, but a flipped byte (disk rot) or a crash
    # inside a multi-file pack publish still needs the auditor.  Repair
    # quarantines what fails verification and salvages the rest.
    fsck_report = fsck_working_copy(root, repair=repair)
    report.repairs = list(fsck_report.repaired)
    report.unrecoverable = dict(fsck_report.unrecoverable)
    if report.unrecoverable:
        report.degraded = True
        report.degraded_reason = (
            f"{len(report.unrecoverable)} object(s) unrecoverable after repair; "
            "serving read-only"
        )
    elif not fsck_report.ok and repair:
        report.degraded = True
        report.degraded_reason = "store damaged and not fully repaired; serving read-only"

    # 2. Load the last checkpoint (also sweeps state.json's orphan temps).
    repo = load_repository(root)

    # 3. Replay the journal's intact prefix, in append (= acknowledgement)
    # order.  apply_bundle's all-objects-present fast path and the
    # fast-forward-onto-self ref moves make every already-reflected record
    # a no-op, so replay after replay converges.
    replay = replay_journal(journal_path(root))
    report.records_found = len(replay.records)
    report.torn_tail = replay.torn_tail
    report.corrupt_record = replay.corrupt_record
    for record in replay.records:
        faults.fire(FP_RECOVER)
        try:
            result = apply_bundle(repo.store, record.bundle)
            moved = update_refs_from_bundle(repo, result.bundle, force=record.force)
        except (BundleError, RemoteError, VCSError) as exc:
            # A record that cannot re-apply (its objects were quarantined as
            # unrecoverable, or the bundle bytes themselves rotted past the
            # frame checksum) poisons everything after it — later records
            # may depend on its objects.  Stop, count, degrade.
            report.failed_records = len(replay.records) - report.records_replayed
            report.degraded = True
            report.degraded_reason = f"journal record failed to re-apply: {exc}"
            break
        report.records_replayed += 1
        report.objects_restored += result.objects_added
        report.refs_restored.update(moved)

    # 4. Checkpoint: persist the merged state, then — and only then —
    # truncate the journal.  A crash between the two replays the journal
    # once more onto the new checkpoint, which is a no-op.  A journal whose
    # records failed their checksum or re-apply is *kept*: it is the only
    # evidence of the damaged acknowledgements, and truncating it would
    # turn a diagnosable loss into a silent one.
    if checkpoint:
        save_repository(repo, root, export_files=False)
        if not report.corrupt_record and report.failed_records == 0:
            try:
                with PushJournal(journal_path(root)) as journal:
                    journal.truncate()
            except OSError as exc:
                raise StorageError(
                    f"cannot reset the push journal after recovery: {exc}"
                ) from exc
    return repo, report
