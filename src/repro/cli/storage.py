"""``gitcite storage`` maintenance commands (repack / gc / migrate).

The working-copy persistence that used to live here —
``save_repository``, ``load_repository``, ``switch_storage`` and
friends — moved down to :mod:`repro.vcs.workingcopy`: the hub's
durability recovery and ``Repository.load`` depend on it, and neither
may import upward into the CLI layer (the ``layering`` analysis rule
enforces that).  This module keeps the historical import surface as
re-exports and implements only the actual subcommands.
"""

from __future__ import annotations

import argparse
import sys

from repro.vcs.workingcopy import (
    STATE_DIR,
    STATE_FILE,
    backend_root,
    is_working_copy,
    load_repository,
    reachable_from_refs,
    save_repository,
    switch_storage,
)

__all__ = [
    "STATE_DIR",
    "STATE_FILE",
    "backend_root",
    "is_working_copy",
    "save_repository",
    "load_repository",
    "switch_storage",
    "reachable_from_refs",
    "cmd_storage_repack",
    "cmd_storage_gc",
    "cmd_storage_migrate",
]


def _print(message: str = "") -> None:
    sys.stdout.write(message + "\n")


def cmd_storage_repack(args: argparse.Namespace) -> int:
    """Repack the object store into a single optimised pack file.

    A working copy on the ``memory`` or ``loose`` layout is converted to the
    ``pack`` layout first (that *is* what packing loose objects means), then
    all packs are rewritten as one with delta compression re-run.
    """
    repo = load_repository(args.directory)
    if repo.store.backend.kind != "pack":
        switch_storage(repo, args.directory, "pack")  # writes the state file
    repo.store.flush()
    report = repo.store.backend.repack()
    _print(
        f"Repacked {report['objects_after']} object(s): "
        f"{report['packs_before']} pack(s) -> {report['packs_after']}, "
        f"{report['disk_bytes_before']} -> {report['disk_bytes_after']} bytes on disk"
    )
    return 0


def cmd_storage_gc(args: argparse.Namespace) -> int:
    """Drop every object unreachable from any branch, tag or HEAD."""
    repo = load_repository(args.directory)
    keep = reachable_from_refs(repo)
    removed = repo.store.gc(keep)
    save_repository(repo, args.directory, export_files=False)
    _print(f"Removed {removed} unreachable object(s); {len(repo.store)} kept")
    return 0


def cmd_storage_migrate(args: argparse.Namespace) -> int:
    """Switch the working copy to a different storage layout in place."""
    repo = load_repository(args.directory)
    source_kind = repo.store.backend.kind
    moved = switch_storage(repo, args.directory, args.to)
    if source_kind != args.to:
        _print(f"Migrated {moved} object(s) from {source_kind!r} to {args.to!r} storage")
    else:
        _print(f"Already on {args.to!r} storage; nothing to migrate")
    return 0
