"""On-disk persistence for the command-line tool.

A working copy managed by ``gitcite`` is an ordinary directory of files plus
a ``.gitcite/`` metadata directory holding the serialised repository state:

* ``state.json`` — the object store (type + base64 payload per object), the
  reference store (branches, tags, HEAD) and repository identity;
* the working tree is the directory itself (``.gitcite/`` excluded), imported
  on load and exported on checkout, so users see and edit normal files while
  the citation machinery keeps its history next to them.
"""

from __future__ import annotations

import base64
import os
from pathlib import Path

from repro.errors import CLIError
from repro.utils.jsonutil import pretty_dumps, stable_loads
from repro.vcs.ignore import IgnoreRules
from repro.vcs.repository import Repository
from repro.vcs.worktree import export_worktree, import_worktree

__all__ = ["STATE_DIR", "STATE_FILE", "is_working_copy", "save_repository", "load_repository"]

STATE_DIR = ".gitcite"
STATE_FILE = "state.json"


def _state_path(directory: str | os.PathLike[str]) -> Path:
    return Path(directory) / STATE_DIR / STATE_FILE


def is_working_copy(directory: str | os.PathLike[str]) -> bool:
    """Whether ``directory`` contains a gitcite working copy."""
    return _state_path(directory).is_file()


def save_repository(repo: Repository, directory: str | os.PathLike[str],
                    export_files: bool = True) -> Path:
    """Serialise repository state under ``directory``/.gitcite and export the worktree."""
    root = Path(directory)
    state_path = _state_path(root)
    state_path.parent.mkdir(parents=True, exist_ok=True)

    objects = {
        oid: {
            "type": repo.store.get_type(oid),
            "payload": base64.b64encode(repo.store.get(oid).serialize()).decode("ascii"),
        }
        for oid in repo.store.object_ids()
    }
    state = {
        "version": 1,
        "name": repo.name,
        "owner": repo.owner,
        "description": repo.description,
        "default_branch": repo.refs.default_branch,
        "head_branch": repo.refs.head_branch,
        "head_oid": repo.refs.head_commit() if repo.refs.is_detached else None,
        "branches": repo.refs.branches,
        "tags": repo.refs.tags,
        "objects": objects,
    }
    state_path.write_text(pretty_dumps(state) + "\n", encoding="utf-8")
    if export_files:
        export_worktree(repo, root)
    return state_path


def load_repository(directory: str | os.PathLike[str]) -> Repository:
    """Reconstruct a repository from ``directory``/.gitcite plus the on-disk files."""
    root = Path(directory)
    state_path = _state_path(root)
    if not state_path.is_file():
        raise CLIError(
            f"{root} is not a gitcite working copy (no {STATE_DIR}/{STATE_FILE}); run 'gitcite init'"
        )
    try:
        state = stable_loads(state_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise CLIError(f"corrupt gitcite state file: {exc}") from exc

    repo = Repository.init(
        name=state["name"],
        owner=state["owner"],
        default_branch=state.get("default_branch", "main"),
        description=state.get("description", ""),
    )
    from repro.vcs.objects import deserialize_object

    for oid, record in state.get("objects", {}).items():
        obj = deserialize_object(record["type"], base64.b64decode(record["payload"]))
        stored = repo.store.put(obj)
        if stored != oid:
            raise CLIError(f"object {oid} failed its integrity check on load")
    for name, oid in state.get("branches", {}).items():
        repo.refs.set_branch(name, oid)
    for name, oid in state.get("tags", {}).items():
        repo.refs.set_tag(name, oid)
    if state.get("head_branch"):
        repo.refs.attach_head(state["head_branch"])
    elif state.get("head_oid"):
        repo.refs.detach_head(state["head_oid"])

    # The index mirrors HEAD; the working tree is whatever is on disk now.
    head = repo.head_oid()
    if head is not None:
        repo.index.read_tree(repo.store, repo.store.get_commit(head).tree_oid)
    import_worktree(repo, root, ignore=IgnoreRules(), replace=True)
    return repo
