"""Implementations of the ``gitcite`` subcommands.

Each command is a plain function taking the parsed :mod:`argparse` namespace
and returning a process exit status.  Commands never print tracebacks for
expected failures: library exceptions derived from
:class:`~repro.errors.ReproError` are rendered as one-line error messages by
the driver in :mod:`repro.cli.main`.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.errors import CLIError
from repro.citation.citefile import CITATION_FILE_PATH
from repro.citation.conflict import strategy_by_name
from repro.citation.manager import CitationManager
from repro.citation.record import Citation
from repro.citation.retro import retrofit
from repro.formats import render
from repro.utils.timeutil import now_utc, parse_timestamp
from repro.vcs.repository import Repository
from repro.cli.storage import is_working_copy, load_repository, save_repository

__all__ = [
    "cmd_init",
    "cmd_enable",
    "cmd_status",
    "cmd_log",
    "cmd_commit",
    "cmd_branch",
    "cmd_checkout",
    "cmd_add_cite",
    "cmd_del_cite",
    "cmd_modify_cite",
    "cmd_gen_cite",
    "cmd_export",
    "cmd_copy_cite",
    "cmd_merge_cite",
    "cmd_fork_cite",
    "cmd_retro_cite",
    "cmd_validate",
    "cmd_show_citations",
    "cmd_move",
]


def _print(message: str = "") -> None:
    sys.stdout.write(message + "\n")


def _load(args: argparse.Namespace) -> tuple[Repository, CitationManager]:
    repo = load_repository(args.directory)
    return repo, CitationManager(repo)


def _save(repo: Repository, args: argparse.Namespace) -> None:
    save_repository(repo, args.directory)


def _citation_from_args(args: argparse.Namespace, manager: CitationManager) -> Citation:
    """Build a citation record from ``--from-json`` or the individual flags."""
    if getattr(args, "from_json", None):
        payload = json.loads(Path(args.from_json).read_text(encoding="utf-8"))
        return Citation.from_dict(payload)
    base = manager.default_root_citation()
    overrides = {}
    if getattr(args, "authors", None):
        overrides["authors"] = tuple(args.authors)
    if getattr(args, "title", None):
        overrides["title"] = args.title
    if getattr(args, "doi", None):
        overrides["doi"] = args.doi
    if getattr(args, "version", None):
        overrides["version"] = args.version
    if getattr(args, "url", None):
        overrides["url"] = args.url
    if getattr(args, "date", None):
        overrides["committed_date"] = parse_timestamp(args.date)
    return base.with_changes(**overrides) if overrides else base


# ---------------------------------------------------------------------------
# Working-copy management
# ---------------------------------------------------------------------------


def cmd_init(args: argparse.Namespace) -> int:
    """Create a gitcite working copy in a directory of existing files."""
    directory = Path(args.directory)
    directory.mkdir(parents=True, exist_ok=True)
    if is_working_copy(directory):
        raise CLIError(f"{directory} is already a gitcite working copy")
    repo = Repository.init(
        name=args.name or directory.resolve().name,
        owner=args.owner,
        description=args.description or "",
    )
    from repro.vcs.worktree import import_worktree

    imported = import_worktree(repo, directory)
    if imported or args.allow_empty:
        repo.commit(args.message or "Initial commit", author_name=args.owner, timestamp=now_utc())
    save_repository(repo, directory, storage=getattr(args, "storage", None))
    _print(f"Initialised gitcite repository {repo.full_name} with {len(imported)} file(s)")
    return 0


def cmd_enable(args: argparse.Namespace) -> int:
    """Citation-enable the working copy (create citation.cite with a root citation)."""
    repo, manager = _load(args)
    citation = _citation_from_args(args, manager)
    manager.init_citations(citation, overwrite=args.overwrite)
    manager.commit("Enable citations", timestamp=now_utc())
    _save(repo, args)
    _print(f"Created {CITATION_FILE_PATH[1:]} with root citation for {repo.full_name}")
    return 0


def cmd_status(args: argparse.Namespace) -> int:
    """Show branch, HEAD, citation status and pending changes."""
    repo, manager = _load(args)
    head = repo.head_oid()
    _print(f"Repository : {repo.full_name}")
    _print(f"Branch     : {repo.current_branch or '(detached)'}")
    _print(f"HEAD       : {head[:7] if head else '(no commits)'}")
    _print(f"Citations  : {'enabled' if manager.is_enabled else 'not enabled'}")
    if manager.is_enabled:
        _print(f"Cited paths: {len(manager.citation_function())}")
    status = repo.status()
    for label, paths in (
        ("modified", status.modified),
        ("deleted", status.deleted),
        ("untracked", status.untracked),
    ):
        for path in paths:
            _print(f"  {label}: {path}")
    if status.is_clean:
        _print("Working tree clean")
    return 0


def cmd_log(args: argparse.Namespace) -> int:
    """Show the commit history of the current branch."""
    repo, _ = _load(args)
    for info in repo.log(limit=args.limit):
        _print(f"{info.oid[:7]}  {info.commit.author.name:<20}  {info.summary}")
    return 0


def cmd_commit(args: argparse.Namespace) -> int:
    """Commit the working tree (including the maintained citation file)."""
    repo, manager = _load(args)
    oid = manager.commit(args.message, author_name=args.author, timestamp=now_utc())
    _save(repo, args)
    _print(f"[{repo.current_branch}] {oid[:7]} {args.message or ''}".rstrip())
    return 0


def cmd_branch(args: argparse.Namespace) -> int:
    """List branches, or create one."""
    repo, _ = _load(args)
    if args.name:
        repo.create_branch(args.name)
        _save(repo, args)
        _print(f"Created branch {args.name}")
        return 0
    for name, oid in sorted(repo.branches().items()):
        marker = "*" if name == repo.current_branch else " "
        _print(f"{marker} {name} {oid[:7]}")
    return 0


def cmd_checkout(args: argparse.Namespace) -> int:
    """Switch to a branch or version (updates the files on disk)."""
    repo, _ = _load(args)
    oid = repo.checkout(args.ref, create_branch=args.create)
    save_repository(repo, args.directory)
    _print(f"Checked out {args.ref} at {oid[:7]}")
    return 0


def cmd_move(args: argparse.Namespace) -> int:
    """Move/rename a file or directory, carrying its citations."""
    repo, manager = _load(args)
    if repo.file_exists(args.source):
        manager.move_file(args.source, args.destination)
    else:
        manager.move_directory(args.source, args.destination)
    _save(repo, args)
    # Remove the old on-disk file(s); export only writes the new layout.
    old = Path(args.directory) / args.source.lstrip("/")
    if old.is_file():
        old.unlink()
    _print(f"Moved {args.source} -> {args.destination} (citations updated)")
    return 0


# ---------------------------------------------------------------------------
# Citation operators
# ---------------------------------------------------------------------------


def cmd_add_cite(args: argparse.Namespace) -> int:
    """AddCite: attach a citation to a path."""
    repo, manager = _load(args)
    manager.add_cite(args.path, _citation_from_args(args, manager))
    if args.commit:
        manager.commit(f"AddCite {args.path}", timestamp=now_utc())
    _save(repo, args)
    _print(f"Attached citation to {args.path}")
    return 0


def cmd_del_cite(args: argparse.Namespace) -> int:
    """DelCite: remove the explicit citation of a path."""
    repo, manager = _load(args)
    manager.del_cite(args.path)
    if args.commit:
        manager.commit(f"DelCite {args.path}", timestamp=now_utc())
    _save(repo, args)
    _print(f"Removed citation from {args.path}")
    return 0


def cmd_modify_cite(args: argparse.Namespace) -> int:
    """ModifyCite: replace the citation of a path."""
    repo, manager = _load(args)
    manager.modify_cite(args.path, _citation_from_args(args, manager))
    if args.commit:
        manager.commit(f"ModifyCite {args.path}", timestamp=now_utc())
    _save(repo, args)
    _print(f"Modified citation of {args.path}")
    return 0


def cmd_gen_cite(args: argparse.Namespace) -> int:
    """GenCite: print the citation of a path (closest-ancestor resolution)."""
    _, manager = _load(args)
    resolved = manager.cite(args.path, ref=args.ref)
    _print(render(resolved.citation, args.format, cited_path=args.path).rstrip("\n"))
    if args.show_source:
        origin = "explicitly attached" if resolved.is_explicit else f"inherited from {resolved.source_path}"
        _print(f"# {origin}")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Export a citation in a bibliographic format (optionally to a file)."""
    _, manager = _load(args)
    resolved = manager.cite(args.path, ref=args.ref)
    text = render(resolved.citation, args.format, cited_path=args.path)
    if args.output:
        Path(args.output).write_text(text, encoding="utf-8")
        _print(f"Wrote {args.format} citation for {args.path} to {args.output}")
    else:
        _print(text.rstrip("\n"))
    return 0


def cmd_show_citations(args: argparse.Namespace) -> int:
    """List every explicit citation entry of the working tree."""
    _, manager = _load(args)
    for entry in manager.citation_function():
        kind = "dir " if entry.is_directory else "file"
        authors = ", ".join(entry.citation.authors)
        _print(f"{kind}  {entry.path:<40} {entry.citation.owner}/{entry.citation.repo_name} [{authors}]")
    return 0


# ---------------------------------------------------------------------------
# Citation-extended Git operations
# ---------------------------------------------------------------------------


def cmd_copy_cite(args: argparse.Namespace) -> int:
    """CopyCite: copy a directory (and its citations) from another working copy."""
    repo, manager = _load(args)
    source_repo = load_repository(args.source_directory)
    outcome = manager.copy_cite(
        source_repo, args.source_path, args.destination_path, source_ref=args.source_ref
    )
    if args.commit:
        manager.commit(
            f"CopyCite {args.source_path} from {source_repo.full_name}", timestamp=now_utc()
        )
    _save(repo, args)
    _print(
        f"Copied {len(outcome.copied_files)} file(s) from {outcome.source}; "
        f"migrated {outcome.citation_result.migrated_count} citation entr(y/ies)"
    )
    return 0


def cmd_merge_cite(args: argparse.Namespace) -> int:
    """MergeCite: merge a branch, merging citation files the GitCite way."""
    repo, manager = _load(args)
    strategy = strategy_by_name(args.strategy)
    outcome = manager.merge_cite(args.branch, strategy=strategy, message=args.message)
    _save(repo, args)
    result = outcome.citation_result
    _print(
        f"Merged {args.branch} into {repo.current_branch} at {outcome.commit_oid[:7]} "
        f"({len(result.conflicts)} citation conflict(s), {result.auto_resolved_count} resolved, "
        f"{len(result.dropped_paths)} entr(y/ies) dropped)"
    )
    return 0


def cmd_fork_cite(args: argparse.Namespace) -> int:
    """ForkCite: fork the working copy into a new directory under a new owner."""
    repo, manager = _load(args)
    fork_manager = manager.fork_cite(args.owner, new_name=args.name)
    destination = Path(args.destination)
    if destination.exists() and any(destination.iterdir()):
        raise CLIError(f"destination {destination} exists and is not empty")
    save_repository(fork_manager.repo, destination)
    _print(
        f"Forked {repo.full_name} -> {fork_manager.repo.full_name} at {destination} "
        "(citations carried over)"
    )
    return 0


def cmd_retro_cite(args: argparse.Namespace) -> int:
    """Retro-cite: mine history and citation-enable an existing repository."""
    repo, _ = _load(args)
    report = retrofit(repo, granularity=args.granularity, url=args.url)
    save_repository(repo, args.directory)
    _print(
        f"Retroactively cited {repo.full_name}: {report.entries_created} entr(y/ies) at "
        f"{args.granularity} granularity from {report.commits_scanned} commit(s); "
        f"contributors: {', '.join(report.contributors) or repo.owner}"
    )
    return 0


def cmd_validate(args: argparse.Namespace) -> int:
    """Check (and optionally repair) citation-function consistency."""
    repo, manager = _load(args)
    report = manager.repair() if args.repair else manager.validate()
    if args.repair:
        _save(repo, args)
    if report.is_consistent:
        _print("Citation function is consistent with the working tree")
        return 0
    for violation in report.violations:
        _print(f"{violation.kind}: {violation.path} — {violation.detail}")
    if args.repair:
        _print(f"Repaired {len(report.violations)} violation(s)")
        return 0
    return 1
