"""The ``gitcite`` command-line tool (the paper's local executable tool).

Section 3: *"When a project member downloads a copy of the project
repository with Git, the GitCite local executable tool can be used to manage
the citation file in the download.  In addition to implementing AddCite,
DelCite, and ModifyCite, it also implements the CopyCite, MergeCite and
ForkCite functions."*

The tool operates on an on-disk working copy: repository state (objects,
references, staging index) lives under ``.gitcite/`` next to the files, and
every command loads it, applies the corresponding library operation and saves
it back (:mod:`storage`).  ``python -m repro.cli`` and the ``gitcite`` console
script both invoke :func:`repro.cli.main.main`.
"""

from repro.cli.main import main

__all__ = ["main"]
