"""Allow ``python -m repro.cli`` to invoke the ``gitcite`` tool."""

import sys

from repro.cli.main import main

if __name__ == "__main__":
    sys.exit(main())
