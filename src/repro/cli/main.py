"""Argument parsing and dispatch for the ``gitcite`` command-line tool."""

from __future__ import annotations

import argparse
import sys
from typing import Optional, Sequence

from repro.errors import CLIError, ReproError
from repro.citation.conflict import available_strategies
from repro.formats import available_formats
from repro.cli import analyze, bundle, commands, fsck, serve, storage
from repro.vcs.storage import backend_kinds

__all__ = ["build_parser", "main"]


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "-C",
        "--directory",
        default=".",
        help="working-copy directory to operate on (default: current directory)",
    )


def _add_citation_fields(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--author", dest="authors", action="append",
                        help="author to credit (repeatable)")
    parser.add_argument("--title", help="title of the cited component")
    parser.add_argument("--doi", help="DOI to record in the citation")
    parser.add_argument("--version", help="version label to record")
    parser.add_argument("--url", help="URL to record (defaults to the repository URL)")
    parser.add_argument("--date", help="committed date to record (YYYY-MM-DDTHH:MM:SSZ)")
    parser.add_argument("--from-json", help="read the full citation record from a JSON file")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="gitcite",
        description=(
            "GitCite: manage software citations in version-controlled project repositories. "
            "Implements AddCite/DelCite/ModifyCite/GenCite plus the citation-extended "
            "Git operations CopyCite, MergeCite and ForkCite."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("init", help="create a gitcite working copy from a directory of files")
    _add_common(p)
    p.add_argument("--owner", required=True, help="repository owner (account name)")
    p.add_argument("--name", help="repository name (default: directory name)")
    p.add_argument("--description", help="repository description")
    p.add_argument("--message", help="initial commit message")
    p.add_argument("--allow-empty", action="store_true", help="commit even if the directory is empty")
    p.add_argument(
        "--storage",
        default="memory",
        choices=backend_kinds(),
        help=(
            "object-store layout: 'memory' embeds objects in state.json, 'loose' keeps one "
            "compressed file per object, 'pack' uses delta-compressed pack files (default: memory)"
        ),
    )
    p.set_defaults(func=commands.cmd_init)

    p = sub.add_parser("enable", help="citation-enable the repository (create citation.cite)")
    _add_common(p)
    _add_citation_fields(p)
    p.add_argument("--overwrite", action="store_true", help="replace an existing citation.cite")
    p.set_defaults(func=commands.cmd_enable)

    p = sub.add_parser("status", help="show branch, HEAD and citation status")
    _add_common(p)
    p.set_defaults(func=commands.cmd_status)

    p = sub.add_parser("log", help="show commit history")
    _add_common(p)
    p.add_argument("--limit", type=int, default=None, help="maximum number of commits to show")
    p.set_defaults(func=commands.cmd_log)

    p = sub.add_parser("commit", help="commit the working tree (citation.cite included)")
    _add_common(p)
    p.add_argument("-m", "--message", required=True, help="commit message")
    p.add_argument("--author", help="author name")
    p.set_defaults(func=commands.cmd_commit)

    p = sub.add_parser("branch", help="list or create branches")
    _add_common(p)
    p.add_argument("name", nargs="?", help="branch name to create (omit to list)")
    p.set_defaults(func=commands.cmd_branch)

    p = sub.add_parser("checkout", help="switch to a branch or version")
    _add_common(p)
    p.add_argument("ref", help="branch, tag or commit id")
    p.add_argument("-b", "--create", action="store_true", help="create the branch first")
    p.set_defaults(func=commands.cmd_checkout)

    p = sub.add_parser("mv", help="move/rename a file or directory, carrying citations")
    _add_common(p)
    p.add_argument("source")
    p.add_argument("destination")
    p.set_defaults(func=commands.cmd_move)

    p = sub.add_parser("add-cite", help="AddCite: attach a citation to a path")
    _add_common(p)
    p.add_argument("path", help="repository path of the file or directory")
    _add_citation_fields(p)
    p.add_argument("--commit", action="store_true", help="commit immediately")
    p.set_defaults(func=commands.cmd_add_cite)

    p = sub.add_parser("del-cite", help="DelCite: remove the explicit citation of a path")
    _add_common(p)
    p.add_argument("path")
    p.add_argument("--commit", action="store_true", help="commit immediately")
    p.set_defaults(func=commands.cmd_del_cite)

    p = sub.add_parser("modify-cite", help="ModifyCite: replace the citation of a path")
    _add_common(p)
    p.add_argument("path")
    _add_citation_fields(p)
    p.add_argument("--commit", action="store_true", help="commit immediately")
    p.set_defaults(func=commands.cmd_modify_cite)

    p = sub.add_parser("gen-cite", help="GenCite: print the citation of a path")
    _add_common(p)
    p.add_argument("path")
    p.add_argument("--ref", help="cite a specific version instead of the working tree")
    p.add_argument("--format", default="text", choices=available_formats())
    p.add_argument("--show-source", action="store_true",
                   help="also print whether the citation was inherited from an ancestor")
    p.set_defaults(func=commands.cmd_gen_cite)

    p = sub.add_parser("export", help="export a citation in a bibliographic format")
    _add_common(p)
    p.add_argument("path")
    p.add_argument("--ref", help="cite a specific version instead of the working tree")
    p.add_argument("--format", default="bibtex", choices=available_formats())
    p.add_argument("-o", "--output", help="write to a file instead of stdout")
    p.set_defaults(func=commands.cmd_export)

    p = sub.add_parser("citations", help="list every explicit citation entry")
    _add_common(p)
    p.set_defaults(func=commands.cmd_show_citations)

    p = sub.add_parser("copy-cite", help="CopyCite: copy a directory and its citations from another working copy")
    _add_common(p)
    p.add_argument("source_directory", help="path of the source gitcite working copy")
    p.add_argument("source_path", help="directory inside the source repository to copy")
    p.add_argument("destination_path", help="destination directory inside this repository")
    p.add_argument("--source-ref", default="HEAD", help="source version to copy from")
    p.add_argument("--commit", action="store_true", help="commit immediately")
    p.set_defaults(func=commands.cmd_copy_cite)

    p = sub.add_parser("merge-cite", help="MergeCite: merge a branch, merging citation files")
    _add_common(p)
    p.add_argument("branch", help="branch to merge into the current branch")
    p.add_argument("--strategy", default="theirs", choices=available_strategies(),
                   help="conflict-resolution strategy for citation conflicts")
    p.add_argument("-m", "--message", help="merge commit message")
    p.set_defaults(func=commands.cmd_merge_cite)

    p = sub.add_parser("fork-cite", help="ForkCite: fork into a new working copy under a new owner")
    _add_common(p)
    p.add_argument("destination", help="directory for the forked working copy")
    p.add_argument("--owner", required=True, help="owner of the fork")
    p.add_argument("--name", help="name of the fork (default: same name)")
    p.set_defaults(func=commands.cmd_fork_cite)

    p = sub.add_parser("retro-cite", help="mine history and citation-enable an existing repository")
    _add_common(p)
    p.add_argument("--granularity", default="directory", choices=("root", "directory", "file"))
    p.add_argument("--url", help="repository URL to record in the root citation")
    p.set_defaults(func=commands.cmd_retro_cite)

    p = sub.add_parser("validate", help="check citation-function consistency")
    _add_common(p)
    p.add_argument("--repair", action="store_true", help="apply unambiguous repairs")
    p.set_defaults(func=commands.cmd_validate)

    p = sub.add_parser("fsck", help="verify store integrity (objects, indexes, refs, citations)")
    _add_common(p)
    p.add_argument("--repair", action="store_true",
                   help="quarantine corrupt objects/packs, salvage what verifies, rebuild indexes")
    p.set_defaults(func=fsck.cmd_fsck)

    p = sub.add_parser(
        "serve",
        help="host the working copy over HTTP (REST API incl. the git sync endpoints)",
    )
    _add_common(p)
    p.add_argument("--host", default="127.0.0.1", help="interface to bind (default: 127.0.0.1)")
    p.add_argument("--port", type=int, default=8943,
                   help="TCP port to listen on (0 = ephemeral; default: 8943)")
    p.add_argument("--no-rate-limit", action="store_true",
                   help="disable the GitHub-style request quotas")
    p.add_argument("--write-behind", action="store_true",
                   help="batch journal fsyncs instead of syncing every acknowledged "
                        "push (higher throughput, bounded loss window on kill -9)")
    p.add_argument("--flush-every", type=int, default=8,
                   help="write-behind mode: fsync the journal every N records (default: 8)")
    p.add_argument("--max-inflight", type=int, default=64,
                   help="concurrent requests before shedding with retryable 503 (default: 64)")
    p.add_argument("--max-body-mb", type=int, default=64,
                   help="largest request body accepted, in MiB (default: 64)")
    p.add_argument("--request-timeout", type=float, default=30.0,
                   help="per-request socket timeout and deadline, seconds (default: 30)")
    p.add_argument("--drain-timeout", type=float, default=10.0,
                   help="seconds to wait for in-flight requests at shutdown (default: 10)")
    p.set_defaults(func=serve.cmd_serve)

    p = sub.add_parser(
        "analyze",
        help="run the static invariant rules (layering, locks, durability, ...) over this tree",
    )
    p.add_argument("--root", help="repository root to analyze (default: this installation's tree)")
    p.add_argument("--rule", dest="rules", action="append",
                   help="rule id to run (repeatable; default: all rules)")
    p.add_argument("--baseline", action="store_true",
                   help="accept the current findings into tools/analysis_baseline.json")
    p.add_argument("--list-rules", action="store_true", help="list the registered rules and exit")
    p.set_defaults(func=analyze.cmd_analyze)

    p = sub.add_parser("storage", help="object-store maintenance (repack / gc / migrate)")
    storage_sub = p.add_subparsers(dest="storage_command", required=True)

    sp = storage_sub.add_parser(
        "repack",
        help="rewrite the object store as one delta-compressed pack file "
             "(memory/loose working copies are converted to pack storage first)",
    )
    _add_common(sp)
    sp.set_defaults(func=storage.cmd_storage_repack)

    sp = storage_sub.add_parser("gc", help="drop objects unreachable from any branch, tag or HEAD")
    _add_common(sp)
    sp.set_defaults(func=storage.cmd_storage_gc)

    sp = storage_sub.add_parser("migrate", help="switch the working copy to another storage layout")
    _add_common(sp)
    sp.add_argument("--to", required=True, choices=backend_kinds(), help="target storage layout")
    sp.set_defaults(func=storage.cmd_storage_migrate)

    p = sub.add_parser("bundle", help="create, verify or apply transfer bundle files")
    bundle_sub = p.add_subparsers(dest="bundle_command", required=True)

    sp = bundle_sub.add_parser(
        "create",
        help="write the repository history (or selected refs) as a bundle file",
    )
    _add_common(sp)
    sp.add_argument("file", help="bundle file to write")
    sp.add_argument("--ref", dest="refs", action="append",
                    help="branch/tag/commit to bundle (repeatable; default: all refs)")
    sp.add_argument("--basis", dest="basis", action="append",
                    help="assume the receiver has this ref (repeatable; makes a thin bundle)")
    sp.set_defaults(func=bundle.cmd_bundle_create)

    sp = bundle_sub.add_parser(
        "verify",
        help="check a bundle file (checksum, object hashes, applicability)",
    )
    _add_common(sp)
    sp.add_argument("file", help="bundle file to verify")
    sp.set_defaults(func=bundle.cmd_bundle_verify)

    sp = bundle_sub.add_parser(
        "unbundle",
        help="apply a bundle file to the working copy (fast-forward refs)",
    )
    _add_common(sp)
    sp.add_argument("file", help="bundle file to apply")
    sp.add_argument("--force", action="store_true",
                    help="allow non-fast-forward branch updates and tag moves")
    sp.set_defaults(func=bundle.cmd_bundle_unbundle)

    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Entry point for the ``gitcite`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CLIError as exc:
        sys.stderr.write(f"gitcite: error: {exc}\n")
        return exc.exit_code
    except ReproError as exc:
        sys.stderr.write(f"gitcite: error: {exc}\n")
        return 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
