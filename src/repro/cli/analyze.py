"""``gitcite analyze`` — run the static invariant rules over this tree.

The analysis engine (``repro.analysis``) checks the invariants the test
suite can only spot-check: downward-only layer imports, the guarded-by
lock contract, atomicio-only durable writes, exception-safety, failpoint
coverage and docs consistency.  CI runs this as its own job; developers
run it locally the same way::

    gitcite analyze                      # all rules, baseline applied
    gitcite analyze --rule layering      # one rule
    gitcite analyze --list-rules         # what exists
    gitcite analyze --baseline           # accept current findings

Exit status: 0 when no (non-baselined) finding remains, 1 otherwise.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.analysis import all_rules, run_analysis, write_baseline
from repro.analysis.core import BASELINE_PATH, LAYERS_PATH
from repro.errors import CLIError

__all__ = ["cmd_analyze", "default_root"]


def default_root() -> Path:
    """The repository this installation was loaded from (src/ layout)."""
    # .../src/repro/cli/analyze.py -> parents[3] == the repo root.
    candidate = Path(__file__).resolve().parents[3]
    if (candidate / LAYERS_PATH).is_file():
        return candidate
    return Path.cwd()


def _print(message: str = "") -> None:
    sys.stdout.write(message + "\n")


def cmd_analyze(args: argparse.Namespace) -> int:
    if args.list_rules:
        for rule_id, description in all_rules().items():
            _print(f"{rule_id:20} {description}")
        return 0
    root = Path(args.root).resolve() if args.root else default_root()
    if not (root / "src").is_dir():
        raise CLIError(f"{root} does not look like an analyzable tree (no src/ directory)")
    baseline_path = root / BASELINE_PATH
    try:
        result = run_analysis(
            root,
            rules=args.rules or None,
            baseline=None if args.baseline else baseline_path,
        )
    except ValueError as exc:
        raise CLIError(str(exc)) from exc

    if args.baseline:
        write_baseline(baseline_path, result.findings)
        _print(
            f"Baselined {len(result.findings)} finding(s) into "
            f"{baseline_path.relative_to(root)}"
        )
        return 0

    for finding in result.findings:
        _print(finding.render())
    suppressed = f" ({result.suppressed} baselined)" if result.suppressed else ""
    verdict = "clean" if not result.findings else f"{len(result.findings)} finding(s)"
    _print(
        f"analyze: {verdict}{suppressed} across {len(result.rules_run)} rule(s): "
        + ", ".join(result.rules_run)
    )
    return 0 if not result.findings else 1
