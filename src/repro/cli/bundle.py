"""The ``gitcite bundle`` subcommands: create / verify / unbundle.

A bundle file is the sync subsystem's wire payload written to disk
(:mod:`repro.vcs.transfer.bundle`): a self-contained, checksummed,
delta-compressed object stream plus the branch/tag tips it carries.  It is
the offline counterpart of push/fetch — create one from a working copy,
move it however you like, verify it anywhere, and unbundle it into another
working copy with the same fast-forward discipline a push obeys.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import BundleError, CLIError, RefError, RemoteError
from repro.cli.storage import is_working_copy, load_repository, save_repository
from repro.vcs.transfer import (
    advertise_refs,
    apply_bundle,
    plan_bundle,
    read_bundle,
    update_refs_from_bundle,
    verify_bundle,
)

__all__ = ["cmd_bundle_create", "cmd_bundle_verify", "cmd_bundle_unbundle"]


def _print(message: str = "") -> None:
    sys.stdout.write(message + "\n")


def cmd_bundle_create(args: argparse.Namespace) -> int:
    """Write the working copy's history (or selected refs) as a bundle file.

    With ``--basis`` the bundle is *thin*: it assumes the receiver already
    has the basis commits and carries only what is newer — the negotiated
    push payload, reified as a file.
    """
    repo = load_repository(args.directory)
    advertisement = advertise_refs(repo)
    if args.refs:
        wants = []
        for ref in args.refs:
            try:
                wants.append(repo.resolve(ref))
            except RefError as exc:
                raise CLIError(str(exc)) from exc
    else:
        wants = sorted(advertisement.tips())
    if not wants:
        raise CLIError("nothing to bundle: the repository has no commits")
    haves = []
    for ref in args.basis or ():
        try:
            haves.append(repo.resolve(ref))
        except RefError as exc:
            raise CLIError(str(exc)) from exc
    plan, writer = plan_bundle(repo.store, wants, haves=haves, refs=advertisement)
    data = writer.getvalue()
    try:
        Path(args.file).write_bytes(data)
    except OSError as exc:
        raise CLIError(f"cannot write bundle file: {exc}") from exc
    thin = f", thin against {len(plan.boundary)} prerequisite(s)" if haves else ""
    _print(
        f"Wrote {args.file}: {plan.objects_offered} object(s), "
        f"{len(writer.branches)} branch(es), {len(writer.tags)} tag(s), "
        f"{len(data)} bytes{thin}"
    )
    return 0


def cmd_bundle_verify(args: argparse.Namespace) -> int:
    """Verify a bundle file: checksum, object hashes, and — inside a working
    copy — prerequisites and connectivity against the local store."""
    try:
        data = Path(args.file).read_bytes()
    except OSError as exc:
        raise CLIError(f"cannot read bundle file: {exc}") from exc
    store = None
    if is_working_copy(args.directory):
        store = load_repository(args.directory).store
    try:
        bundle = read_bundle(data)
        verify_bundle(store, bundle)
    except BundleError as exc:
        raise CLIError(f"bundle verification failed: {exc}") from exc
    scope = "against the local object store" if store is not None else "standalone (no working copy)"
    _print(
        f"{args.file} is valid {scope}: {bundle.object_count} object(s), "
        f"{len(bundle.prerequisites)} prerequisite(s), "
        f"branches: {', '.join(sorted(bundle.branches)) or '(none)'}"
    )
    return 0


def cmd_bundle_unbundle(args: argparse.Namespace) -> int:
    """Apply a bundle file to the working copy and update the refs it names.

    Branch updates are fast-forward-only unless ``--force``; a corrupt or
    inapplicable bundle changes nothing.
    """
    repo = load_repository(args.directory)
    try:
        data = Path(args.file).read_bytes()
    except OSError as exc:
        raise CLIError(f"cannot read bundle file: {exc}") from exc
    try:
        result = apply_bundle(repo.store, data)
        updated = update_refs_from_bundle(repo, result.bundle, force=args.force)
    except RemoteError as exc:
        # RemoteError covers both corrupt bundles (BundleError) and
        # non-fast-forward ref rejections — one consistent error shape.
        raise CLIError(f"bundle rejected: {exc}") from exc
    save_repository(repo, args.directory)
    moved = ", ".join(f"{name} -> {oid[:7]}" for name, oid in sorted(updated.items()))
    _print(
        f"Unbundled {args.file}: {result.objects_added} new object(s) of "
        f"{result.objects_total}; refs updated: {moved or '(none)'}"
    )
    return 0
