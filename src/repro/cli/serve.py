"""``gitcite serve`` — host a working copy over a real HTTP socket, durably.

Loads the working copy through the full crash-recovery pipeline
(:func:`~repro.hub.durability.recover_working_copy`: orphan sweep, fsck with
repair, journal replay), hosts it on a fresh
:class:`~repro.hub.server.HostingPlatform` under its recorded owner/name
slug, issues the owner a push token, and serves the full REST API
(contents, forks, ``/healthz``, and the three ``git/*`` sync endpoints —
see ``docs/WIRE_PROTOCOL.md``) on a :class:`~repro.hub.httpd.HubHttpServer`
until SIGINT or SIGTERM.  Anonymous reads are allowed (the repository is
hosted public); pushes need the printed token.

Durability contract (``docs/OPERATIONS.md`` has the operator's view):

* every acknowledged mutation is appended to the write-ahead journal
  **before** its 2xx leaves the socket (``--write-behind`` batches the
  fsyncs, trading a bounded loss window for throughput);
* a ``kill -9`` at any instant loses at most the un-acknowledged work in
  flight — the next ``gitcite serve`` replays the journal onto the last
  checkpoint before accepting the first request;
* SIGTERM and SIGINT both drain: stop accepting, finish in-flight requests
  under ``--drain-timeout``, flush the journal, save the working copy.  If
  the final save fails the process exits non-zero, but nothing is lost —
  the journal still holds every acknowledgement and prints where.
* if startup recovery quarantined unrecoverable history the hub comes up
  **degraded (read-only)**: clones and reads work, writes answer a
  retryable 503 until an operator intervenes.
"""

from __future__ import annotations

import argparse
import os
import signal
import threading

from repro import faults
from repro.cli.storage import save_repository
from repro.errors import CLIError, ReproError
from repro.hub.api import RestApi
from repro.hub.durability import PushJournal, journal_path, recover_working_copy
from repro.hub.httpd import HubHttpServer
from repro.hub.lifecycle import GuardedApi, ServingState, drain
from repro.hub.ratelimit import RateLimiter
from repro.hub.server import HostingPlatform

__all__ = ["cmd_serve", "FAULTS_ENV"]

#: Environment hook the chaos suite uses to arm failpoints *inside* the
#: serve subprocess: comma-separated ``name[:kind[:at]]`` entries, e.g.
#: ``GITCITE_SERVE_FAULTS="journal.append:crash:3,wire.response:error"``.
#: ``kind`` defaults to ``crash``; ``error`` arms an injected ``OSError``
#: (the disk-failure signal the lifecycle layer turns into degraded mode).
FAULTS_ENV = "GITCITE_SERVE_FAULTS"


def _arm_env_faults() -> None:
    spec = os.environ.get(FAULTS_ENV, "").strip()
    if not spec:
        return
    for entry in spec.split(","):
        entry = entry.strip()
        if not entry:
            continue
        parts = entry.split(":")
        name = parts[0]
        kind = parts[1] if len(parts) > 1 and parts[1] else "crash"
        at = int(parts[2]) if len(parts) > 2 else 1
        if kind == "error":
            faults.arm(name, "error", at=at,
                       error=lambda: OSError("injected disk failure"))
        else:
            faults.arm(name, kind, at=at)


def cmd_serve(args: argparse.Namespace) -> int:
    _arm_env_faults()
    write_behind = bool(getattr(args, "write_behind", False))
    flush_every = int(getattr(args, "flush_every", 8))
    max_inflight = int(getattr(args, "max_inflight", 64))
    max_body_mb = int(getattr(args, "max_body_mb", 64))
    request_timeout = float(getattr(args, "request_timeout", 30.0))
    drain_timeout = float(getattr(args, "drain_timeout", 10.0))

    # Recovery first: fsck + checkpoint load + journal replay.  The hub
    # never answers a request for state it has not finished reconstructing.
    try:
        repo, recovery = recover_working_copy(args.directory)
    except ReproError as exc:
        raise CLIError(f"startup recovery failed: {exc}") from exc

    limiter = RateLimiter(enabled=not args.no_rate_limit)
    platform = HostingPlatform(rate_limiter=limiter)
    platform.host_repository(repo)
    token = platform.issue_token(repo.owner)
    slug = repo.full_name

    try:
        journal = PushJournal(
            journal_path(args.directory),
            durable=not write_behind,
            flush_every=flush_every,
        )
    except OSError as exc:
        raise CLIError(f"cannot open the push journal: {exc}") from exc
    platform.attach_journal(slug, journal)

    state = ServingState(max_in_flight=max_inflight, request_deadline=request_timeout)
    platform.bind_lifecycle(state)
    if recovery.degraded:
        # Quarantined history or unreplayable journal records: an operator
        # has to look, so a /healthz probe must not silently clear it.
        state.mark_degraded(recovery.degraded_reason, recoverable=False)

    api = GuardedApi(RestApi(platform), state, probe=journal.verify_writable)
    try:
        server = HubHttpServer(
            api,
            host=args.host,
            port=args.port,
            request_timeout=request_timeout,
            max_body_bytes=max_body_mb * 1024 * 1024,
            exit_on_crash=True,
        )
    except OSError as exc:
        journal.close()
        raise CLIError(f"cannot bind {args.host}:{args.port}: {exc}") from exc

    print(f"serving {slug} on {server.url}", flush=True)
    print(f"  token ({repo.owner}): {token.value}", flush=True)
    print(f"  refs: GET {server.url}/repos/{slug}/git/refs", flush=True)
    print(
        f"  journal: {'write-behind' if write_behind else 'durable'} ({journal.path})",
        flush=True,
    )
    if recovery.records_replayed or recovery.repairs:
        print(
            f"  recovered: {recovery.records_replayed}/{recovery.records_found} "
            f"journalled update(s) replayed ({recovery.objects_restored} object(s), "
            f"{len(recovery.refs_restored)} ref(s)); {len(recovery.repairs)} repair(s)",
            flush=True,
        )
    if recovery.degraded:
        print(f"  DEGRADED (read-only): {recovery.degraded_reason}", flush=True)
    print("  stop with Ctrl-C or SIGTERM (drains in-flight requests, then saves)",
          flush=True)

    # Both shutdown signals funnel into one event; the accept loop runs on a
    # daemon thread so the main thread is free to field the signal and run
    # the drain sequence itself.
    stop = threading.Event()

    def _request_stop(signum, frame):
        stop.set()

    previous = {}
    for signum in (signal.SIGINT, signal.SIGTERM):
        previous[signum] = signal.signal(signum, _request_stop)
    server.start()
    try:
        stop.wait()
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)

    # Drain: shed new requests, stop accepting, let in-flight work finish.
    if not drain(state, http_server=server, timeout=drain_timeout):
        print(f"  drain timed out after {drain_timeout:.1f}s; saving anyway", flush=True)
    try:
        journal.flush()
    except OSError as exc:
        print(f"  warning: journal flush failed on shutdown: {exc}", flush=True)
    try:
        save_repository(repo, args.directory)
    except (ReproError, OSError) as exc:
        # The checkpoint failed, but every acknowledged update is still in
        # the journal — the next serve replays it.  Exit non-zero so
        # supervisors notice, after telling the operator exactly that.
        print(
            f"could not save {slug}: {exc}\n"
            f"  acknowledged updates are safe in the journal ({journal.path});\n"
            f"  restart with `gitcite serve -C {args.directory}` to replay them",
            flush=True,
        )
        journal.close()
        raise CLIError(f"shutdown: could not save the working copy: {exc}") from exc
    if state.degraded is None:
        # The checkpoint now holds everything the journal does; reset it.
        # A degraded hub keeps its journal — it is the evidence trail.
        try:
            journal.truncate()
        except OSError:
            pass  # stale records replay as no-ops on the next serve
    journal.close()
    print(f"stopped; {slug} saved", flush=True)
    return 0
