"""``gitcite serve`` — host a working copy over a real HTTP socket.

Loads the working copy, hosts it on a fresh
:class:`~repro.hub.server.HostingPlatform` under its recorded owner/name
slug, issues the owner a push token, and serves the full REST API
(contents, forks, and the three ``git/*`` sync endpoints — see
``docs/WIRE_PROTOCOL.md``) on a :class:`~repro.hub.httpd.HubHttpServer`
until interrupted.  Anonymous reads are allowed (the repository is hosted
public); pushes need the printed token.

State pushed while serving lives in the hosted repository object; on a
clean shutdown (SIGINT) the working copy is saved back to disk, so
accepted pushes survive the server process.
"""

from __future__ import annotations

import argparse

from repro.cli.storage import load_repository, save_repository
from repro.errors import CLIError, ReproError
from repro.hub.api import RestApi
from repro.hub.httpd import HubHttpServer
from repro.hub.ratelimit import RateLimiter
from repro.hub.server import HostingPlatform

__all__ = ["cmd_serve"]


def cmd_serve(args: argparse.Namespace) -> int:
    repo = load_repository(args.directory)
    limiter = RateLimiter(enabled=not args.no_rate_limit)
    platform = HostingPlatform(rate_limiter=limiter)
    platform.host_repository(repo)
    token = platform.issue_token(repo.owner)
    try:
        server = HubHttpServer(RestApi(platform), host=args.host, port=args.port)
    except OSError as exc:
        raise CLIError(f"cannot bind {args.host}:{args.port}: {exc}") from exc
    slug = repo.full_name
    print(f"serving {slug} on {server.url}", flush=True)
    print(f"  token ({repo.owner}): {token.value}", flush=True)
    print(f"  refs: GET {server.url}/repos/{slug}/git/refs", flush=True)
    print("  stop with Ctrl-C (the working copy is saved on shutdown)", flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        server.server_close()
        try:
            save_repository(repo, args.directory)
        except ReproError as exc:
            raise CLIError(f"shutdown: could not save the working copy: {exc}") from exc
    print(f"stopped; {slug} saved", flush=True)
    return 0
