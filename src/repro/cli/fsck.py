"""The ``gitcite fsck`` command: audit (and repair) a working copy's store.

Thin presentation layer over :func:`repro.vcs.fsck.fsck_working_copy`: print
every finding, the repair actions taken, and the unrecoverable losses with
the refs they strand; exit 0 only when the final state is healthy.
"""

from __future__ import annotations

import argparse
import sys

from repro.errors import CLIError
from repro.vcs.fsck import fsck_working_copy

__all__ = ["cmd_fsck"]


def _print(message: str = "") -> None:
    sys.stdout.write(message + "\n")


def cmd_fsck(args: argparse.Namespace) -> int:
    """Check every object, index, ref and citation file; optionally repair."""
    report = fsck_working_copy(args.directory, repair=args.repair)
    if report.storage is None and not report.findings:
        raise CLIError(f"{args.directory} is not a gitcite working copy")
    for action in report.repaired:
        _print(f"repaired: {action}")
    for finding in report.findings:
        _print(str(finding))
    if report.unrecoverable:
        _print(f"{len(report.unrecoverable)} unrecoverable object(s):")
        for oid, refs in report.unrecoverable.items():
            _print(f"  {oid} (strands {', '.join(refs)})")
    summary = (
        f"checked {report.objects_checked} object(s), {report.packs_checked} pack(s), "
        f"{report.refs_checked} ref(s), {report.citations_checked} citation file(s)"
    )
    if report.ok:
        _print(f"ok: {summary}")
        return 0
    errors = len(report.errors())
    _print(f"corrupt: {errors} error(s); {summary}")
    if not args.repair:
        _print("hint: run 'gitcite fsck --repair' to quarantine damage and rebuild indexes")
    return 1
