"""Ignore patterns for working-tree imports.

When the command-line tool reads a directory from disk into a repository it
skips paths matched by an ignore list (the substrate's equivalent of
``.gitignore``).  Patterns follow :mod:`fnmatch` semantics and are matched
against each path component as well as the full repository-relative path;
patterns ending in ``/`` only match directories.
"""

from __future__ import annotations

import fnmatch
from typing import Iterable

from repro.utils.paths import normalize_path, split_path

__all__ = ["IgnoreRules", "DEFAULT_IGNORES"]

#: Patterns ignored by default when importing a directory from disk.
DEFAULT_IGNORES = (
    ".git/",
    ".gitcite/",
    "__pycache__/",
    "*.pyc",
    ".DS_Store",
)


class IgnoreRules:
    """A compiled set of ignore patterns."""

    def __init__(self, patterns: Iterable[str] = DEFAULT_IGNORES) -> None:
        self._directory_patterns: list[str] = []
        self._file_patterns: list[str] = []
        for pattern in patterns:
            pattern = pattern.strip()
            if not pattern or pattern.startswith("#"):
                continue
            if pattern.endswith("/"):
                self._directory_patterns.append(pattern.rstrip("/"))
            else:
                self._file_patterns.append(pattern)

    @classmethod
    def from_text(cls, text: str, include_defaults: bool = True) -> "IgnoreRules":
        """Parse a ``.citeignore``-style text block."""
        patterns = list(DEFAULT_IGNORES) if include_defaults else []
        patterns.extend(line for line in text.splitlines())
        return cls(patterns)

    def matches(self, path: str, is_directory: bool = False) -> bool:
        """Return whether ``path`` should be ignored."""
        canonical = normalize_path(path)
        parts = split_path(canonical)
        if not parts:
            return False
        # A file is ignored if any ancestor directory matches a directory pattern.
        for depth, component in enumerate(parts):
            component_is_dir = is_directory or depth < len(parts) - 1
            if component_is_dir and any(
                fnmatch.fnmatch(component, pattern) for pattern in self._directory_patterns
            ):
                return True
        target = parts[-1]
        if is_directory:
            return any(fnmatch.fnmatch(target, pattern) for pattern in self._directory_patterns)
        if any(fnmatch.fnmatch(target, pattern) for pattern in self._file_patterns):
            return True
        relative = canonical[1:]
        return any(fnmatch.fnmatch(relative, pattern) for pattern in self._file_patterns)

    def filter_paths(self, paths: Iterable[str]) -> list[str]:
        """Return the subset of ``paths`` that is *not* ignored (sorted)."""
        return sorted(p for p in paths if not self.matches(p))
