"""Tree diffs with rename detection.

The citation model needs to know, between two versions, which files were
added, deleted, modified or *renamed/moved*: the paper requires that "if a
file or directory in the active domain of the citation function is moved or
renamed then the citation function must be modified to reflect the file or
directory's path in the new version".  Rename detection therefore feeds
directly into :mod:`repro.citation.rename`.

Renames are detected in two passes, mirroring Git's heuristic:

1. exact matches — a deleted path and an added path whose blobs have the same
   object id;
2. similarity matches — remaining deleted/added pairs of text blobs whose
   line-based similarity ratio is at least ``similarity_threshold``.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field


from repro.vcs.object_store import ObjectStore
from repro.vcs.treeops import flatten_files

__all__ = ["DiffEntry", "TreeDiff", "diff_trees", "blob_similarity"]

STATUS_ADDED = "added"
STATUS_DELETED = "deleted"
STATUS_MODIFIED = "modified"
STATUS_RENAMED = "renamed"

#: Default similarity ratio above which a delete/add pair counts as a rename.
DEFAULT_SIMILARITY_THRESHOLD = 0.6


@dataclass(frozen=True)
class DiffEntry:
    """One changed path between two versions."""

    status: str
    old_path: str | None
    new_path: str | None
    old_oid: str | None
    new_oid: str | None
    similarity: float | None = None

    @property
    def path(self) -> str:
        """The most relevant path for display (new path when available)."""
        return self.new_path if self.new_path is not None else (self.old_path or "")


@dataclass
class TreeDiff:
    """The set of changes between an old tree and a new tree."""

    entries: list[DiffEntry] = field(default_factory=list)

    @property
    def added(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.status == STATUS_ADDED]

    @property
    def deleted(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.status == STATUS_DELETED]

    @property
    def modified(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.status == STATUS_MODIFIED]

    @property
    def renamed(self) -> list[DiffEntry]:
        return [e for e in self.entries if e.status == STATUS_RENAMED]

    @property
    def is_empty(self) -> bool:
        return not self.entries

    def renames(self) -> dict[str, str]:
        """Return a ``{old path: new path}`` map for all detected renames."""
        return {e.old_path: e.new_path for e in self.renamed if e.old_path and e.new_path}

    def deleted_paths(self) -> list[str]:
        return sorted(e.old_path for e in self.deleted if e.old_path)

    def added_paths(self) -> list[str]:
        return sorted(e.new_path for e in self.added if e.new_path)

    def summary(self) -> str:
        """A one-line human-readable summary (used by the CLI)."""
        return (
            f"{len(self.added)} added, {len(self.deleted)} deleted, "
            f"{len(self.modified)} modified, {len(self.renamed)} renamed"
        )


def blob_similarity(store: ObjectStore, oid_a: str, oid_b: str) -> float:
    """Return a similarity ratio in [0, 1] between two blobs.

    Binary blobs only match exactly (1.0 when equal, 0.0 otherwise); text
    blobs use :class:`difflib.SequenceMatcher` over their lines.
    """
    if oid_a == oid_b:
        return 1.0
    blob_a = store.get_blob(oid_a)
    blob_b = store.get_blob(oid_b)
    if blob_a.is_binary or blob_b.is_binary:
        return 1.0 if blob_a.data == blob_b.data else 0.0
    lines_a = blob_a.text().splitlines()
    lines_b = blob_b.text().splitlines()
    if not lines_a and not lines_b:
        return 1.0
    return difflib.SequenceMatcher(a=lines_a, b=lines_b, autojunk=False).ratio()


def diff_trees(
    store: ObjectStore,
    old_tree_oid: str | None,
    new_tree_oid: str | None,
    detect_renames: bool = True,
    similarity_threshold: float = DEFAULT_SIMILARITY_THRESHOLD,
) -> TreeDiff:
    """Diff the file sets of two trees.

    Either tree id may be ``None`` (meaning "the empty tree"), which is how
    the first commit of a repository is diffed.
    """
    old_files = flatten_files(store, old_tree_oid) if old_tree_oid else {}
    new_files = flatten_files(store, new_tree_oid) if new_tree_oid else {}

    added: dict[str, tuple[str, str]] = {
        path: entry for path, entry in new_files.items() if path not in old_files
    }
    deleted: dict[str, tuple[str, str]] = {
        path: entry for path, entry in old_files.items() if path not in new_files
    }
    entries: list[DiffEntry] = []

    for path in sorted(set(old_files) & set(new_files)):
        old_oid, _ = old_files[path]
        new_oid, _ = new_files[path]
        if old_oid != new_oid:
            entries.append(
                DiffEntry(
                    status=STATUS_MODIFIED,
                    old_path=path,
                    new_path=path,
                    old_oid=old_oid,
                    new_oid=new_oid,
                )
            )

    if detect_renames and added and deleted:
        rename_entries, added, deleted = _detect_renames(
            store, added, deleted, similarity_threshold
        )
        entries.extend(rename_entries)

    for path in sorted(deleted):
        oid, _ = deleted[path]
        entries.append(
            DiffEntry(status=STATUS_DELETED, old_path=path, new_path=None, old_oid=oid, new_oid=None)
        )
    for path in sorted(added):
        oid, _ = added[path]
        entries.append(
            DiffEntry(status=STATUS_ADDED, old_path=None, new_path=path, old_oid=None, new_oid=oid)
        )

    entries.sort(key=lambda e: (e.path, e.status))
    return TreeDiff(entries=entries)


def _detect_renames(
    store: ObjectStore,
    added: dict[str, tuple[str, str]],
    deleted: dict[str, tuple[str, str]],
    similarity_threshold: float,
) -> tuple[list[DiffEntry], dict[str, tuple[str, str]], dict[str, tuple[str, str]]]:
    """Pair deleted paths with added paths that carry the same (or similar) content."""
    renames: list[DiffEntry] = []
    remaining_added = dict(added)
    remaining_deleted = dict(deleted)

    # Pass 1: exact content matches, preferring pairs with the same basename.
    added_by_oid: dict[str, list[str]] = {}
    for path, (oid, _) in sorted(remaining_added.items()):
        added_by_oid.setdefault(oid, []).append(path)
    for old_path in sorted(remaining_deleted):
        old_oid, _ = remaining_deleted[old_path]
        candidates = added_by_oid.get(old_oid, [])
        if not candidates:
            continue
        basename = old_path.rsplit("/", 1)[-1]
        same_name = [c for c in candidates if c.rsplit("/", 1)[-1] == basename]
        new_path = (same_name or candidates)[0]
        candidates.remove(new_path)
        renames.append(
            DiffEntry(
                status=STATUS_RENAMED,
                old_path=old_path,
                new_path=new_path,
                old_oid=old_oid,
                new_oid=remaining_added[new_path][0],
                similarity=1.0,
            )
        )
        del remaining_deleted[old_path]
        del remaining_added[new_path]

    # Pass 2: similarity matches among the leftovers (greedy best-first).
    scored: list[tuple[float, str, str]] = []
    for old_path, (old_oid, _) in remaining_deleted.items():
        for new_path, (new_oid, _) in remaining_added.items():
            ratio = blob_similarity(store, old_oid, new_oid)
            if ratio >= similarity_threshold:
                scored.append((ratio, old_path, new_path))
    scored.sort(key=lambda item: (-item[0], item[1], item[2]))
    for ratio, old_path, new_path in scored:
        if old_path not in remaining_deleted or new_path not in remaining_added:
            continue
        renames.append(
            DiffEntry(
                status=STATUS_RENAMED,
                old_path=old_path,
                new_path=new_path,
                old_oid=remaining_deleted[old_path][0],
                new_oid=remaining_added[new_path][0],
                similarity=round(ratio, 4),
            )
        )
        del remaining_deleted[old_path]
        del remaining_added[new_path]

    return renames, remaining_added, remaining_deleted
