"""Merge-base computation and three-way merges.

Branch merges are the operation the paper's MergeCite extends: Git's regular
conflict-resolution rules are applied to ordinary files, while the citation
file is handled separately by the citation layer.  This module provides the
"ordinary files" half:

* :func:`find_merge_base` — the lowest common ancestor of two commits in the
  commit DAG (the *base* of a three-way merge);
* :func:`merge_blobs` — a line-oriented three-way content merge (classic
  diff3) that inserts conflict markers when both sides touched the same
  region;
* :func:`merge_trees` — a path-by-path three-way merge of two trees against a
  base tree, producing a merged file map plus the list of conflicted paths.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Optional

from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import Blob
from repro.vcs.treeops import flatten_files

__all__ = [
    "MergeResult",
    "BlobMergeResult",
    "find_merge_base",
    "commit_ancestors",
    "is_ancestor_commit",
    "merge_blobs",
    "merge_trees",
]

CONFLICT_MARKER_OURS = "<<<<<<< ours"
CONFLICT_MARKER_BASE = "||||||| base"
CONFLICT_MARKER_SEP = "======="
CONFLICT_MARKER_THEIRS = ">>>>>>> theirs"


# ---------------------------------------------------------------------------
# Commit-graph queries
# ---------------------------------------------------------------------------


def commit_ancestors(store: ObjectStore, commit_oid: str, include_self: bool = True) -> dict[str, int]:
    """Return every ancestor of ``commit_oid`` mapped to its minimum DAG depth."""
    depths: dict[str, int] = {}
    frontier: list[tuple[str, int]] = [(commit_oid, 0)]
    while frontier:
        oid, depth = frontier.pop()
        known = depths.get(oid)
        if known is not None and known <= depth:
            continue
        depths[oid] = depth
        commit = store.get_commit(oid)
        for parent in commit.parent_oids:
            frontier.append((parent, depth + 1))
    if not include_self:
        depths.pop(commit_oid, None)
    return depths


def is_ancestor_commit(store: ObjectStore, ancestor_oid: str, descendant_oid: str) -> bool:
    """Return whether ``ancestor_oid`` is reachable from ``descendant_oid``."""
    return ancestor_oid in commit_ancestors(store, descendant_oid)


def find_merge_base(store: ObjectStore, oid_a: str, oid_b: str) -> Optional[str]:
    """Return the best common ancestor of two commits (``None`` if unrelated).

    Among all common ancestors the one with the smallest combined distance to
    the two tips is selected, which matches the intuitive "most recent common
    ancestor" for the branch shapes exercised by the citation workloads.
    """
    ancestors_a = commit_ancestors(store, oid_a)
    ancestors_b = commit_ancestors(store, oid_b)
    common = set(ancestors_a) & set(ancestors_b)
    if not common:
        return None
    return min(common, key=lambda oid: (ancestors_a[oid] + ancestors_b[oid], ancestors_a[oid], oid))


# ---------------------------------------------------------------------------
# Blob-level three-way merge (classic diff3)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BlobMergeResult:
    """Outcome of merging one file's content."""

    data: bytes
    has_conflict: bool


def _match_map(base: list[str], side: list[str]) -> dict[int, int]:
    """Map base line indices to matching side line indices (LCS alignment)."""
    matcher = difflib.SequenceMatcher(a=base, b=side, autojunk=False)
    mapping: dict[int, int] = {}
    for block in matcher.get_matching_blocks():
        for offset in range(block.size):
            mapping[block.a + offset] = block.b + offset
    return mapping


def _merge_lines(
    base: list[str], ours: list[str], theirs: list[str]
) -> tuple[list[str], bool]:
    """Classic diff3 over line lists.

    The three sequences are walked in parallel.  Runs where both sides agree
    with the base are copied through; between such runs the three chunks are
    compared — if only one side changed, its chunk wins; if both changed
    identically, the change is taken once; otherwise a conflict block with
    Git-style markers is emitted.
    """
    match_ours = _match_map(base, ours)
    match_theirs = _match_map(base, theirs)

    merged: list[str] = []
    conflict = False
    lb = lo = lt = 0
    len_b, len_o, len_t = len(base), len(ours), len(theirs)

    while lb < len_b or lo < len_o or lt < len_t:
        # 1. Copy the maximal stable run (base, ours and theirs all aligned).
        run = 0
        while (
            lb + run < len_b
            and match_ours.get(lb + run) == lo + run
            and match_theirs.get(lb + run) == lt + run
        ):
            run += 1
        if run:
            merged.extend(base[lb : lb + run])
            lb += run
            lo += run
            lt += run
            continue

        # 2. Find the next base line that is matched in both sides at or after
        #    the current side cursors; everything before it is one unstable chunk.
        j = lb
        while j < len_b and not (
            j in match_ours
            and j in match_theirs
            and match_ours[j] >= lo
            and match_theirs[j] >= lt
        ):
            j += 1
        if j < len_b:
            ours_end, theirs_end = match_ours[j], match_theirs[j]
        else:
            ours_end, theirs_end = len_o, len_t

        base_chunk = base[lb:j]
        ours_chunk = ours[lo:ours_end]
        theirs_chunk = theirs[lt:theirs_end]

        if ours_chunk == theirs_chunk:
            merged.extend(ours_chunk)
        elif ours_chunk == base_chunk:
            merged.extend(theirs_chunk)
        elif theirs_chunk == base_chunk:
            merged.extend(ours_chunk)
        else:
            conflict = True
            merged.append(CONFLICT_MARKER_OURS)
            merged.extend(ours_chunk)
            merged.append(CONFLICT_MARKER_BASE)
            merged.extend(base_chunk)
            merged.append(CONFLICT_MARKER_SEP)
            merged.extend(theirs_chunk)
            merged.append(CONFLICT_MARKER_THEIRS)

        lb, lo, lt = j, ours_end, theirs_end

    return merged, conflict


def merge_blobs(
    store: ObjectStore,
    base_oid: Optional[str],
    ours_oid: Optional[str],
    theirs_oid: Optional[str],
) -> BlobMergeResult:
    """Three-way merge of one file's content.

    Trivial cases (one side unchanged, both sides identical) are resolved
    without touching content; otherwise a line-based diff3 merge runs and may
    produce conflict markers.
    """
    if ours_oid == theirs_oid:
        oid = ours_oid if ours_oid is not None else base_oid
        data = store.get_blob(oid).data if oid else b""
        return BlobMergeResult(data=data, has_conflict=False)
    if base_oid == ours_oid and theirs_oid is not None:
        return BlobMergeResult(data=store.get_blob(theirs_oid).data, has_conflict=False)
    if base_oid == theirs_oid and ours_oid is not None:
        return BlobMergeResult(data=store.get_blob(ours_oid).data, has_conflict=False)

    base_blob = store.get_blob(base_oid) if base_oid else Blob(b"")
    ours_blob = store.get_blob(ours_oid) if ours_oid else Blob(b"")
    theirs_blob = store.get_blob(theirs_oid) if theirs_oid else Blob(b"")

    if base_blob.is_binary or ours_blob.is_binary or theirs_blob.is_binary:
        # Binary content cannot be merged line-by-line; keep ours and flag it.
        return BlobMergeResult(data=ours_blob.data, has_conflict=True)

    merged_lines, conflict = _merge_lines(
        base_blob.text().splitlines(),
        ours_blob.text().splitlines(),
        theirs_blob.text().splitlines(),
    )
    text = "\n".join(merged_lines)
    if merged_lines:
        text += "\n"
    return BlobMergeResult(data=text.encode("utf-8"), has_conflict=conflict)


# ---------------------------------------------------------------------------
# Tree-level three-way merge
# ---------------------------------------------------------------------------


@dataclass
class MergeResult:
    """Outcome of a tree-level three-way merge."""

    files: dict[str, bytes] = field(default_factory=dict)
    conflicts: list[str] = field(default_factory=list)
    deleted_paths: list[str] = field(default_factory=list)
    #: Paths whose merged bytes were taken verbatim from an existing blob,
    #: mapped to that blob's oid.  Lets callers prime worktree fingerprints
    #: (no re-hash/re-store of unchanged content) after installing the merge.
    taken_oids: dict[str, str] = field(default_factory=dict)

    @property
    def has_conflicts(self) -> bool:
        return bool(self.conflicts)


def merge_trees(
    store: ObjectStore,
    base_tree_oid: Optional[str],
    ours_tree_oid: str,
    theirs_tree_oid: str,
) -> MergeResult:
    """Merge two trees against their common base.

    The result maps every path present in the merged version to its merged
    content; paths that existed in the base but are absent from the merge are
    reported in ``deleted_paths``.  Same-path edits that cannot be reconciled
    appear in ``conflicts`` (content conflicts carry conflict markers,
    delete/modify conflicts keep the surviving side's content).
    """
    base_files = flatten_files(store, base_tree_oid) if base_tree_oid else {}
    ours_files = flatten_files(store, ours_tree_oid)
    theirs_files = flatten_files(store, theirs_tree_oid)

    result = MergeResult()
    all_paths = sorted(set(base_files) | set(ours_files) | set(theirs_files))
    #: Paths resolved verbatim to an existing blob; their bytes are fetched
    #: in one batched read at the end instead of one ``get_blob`` per path.
    taken: dict[str, str] = {}

    for path in all_paths:
        base_oid = base_files.get(path, (None, None))[0]
        ours_oid = ours_files.get(path, (None, None))[0]
        theirs_oid = theirs_files.get(path, (None, None))[0]

        in_base = path in base_files
        in_ours = path in ours_files
        in_theirs = path in theirs_files

        if not in_ours and not in_theirs:
            if in_base:
                result.deleted_paths.append(path)
            continue

        if in_ours and not in_theirs:
            if not in_base:
                taken[path] = ours_oid
            elif base_oid == ours_oid:
                result.deleted_paths.append(path)  # theirs deleted, ours untouched
            else:
                taken[path] = ours_oid  # modify/delete conflict
                result.conflicts.append(path)
            continue

        if in_theirs and not in_ours:
            if not in_base:
                taken[path] = theirs_oid
            elif base_oid == theirs_oid:
                result.deleted_paths.append(path)  # ours deleted, theirs untouched
            else:
                taken[path] = theirs_oid  # delete/modify conflict
                result.conflicts.append(path)
            continue

        # Present on both sides: the trivial resolutions pick a whole blob.
        if ours_oid == theirs_oid:
            taken[path] = ours_oid
            continue
        if in_base and base_oid == ours_oid:
            taken[path] = theirs_oid  # only theirs changed
            continue
        if in_base and base_oid == theirs_oid:
            taken[path] = ours_oid  # only ours changed
            continue
        if not in_base:
            blob_result = merge_blobs(store, None, ours_oid, theirs_oid)
            result.files[path] = blob_result.data
            result.conflicts.append(path)
            continue

        blob_result = merge_blobs(store, base_oid, ours_oid, theirs_oid)
        result.files[path] = blob_result.data
        if blob_result.has_conflict:
            result.conflicts.append(path)

    if taken:
        blobs = store.get_blobs(taken.values())
        for path, oid in taken.items():
            result.files[path] = blobs[oid].data
    result.taken_oids = taken
    result.conflicts.sort()
    result.deleted_paths.sort()
    return result
