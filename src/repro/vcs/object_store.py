"""A content-addressable object store.

Objects (blobs, trees, commits, tags) are stored by their id, which is a
deterministic function of their content.  Storing the same object twice is a
no-op, and two repositories that contain the same files share object ids —
which is what makes clone/fork/push cheap (only missing objects move) and
what lets the Software Heritage identifier simulator compute intrinsic ids.

Since PR 2 the store is a thin facade over a pluggable
:class:`~repro.vcs.storage.ObjectBackend` (in-memory dict, sharded loose
files, or delta-compressed pack files — see :mod:`repro.vcs.storage`), with a
small LRU cache of deserialised objects in front of the backend so hot reads
skip both I/O and parsing.  The public API is unchanged from the in-memory
era; callers pick a layout at construction time and nothing else.
"""

from __future__ import annotations

import threading
import weakref
from bisect import bisect_left
from collections import OrderedDict
from typing import Iterable, Iterator

from repro.errors import InvalidObjectError, ObjectNotFoundError
from repro.vcs.objects import Blob, Commit, Tag, Tree, VCSObject, deserialize_object
from repro.vcs.storage import BackendSpec, MemoryBackend, ObjectBackend, make_backend

__all__ = ["ObjectStore", "StoreLease", "DEFAULT_CACHE_SIZE"]

#: Deserialised objects kept hot in front of the backend.
DEFAULT_CACHE_SIZE = 512


class StoreLease:
    """A revocable pin on a set of object ids.

    While a lease is live, :meth:`ObjectStore.gc` treats its oids as
    reachable no matter what ``keep`` set the caller computed — the registry
    exists for borrowers the reachability walk cannot see, such as a lazy
    worktree adopted by *another* repository that still faults bytes from
    this store.  The store only holds a weak reference, so a lease (and its
    pin) vanishes with its holder even if :meth:`release` is never called.
    """

    __slots__ = ("oids", "_registry", "__weakref__")

    def __init__(self, registry, oids: Iterable[str]) -> None:
        self.oids: set[str] = set(oids)
        self._registry = registry
        registry.add(self)

    @property
    def released(self) -> bool:
        return self._registry is None

    def release(self) -> None:
        """Drop the pin; idempotent."""
        if self._registry is not None:
            self._registry.discard(self)
            self._registry = None
        self.oids.clear()


class ObjectStore:
    """A typed object map over a pluggable storage backend.

    A lazily maintained sorted list of ids serves as a prefix index:
    :meth:`resolve_prefix` does a bisect range probe instead of scanning
    every stored id.  The list records the backend's mutation counter when
    built and is rebuilt whenever the counter has moved — so writes that
    reach the backend without going through :meth:`put` (raw transfers,
    migrations) invalidate it too, not just facade-level writes.

    Thread-safety contract: the facade's mutable bookkeeping — the LRU
    parse cache, the sorted prefix index and the lease registry — is
    guarded by one internal lock, held only for dict/list operations
    (never across backend I/O).  Object payload reads and writes delegate
    to the backend, whose own write lock serialises mutations while
    leaving reads lock-free (see :mod:`repro.vcs.storage.base`), so N
    server threads can read through one store while a push lands.
    """

    def __init__(self, backend: BackendSpec = None, cache_size: int = DEFAULT_CACHE_SIZE) -> None:
        self._backend = make_backend(backend)
        self._cache: OrderedDict[str, VCSObject] = OrderedDict()
        self._cache_size = cache_size
        #: Guards the cache, the sorted prefix index and the lease set.
        #: Never held across backend I/O, so it cannot serialise reads.
        self._lock = threading.RLock()
        self._sorted_oids: list[str] = []
        self._indexed_mutation = -1
        #: Live pins on oids borrowed by parties outside any reachability
        #: walk (see :class:`StoreLease`); weak so dropped holders unpin.
        self._leases: "weakref.WeakSet[StoreLease]" = weakref.WeakSet()
        #: Number of sorted-list probes the last ``resolve_prefix`` made
        #: (deterministic instrumentation for the perf smoke tests).
        self.last_resolve_scan_steps = 0

    @property
    def backend(self) -> ObjectBackend:
        """The storage backend this store reads and writes through."""
        return self._backend

    def _cache_insert(self, oid: str, obj: VCSObject) -> None:
        if self._cache_size <= 0:
            return
        with self._lock:
            self._cache[oid] = obj
            self._cache.move_to_end(oid)
            while len(self._cache) > self._cache_size:
                self._cache.popitem(last=False)

    def _cache_probe(self, oid: str) -> VCSObject | None:
        """LRU-touching cache lookup (the ``OrderedDict`` reorder needs the lock)."""
        with self._lock:
            cached = self._cache.get(oid)
            if cached is not None:
                self._cache.move_to_end(oid)
            return cached

    # -- writing -----------------------------------------------------------

    def put(self, obj: VCSObject) -> str:
        """Store ``obj`` and return its id (idempotent)."""
        oid = obj.oid
        if oid in self._cache:
            return oid  # cached ⇒ already stored; skip the backend probe
        if self._backend.write(oid, obj.type_name, obj.serialize()):
            self._cache_insert(oid, obj)
        return oid

    def put_many(self, objects: Iterable[VCSObject]) -> list[str]:
        """Store several objects, returning their ids in order."""
        return [self.put(obj) for obj in objects]

    def put_raw_many(self, records: Iterable[tuple[str, str, bytes]]) -> int:
        """Write raw ``(oid, type, payload)`` records in one backend batch.

        The bundle-apply path: payloads were already hash-verified against
        their ids by the caller, so no object is constructed or parsed here.
        Records whose oid is already stored are skipped; returns how many
        were newly added.
        """
        return self._backend.write_many(records)

    # -- reading -----------------------------------------------------------

    def get(self, oid: str) -> VCSObject:
        """Return the object with id ``oid``.

        Raises
        ------
        ObjectNotFoundError
            If no object with that id is stored.
        """
        cached = self._cache_probe(oid)
        if cached is not None:
            return cached
        try:
            object_type, payload = self._backend.read(oid)
        except KeyError:
            raise ObjectNotFoundError(oid) from None
        obj = deserialize_object(object_type, payload)
        self._cache_insert(oid, obj)
        return obj

    def get_type(self, oid: str) -> str:
        """Return the type name of a stored object without deserialising it."""
        cached = self._cache.get(oid)
        if cached is not None:
            return cached.type_name
        try:
            return self._backend.read_type(oid)
        except KeyError:
            raise ObjectNotFoundError(oid) from None

    def get_raw(self, oid: str) -> tuple[str, bytes]:
        """Return ``(type name, serialised payload)`` without deserialising.

        The transfer layer moves objects as raw bytes; a cache hit serves
        the payload by re-serialising the cached object (deterministic by
        construction), a miss reads the backend record directly.
        """
        cached = self._cache_probe(oid)
        if cached is not None:
            return cached.type_name, cached.serialize()
        try:
            return self._backend.read(oid)
        except KeyError:
            raise ObjectNotFoundError(oid) from None

    def get_blob(self, oid: str) -> Blob:
        return self._typed(oid, Blob)

    def get_blobs(self, oids: Iterable[str]) -> dict[str, Blob]:
        """Return ``{oid: Blob}`` for every requested oid in one batched read.

        Cache hits are served directly; the misses go through the backend's
        :meth:`~repro.vcs.storage.ObjectBackend.read_many`, which pack-style
        layouts serve grouped per pack in offset order — the lazy worktree's
        whole-tree materialisation path.
        """
        result: dict[str, Blob] = {}
        requested: set[str] = set()
        missing: list[str] = []
        for oid in oids:
            # Deduplicate up front: identical-content files share an oid and
            # must cost one backend read, not one per occurrence.
            if oid in requested:
                continue
            requested.add(oid)
            cached = self._cache_probe(oid)
            if cached is not None:
                if not isinstance(cached, Blob):
                    raise InvalidObjectError(
                        f"object {oid} has type {cached.type_name}, expected blob"
                    )
                result[oid] = cached
            else:
                missing.append(oid)
        if missing:
            try:
                for oid, object_type, payload in self._backend.read_many(missing):
                    obj = deserialize_object(object_type, payload)
                    if not isinstance(obj, Blob):
                        raise InvalidObjectError(
                            f"object {oid} has type {obj.type_name}, expected blob"
                        )
                    self._cache_insert(oid, obj)
                    result[oid] = obj
            except KeyError as exc:
                raise ObjectNotFoundError(exc.args[0]) from None
        return result

    def blob_size(self, oid: str) -> int:
        """Byte length of a stored blob without necessarily reading it.

        Cached objects answer from memory; otherwise the backend's size
        probe runs (header-only for loose files, record-level for packs).
        """
        cached = self._cache.get(oid)
        if isinstance(cached, Blob):
            return len(cached.data)
        try:
            return self._backend.read_size(oid)
        except KeyError:
            raise ObjectNotFoundError(oid) from None

    def get_tree(self, oid: str) -> Tree:
        return self._typed(oid, Tree)

    def get_commit(self, oid: str) -> Commit:
        return self._typed(oid, Commit)

    def get_tag(self, oid: str) -> Tag:
        return self._typed(oid, Tag)

    def _typed(self, oid: str, cls: type) -> VCSObject:
        obj = self.get(oid)
        if not isinstance(obj, cls):
            raise InvalidObjectError(
                f"object {oid} has type {obj.type_name}, expected {cls.type_name}"
            )
        return obj

    # -- queries -----------------------------------------------------------

    def __contains__(self, oid: str) -> bool:
        return oid in self._cache or oid in self._backend

    def __len__(self) -> int:
        return len(self._backend)

    def __iter__(self) -> Iterator[str]:
        return self.iter_oids()

    def iter_oids(self) -> Iterator[str]:
        """Iterate over every stored object id."""
        return iter(self._backend.iter_oids())

    def object_ids(self) -> list[str]:
        """Return all stored object ids (unordered semantics, sorted output)."""
        return sorted(self._backend.iter_oids())

    def resolve_prefix(self, prefix: str) -> str:
        """Expand an abbreviated object id to the unique full id.

        Raises
        ------
        ObjectNotFoundError
            If no stored id starts with ``prefix``.
        InvalidObjectError
            If the prefix is ambiguous.
        """
        if len(prefix) < 4:
            raise InvalidObjectError("object id prefixes must have at least 4 characters")
        oids = self._sorted_oid_list()
        position = bisect_left(oids, prefix)
        count = 0
        while position + count < len(oids) and oids[position + count].startswith(prefix):
            count += 1
        self.last_resolve_scan_steps = count + 1
        if count == 0:
            raise ObjectNotFoundError(prefix)
        if count > 1:
            raise InvalidObjectError(f"ambiguous object id prefix {prefix!r} ({count} matches)")
        return oids[position]

    def _sorted_oid_list(self) -> list[str]:
        with self._lock:
            if self._indexed_mutation != self._backend.mutation_counter:
                # Record the counter *before* iterating so a write landing
                # mid-rebuild forces another rebuild instead of being lost.
                counter = self._backend.mutation_counter
                self._sorted_oids = sorted(self._backend.iter_oids())
                self._indexed_mutation = counter
            return self._sorted_oids

    def total_size(self) -> int:
        """Return the total number of payload bytes stored (for benchmarks)."""
        return self._backend.total_payload_size()

    # -- persistence -------------------------------------------------------

    def flush(self) -> None:
        """Make buffered backend writes durable (no-op for most backends)."""
        self._backend.flush()

    def close(self) -> None:
        """Flush and release backend resources; the store stays usable."""
        self._backend.close()

    def migrate_backend(self, new_backend: ObjectBackend) -> int:
        """Copy every object into ``new_backend`` and adopt it; returns the count.

        The store keeps its identity (callers holding references see the new
        layout transparently); the old backend is left untouched so the
        caller can delete or archive it.
        """
        moved = 0
        for oid in self._backend.iter_oids():
            if oid in new_backend:
                continue
            object_type, payload = self._backend.read(oid)
            new_backend.write(oid, object_type, payload)
            moved += 1
        new_backend.flush()
        with self._lock:
            self._backend = new_backend
            self._cache.clear()
            self._indexed_mutation = -1
        return moved

    def pin(self, oids: Iterable[str]) -> StoreLease:
        """Pin ``oids`` against garbage collection; returns the lease.

        Callers hold the lease for as long as they may still read the oids
        (lazy worktrees borrowing from this store do exactly that) and
        :meth:`StoreLease.release` it — or simply drop it — when done.
        """
        return StoreLease(self._leases, oids)

    def pinned_oids(self) -> set[str]:
        """The union of every live lease's oids (what gc must not drop)."""
        pinned: set[str] = set()
        with self._lock:
            leases = list(self._leases)
        for lease in leases:
            pinned |= lease.oids
        return pinned

    def gc(self, keep: set[str]) -> int:
        """Drop every object not in ``keep``; returns how many were removed.

        Leased oids (:meth:`pin`) are kept regardless of ``keep`` — the
        reachability walk that computed ``keep`` cannot see borrowers such
        as lazy worktrees adopted by other repositories, and dropping their
        backing blobs would corrupt reads they are entitled to make.
        """
        keep = set(keep) | self.pinned_oids()
        removed = self._backend.gc(keep)
        if removed:
            with self._lock:
                self._cache = OrderedDict(
                    (oid, obj) for oid, obj in self._cache.items() if oid in keep
                )
        return removed

    # -- transfer ----------------------------------------------------------

    def missing_from(self, other: "ObjectStore") -> list[str]:
        """Return ids present here but absent from ``other`` (push planning)."""
        return sorted(oid for oid in self._backend.iter_oids() if oid not in other._backend)

    def copy_objects_to(self, other: "ObjectStore", oids: Iterable[str] | None = None) -> int:
        """Copy raw objects into ``other``; returns the number copied.

        When ``oids`` is ``None`` every object is considered; objects already
        present in ``other`` are skipped.  Missing source ids are detected
        *before* anything is written, so a failed transfer never leaves
        ``other`` partially updated.  Source and destination may use
        different backend layouts — payloads move as raw bytes either way.
        """
        if oids is None:
            candidates: list[str] = list(self._backend.iter_oids())
        else:
            candidates = list(oids)
            for oid in candidates:
                # Ids the destination already holds need not exist here.
                if oid not in self._backend and oid not in other._backend:
                    raise ObjectNotFoundError(oid)
        copied = 0
        for oid in candidates:
            if oid in other._backend:
                continue
            object_type, payload = self._backend.read(oid)
            other._backend.write(oid, object_type, payload)
            copied += 1
        return copied

    def clone(self) -> "ObjectStore":
        """Return an independent in-memory copy of this store."""
        duplicate = ObjectStore(MemoryBackend())
        self.copy_objects_to(duplicate)
        return duplicate
