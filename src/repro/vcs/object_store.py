"""A content-addressable object store.

Objects (blobs, trees, commits, tags) are stored by their id, which is a
deterministic function of their content.  Storing the same object twice is a
no-op, and two repositories that contain the same files share object ids —
which is what makes clone/fork/push cheap (only missing objects move) and
what lets the Software Heritage identifier simulator compute intrinsic ids.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterable, Iterator

from repro.errors import InvalidObjectError, ObjectNotFoundError
from repro.vcs.objects import Blob, Commit, Tag, Tree, VCSObject, deserialize_object

__all__ = ["ObjectStore"]


class ObjectStore:
    """An in-memory map from object id to (type, payload).

    A lazily maintained sorted list of ids serves as a prefix index:
    :meth:`resolve_prefix` does a bisect range probe instead of scanning
    every stored id.  The list is rebuilt on demand after writes (writes are
    frequent, abbreviated-id resolution is rare), so ``put`` stays O(1).
    """

    def __init__(self) -> None:
        self._objects: dict[str, tuple[str, bytes]] = {}
        self._sorted_oids: list[str] = []
        self._index_stale = False
        #: Number of sorted-list probes the last ``resolve_prefix`` made
        #: (deterministic instrumentation for the perf smoke tests).
        self.last_resolve_scan_steps = 0

    # -- writing -----------------------------------------------------------

    def put(self, obj: VCSObject) -> str:
        """Store ``obj`` and return its id (idempotent)."""
        oid = obj.oid
        if oid not in self._objects:
            self._objects[oid] = (obj.type_name, obj.serialize())
            self._index_stale = True
        return oid

    def put_many(self, objects: Iterable[VCSObject]) -> list[str]:
        """Store several objects, returning their ids in order."""
        return [self.put(obj) for obj in objects]

    # -- reading -----------------------------------------------------------

    def get(self, oid: str) -> VCSObject:
        """Return the object with id ``oid``.

        Raises
        ------
        ObjectNotFoundError
            If no object with that id is stored.
        """
        try:
            object_type, payload = self._objects[oid]
        except KeyError:
            raise ObjectNotFoundError(oid) from None
        return deserialize_object(object_type, payload)

    def get_type(self, oid: str) -> str:
        """Return the type name of a stored object without deserialising it."""
        try:
            return self._objects[oid][0]
        except KeyError:
            raise ObjectNotFoundError(oid) from None

    def get_blob(self, oid: str) -> Blob:
        return self._typed(oid, Blob)

    def get_tree(self, oid: str) -> Tree:
        return self._typed(oid, Tree)

    def get_commit(self, oid: str) -> Commit:
        return self._typed(oid, Commit)

    def get_tag(self, oid: str) -> Tag:
        return self._typed(oid, Tag)

    def _typed(self, oid: str, cls: type) -> VCSObject:
        obj = self.get(oid)
        if not isinstance(obj, cls):
            raise InvalidObjectError(
                f"object {oid} has type {obj.type_name}, expected {cls.type_name}"
            )
        return obj

    # -- queries -----------------------------------------------------------

    def __contains__(self, oid: str) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def __iter__(self) -> Iterator[str]:
        return iter(self._objects)

    def object_ids(self) -> list[str]:
        """Return all stored object ids (unordered semantics, sorted output)."""
        return sorted(self._objects)

    def resolve_prefix(self, prefix: str) -> str:
        """Expand an abbreviated object id to the unique full id.

        Raises
        ------
        ObjectNotFoundError
            If no stored id starts with ``prefix``.
        InvalidObjectError
            If the prefix is ambiguous.
        """
        if len(prefix) < 4:
            raise InvalidObjectError("object id prefixes must have at least 4 characters")
        oids = self._sorted_oid_list()
        position = bisect_left(oids, prefix)
        count = 0
        while position + count < len(oids) and oids[position + count].startswith(prefix):
            count += 1
        self.last_resolve_scan_steps = count + 1
        if count == 0:
            raise ObjectNotFoundError(prefix)
        if count > 1:
            raise InvalidObjectError(f"ambiguous object id prefix {prefix!r} ({count} matches)")
        return oids[position]

    def _sorted_oid_list(self) -> list[str]:
        if self._index_stale or len(self._sorted_oids) != len(self._objects):
            self._sorted_oids = sorted(self._objects)
            self._index_stale = False
        return self._sorted_oids

    def total_size(self) -> int:
        """Return the total number of payload bytes stored (for benchmarks)."""
        return sum(len(payload) for _, payload in self._objects.values())

    # -- transfer ----------------------------------------------------------

    def missing_from(self, other: "ObjectStore") -> list[str]:
        """Return ids present here but absent from ``other`` (push planning)."""
        return sorted(oid for oid in self._objects if oid not in other)

    def copy_objects_to(self, other: "ObjectStore", oids: Iterable[str] | None = None) -> int:
        """Copy raw objects into ``other``; returns the number copied.

        When ``oids`` is ``None`` every object is considered; objects already
        present in ``other`` are skipped.  Missing source ids are detected
        *before* anything is written, so a failed transfer never leaves
        ``other`` partially updated.
        """
        if oids is None:
            candidates: list[str] = list(self._objects.keys())
        else:
            candidates = list(oids)
            for oid in candidates:
                # Ids the destination already holds need not exist here.
                if oid not in self._objects and oid not in other._objects:
                    raise ObjectNotFoundError(oid)
        copied = 0
        for oid in candidates:
            if oid in other._objects:
                continue
            other._objects[oid] = self._objects[oid]
            copied += 1
        if copied:
            other._index_stale = True
        return copied

    def clone(self) -> "ObjectStore":
        """Return an independent copy of this store."""
        duplicate = ObjectStore()
        duplicate._objects = dict(self._objects)
        duplicate._index_stale = True
        return duplicate
