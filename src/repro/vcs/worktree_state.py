"""The indexed working tree: a mapping with a path index and blob fingerprints.

:class:`WorktreeState` replaces the raw ``{path: bytes}`` dict that
:class:`~repro.vcs.repository.Repository` used to hold its working tree.  It
is mapping-compatible (``repo.worktree[path]``, iteration, equality against
plain dicts all behave identically), but maintains three auxiliary indexes
that turn the repository's per-operation worktree scans into bounded probes:

* a **sorted path index**, so "does this path have descendants?" and "which
  files live under this directory?" are bisect range probes
  (:func:`repro.utils.sortedkeys.descendant_slice`) instead of O(n) scans;
* a **directory index** mapping every implicit directory to the number of
  files beneath it, so ``directory_exists`` is an O(1) dict probe and
  ``list_directories`` enumerates directories without re-deriving them from
  every file path;
* a per-path **content-fingerprint cache**: the blob oid of each file's
  current bytes, computed lazily and invalidated by mutation, with a
  ``stored`` flag recording that the blob is known to live in the owning
  repository's object store.  ``Repository.add``/``status`` hash only paths
  whose fingerprint is missing — a commit that touched one file hashes one
  blob, making commits O(changed) end to end.

Since PR 4 entries can additionally be **lazy**: a checkout installs
``(path → blob oid)`` mappings backed by the repository's object store
(:meth:`load_committed_lazy`), and the bytes are only read on the first
``__getitem__``/``get`` access.  ``fingerprint()``/``is_stored()`` answer
straight from the primed oid, so staging, committing, status and tree builds
never touch unread blobs — checkout is O(changed) in blob reads and a large
tree no longer has to be resident in memory just because it was checked out.
Mutating a path severs its laziness (the oid no longer describes the bytes),
moves carry it (the bytes did not change), and the *backing-store contract*
is: unmaterialised entries keep a reference to the :class:`ObjectStore` that
primed them, which must stay readable for as long as they exist.  The store
facade keeps its identity across ``migrate_backend``, so layout migrations
are transparent; adoption by a *different* repository keeps the previous
owner's store as the byte source (content-addressing makes the bytes
identical) while :meth:`forget_stored` ensures the adopter re-stores every
blob it commits.

Every index is maintained incrementally by the mutation methods; a wholesale
replacement (:meth:`replace`, checkout) rebuilds them in one sorted pass.
Keys are canonical repository paths — the :class:`Repository` facade
normalises before touching the mapping, exactly as it did for the plain dict.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, MutableMapping

from repro.utils.hashing import object_id
from repro.utils.paths import ROOT, ancestors
from repro.utils.sortedkeys import descendant_slice, sorted_insert, sorted_remove

__all__ = ["WorktreeState"]


class WorktreeState(MutableMapping):
    """A ``{canonical path: bytes}`` mapping with sorted-path and blob-oid indexes."""

    def __init__(self, initial: Mapping[str, bytes] | None = None) -> None:
        self._files: dict[str, bytes] = {}
        #: Lazy entries: path → blob oid whose bytes have not been read yet.
        #: Disjoint from ``_files``; every lazy path has a primed fingerprint.
        self._lazy: dict[str, str] = {}
        #: The object store lazy entries fault their bytes from.
        self._source = None
        #: A gc pin on the source store covering the lazy oids (see below).
        self._lease = None
        self._sorted_paths: list[str] = []
        #: Implicit directory path → number of files anywhere beneath it.
        self._dir_counts: dict[str, int] = {}
        self._sorted_dirs: list[str] = []
        #: path → blob oid of the current bytes (dropped on every mutation).
        self._fingerprints: dict[str, str] = {}
        #: Paths whose fingerprinted blob is known present in the repo store.
        self._stored: set[str] = set()
        #: Total lazy fingerprint computations (deterministic perf probe).
        self.hash_count = 0
        #: Total lazy-entry byte materialisations (deterministic perf probe).
        self.materialize_count = 0
        #: Index probes made by the last :meth:`check_can_create` call
        #: (deterministic perf probe: bounded by path depth, never by size).
        self.last_check_probes = 0
        if initial:
            self.replace(initial)

    # -- mapping protocol --------------------------------------------------

    def __getitem__(self, path: str) -> bytes:
        try:
            return self._files[path]
        except KeyError:
            if path in self._lazy:
                return self._materialize(path)
            raise

    def __setitem__(self, path: str, data: bytes) -> None:
        if path in self._lazy:
            # Mutation severs laziness: the primed oid no longer describes
            # these bytes (the path stays indexed — only the value changes).
            del self._lazy[path]
            self._fingerprints.pop(path, None)
            self._maybe_release_lease()
        elif path not in self._files:
            sorted_insert(self._sorted_paths, path)
            self._index_directories(path, +1)
        else:
            self._fingerprints.pop(path, None)
        self._stored.discard(path)
        self._files[path] = data

    def __delitem__(self, path: str) -> None:
        if path in self._lazy:
            del self._lazy[path]
            self._maybe_release_lease()
        else:
            del self._files[path]
        sorted_remove(self._sorted_paths, path)
        self._index_directories(path, -1)
        self._fingerprints.pop(path, None)
        self._stored.discard(path)

    def __iter__(self) -> Iterator[str]:
        # Deterministic sorted order (a superset of the plain dict contract,
        # which promised no particular order).
        return iter(self._sorted_paths)

    def __len__(self) -> int:
        return len(self._files) + len(self._lazy)

    def __contains__(self, path: object) -> bool:
        return path in self._files or path in self._lazy

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorktreeState({len(self)} files, {len(self._lazy)} lazy)"

    def get(self, path: str, default=None):
        if path in self._files or path in self._lazy:
            return self[path]
        return default

    def items(self):
        """Sorted ``(path, bytes)`` pairs; lazy entries are batch-materialised."""
        self.materialize_all()
        return [(path, self._files[path]) for path in self._sorted_paths]

    def values(self):
        """File bytes in sorted path order; lazy entries are batch-materialised."""
        self.materialize_all()
        return [self._files[path] for path in self._sorted_paths]

    def clear(self) -> None:
        self._files.clear()
        self._lazy.clear()
        self._release_lease()
        self._source = None
        self._sorted_paths.clear()
        self._dir_counts.clear()
        self._sorted_dirs.clear()
        self._fingerprints.clear()
        self._stored.clear()

    def replace(self, mapping: Mapping[str, bytes]) -> None:
        """Replace the whole content in one pass (merge / import / tests)."""
        self.clear()
        self._files = dict(mapping)
        self._sorted_paths = sorted(self._files)
        self._rebuild_directory_index()

    def bulk_update(self, mapping: Mapping[str, bytes]) -> None:
        """Add/overwrite many entries at once (one re-sort, not n inserts)."""
        if not mapping:
            return
        if len(mapping) <= 8:
            for path, data in mapping.items():
                self[path] = data
            return
        for path in mapping:
            if path in self._lazy:
                del self._lazy[path]
                self._fingerprints.pop(path, None)
            elif path in self._files:
                self._fingerprints.pop(path, None)
            else:
                self._index_directories(path, +1)
            self._stored.discard(path)
        self._files.update(mapping)
        self._sorted_paths = sorted(self._all_paths())
        self._maybe_release_lease()

    def _all_paths(self) -> list[str]:
        return [*self._files, *self._lazy]

    # -- lazy entries ------------------------------------------------------

    @property
    def source(self):
        """The object store unmaterialised entries read their bytes from."""
        return self._source

    @property
    def lease(self):
        """The live gc pin on the backing store, or ``None``.

        A worktree with unmaterialised entries holds a
        :class:`~repro.vcs.object_store.StoreLease` on its source store so
        ``gc`` cannot drop blobs it may still fault — the sharp edge being a
        worktree adopted by *another* repository, whose oids no reachability
        walk over the donor's refs can see.  The lease is released as soon as
        no lazy entry remains (full materialisation, clear/replace), and the
        store's weak registry drops it automatically if the worktree itself
        is discarded.
        """
        return self._lease

    def release_lease(self) -> None:
        """Drop this worktree's gc pin on its backing store (idempotent).

        The repository calls this when it replaces a worktree wholesale
        (checkout, merge, adoption): the outgoing state will no longer fault
        on the repository's behalf, and any *adopted* copy of it holds its
        own lease, so the pin can be returned deterministically instead of
        waiting for garbage collection.
        """
        self._release_lease()

    def _acquire_lease(self) -> None:
        self._release_lease()
        if self._lazy and self._source is not None:
            pin = getattr(self._source, "pin", None)
            if pin is not None:
                self._lease = pin(self._lazy.values())

    def _release_lease(self) -> None:
        if self._lease is not None:
            self._lease.release()
            self._lease = None

    def _maybe_release_lease(self) -> None:
        # The lease exists for the sake of unmaterialised entries only; the
        # moment none remain, the store owes this worktree nothing.
        if self._lease is not None and not self._lazy:
            self._release_lease()

    def lazy_count(self) -> int:
        """How many entries have not materialised their bytes yet."""
        return len(self._lazy)

    def _materialize(self, path: str) -> bytes:
        # The entry leaves the lazy set only after the read succeeds: a
        # corrupt/missing blob raises to the caller and the path stays a
        # consistent (retryable) lazy entry instead of vanishing.
        oid = self._lazy[path]
        data = self._source.get_blob(oid).data
        del self._lazy[path]
        self._files[path] = data
        self.materialize_count += 1
        self._maybe_release_lease()
        return data

    def materialize_all(self) -> int:
        """Fault in every lazy entry through one batched store read.

        Returns the number of entries materialised.  Uses the store's
        batched :meth:`~repro.vcs.object_store.ObjectStore.get_blobs`, so a
        pack-backed store serves the whole tree without re-probing its
        indexes or reopening handles per blob.
        """
        if not self._lazy:
            return 0
        blobs = self._source.get_blobs(self._lazy.values())
        for path, oid in self._lazy.items():
            self._files[path] = blobs[oid].data
        count = len(self._lazy)
        self.materialize_count += count
        self._lazy.clear()
        self._release_lease()
        return count

    def detached_copy(self) -> "WorktreeState":
        """An independent copy sharing byte payloads but no bookkeeping.

        Cross-repository adoption goes through this: the adopter's staging
        must not re-mark stored flags on state the donor repository still
        uses (the flags would assert membership in the *adopter's* store and
        let the donor commit trees referencing blobs it never stored).
        """
        clone = WorktreeState()
        clone._files = dict(self._files)
        clone._lazy = dict(self._lazy)
        clone._source = self._source
        clone._sorted_paths = list(self._sorted_paths)
        clone._dir_counts = dict(self._dir_counts)
        clone._sorted_dirs = list(self._sorted_dirs)
        clone._fingerprints = dict(self._fingerprints)
        clone._stored = set(self._stored)
        # The copy holds its *own* pin on the donor store: the adopter may
        # outlive the original worktree (and the original releases its lease
        # independently, e.g. by being replaced on the donor's next
        # checkout), so the borrowed oids must stay gc-safe either way.
        clone._acquire_lease()
        return clone

    def materialize_unstored(self) -> int:
        """Batch-fault every lazy entry whose blob is *not* known stored.

        After cross-repository adoption (``forget_stored``) staging must
        read and re-store every blob; this serves those reads through one
        batched store call instead of one ``get_blob`` fault per path.  On
        an ordinary lazy checkout every lazy entry is known stored, so this
        is a no-op.  Returns the number of entries materialised.
        """
        wanted = {
            path: oid for path, oid in self._lazy.items() if path not in self._stored
        }
        if not wanted:
            return 0
        blobs = self._source.get_blobs(wanted.values())
        for path, oid in wanted.items():
            self._files[path] = blobs[oid].data
            del self._lazy[path]
        self.materialize_count += len(wanted)
        self._maybe_release_lease()
        return len(wanted)

    def materialized_bytes(self, path: str, oid: str) -> bytes | None:
        """The bytes of ``path`` if already materialised *and* fingerprinted
        as ``oid`` — content addressing makes the match proof of identity.
        Used to carry bytes across checkouts without re-reading blobs."""
        data = self._files.get(path)
        if data is not None and self._fingerprints.get(path) == oid:
            return data
        return None

    def size_of(self, path: str) -> int:
        """Byte length of ``path``'s content without materialising it.

        Materialised entries answer from their bytes; lazy entries probe the
        backing store's size API (header-only for on-disk layouts).
        """
        data = self._files.get(path)
        if data is not None:
            return len(data)
        return self._source.blob_size(self._lazy[path])

    def load_committed_lazy(
        self,
        entries: Iterable[tuple[str, str]],
        source,
        carry_from: "WorktreeState | None" = None,
    ) -> None:
        """Replace the content with ``(path, blob oid)`` pairs served lazily
        by ``source`` — no blob is read until its path is first accessed.

        ``carry_from`` (the worktree being replaced) donates bytes for paths
        it had already materialised under the same oid, so switching back and
        forth between versions re-reads only blobs that actually changed:
        checkout is O(changed-since-last-load) in blob reads.
        """
        self.clear()
        self._source = source
        files = self._files
        lazy = self._lazy
        fingerprints = self._fingerprints
        for path, oid in entries:
            fingerprints[path] = oid
            if carry_from is not None:
                data = carry_from.materialized_bytes(path, oid)
                if data is not None:
                    files[path] = data
                    continue
            lazy[path] = oid
        self._stored = set(fingerprints)
        self._sorted_paths = sorted(self._all_paths())
        self._rebuild_directory_index()
        self._acquire_lease()

    # -- directory index ---------------------------------------------------

    def _index_directories(self, path: str, delta: int) -> None:
        for ancestor in ancestors(path):
            count = self._dir_counts.get(ancestor, 0) + delta
            if count > 0:
                if ancestor not in self._dir_counts:
                    sorted_insert(self._sorted_dirs, ancestor)
                self._dir_counts[ancestor] = count
            else:
                self._dir_counts.pop(ancestor, None)
                sorted_remove(self._sorted_dirs, ancestor)

    def _rebuild_directory_index(self) -> None:
        self._dir_counts = {}
        for path in self._sorted_paths:
            for ancestor in ancestors(path):
                self._dir_counts[ancestor] = self._dir_counts.get(ancestor, 0) + 1
        self._sorted_dirs = sorted(self._dir_counts)

    # -- path-index queries ------------------------------------------------

    def sorted_paths(self) -> list[str]:
        """All file paths in sorted order (a copy)."""
        return list(self._sorted_paths)

    def files_under(self, base: str, include_base: bool = True) -> list[str]:
        """The file paths beneath canonical ``base`` (sorted range probe)."""
        if base == ROOT:
            return list(self._sorted_paths)  # the root is never a file
        lower, upper = descendant_slice(self._sorted_paths, base)
        selected = self._sorted_paths[lower:upper]
        if include_base and base in self:
            selected.insert(0, base)
        return selected

    def first_descendant(self, path: str) -> str | None:
        """The sorted-first file strictly beneath ``path``, or ``None``."""
        lower, upper = descendant_slice(self._sorted_paths, path)
        return self._sorted_paths[lower] if lower < upper else None

    def has_directory(self, path: str) -> bool:
        """Whether ``path`` is an (implicit) directory — O(1) dict probe."""
        return path == ROOT or path in self._dir_counts

    def directories(self, base: str = ROOT) -> list[str]:
        """Every implicit directory path at or beneath canonical ``base``."""
        if not self._sorted_paths:
            return [ROOT] if base == ROOT else []
        if base == ROOT:
            return list(self._sorted_dirs)
        if base not in self._dir_counts:
            return []
        lower, upper = descendant_slice(self._sorted_dirs, base)
        return [base] + self._sorted_dirs[lower:upper]

    def check_can_create(self, path: str, error=ValueError) -> None:
        """Raise ``error`` if creating a file at canonical ``path`` would
        violate the worktree invariant (no path is an ancestor of another).

        O(depth) ancestor probes plus one bisect — never a worktree scan.
        Overwriting an existing file at ``path`` itself is always allowed.
        """
        probes = 0
        for ancestor in ancestors(path):
            probes += 1
            if ancestor != ROOT and ancestor in self:
                self.last_check_probes = probes
                raise error(f"{ancestor!r} is a file; cannot create {path!r} beneath it")
        probes += 1
        descendant = self.first_descendant(path)
        self.last_check_probes = probes
        if descendant is not None:
            raise error(f"{path!r} is a directory (contains {descendant!r})")

    # -- content fingerprints ----------------------------------------------

    def fingerprint(self, path: str) -> str:
        """The blob oid of ``path``'s current bytes (computed lazily, cached).

        Lazy entries were primed with their oid at load time, so this never
        materialises bytes.
        """
        oid = self._fingerprints.get(path)
        if oid is None:
            oid = object_id("blob", self[path])
            self._fingerprints[path] = oid
            self.hash_count += 1
        return oid

    def is_stored(self, path: str) -> bool:
        """Whether ``path``'s fingerprinted blob is known to be in the store."""
        return path in self._stored

    def mark_stored(self, path: str, oid: str) -> None:
        """Record that ``path``'s bytes hash to ``oid`` and the blob is stored."""
        self._fingerprints[path] = oid
        self._stored.add(path)

    def forget_stored(self) -> None:
        """Drop every known-stored flag (fingerprints stay).

        Used when this state is adopted by a different repository: the
        flags assert membership in the *previous* owner's object store.
        Unmaterialised entries keep faulting bytes from that previous store
        (the content-addressed bytes are identical); the adopter's ``add``
        re-stores each blob into its own store before committing.
        """
        self._stored.clear()

    def prime(self, path: str, data: bytes, oid: str) -> None:
        """Install ``path`` with a known, already-stored blob oid."""
        self[path] = data
        self.mark_stored(path, oid)

    def _install_lazy(self, path: str, oid: str, stored: bool) -> None:
        """Insert an absent ``path`` as a lazy entry (move bookkeeping)."""
        sorted_insert(self._sorted_paths, path)
        self._index_directories(path, +1)
        self._lazy[path] = oid
        self._fingerprints[path] = oid
        if stored:
            self._stored.add(path)

    def move_entry(self, old_path: str, new_path: str) -> None:
        """Move a file, carrying its fingerprint (the bytes did not change)."""
        self.move_entries({old_path: new_path})

    def move_entries(self, moves: Mapping[str, str]) -> None:
        """Move several files at once, carrying fingerprints and laziness.

        Two phases — capture + delete every source, then insert every
        destination — so a destination that coincides with a *later* source
        (a directory moved into itself, ``/a`` → ``/a/x``) never clobbers
        bytes that are still waiting to move.  A lazy source stays lazy at
        its destination: moving never forces a blob read.
        """
        captured = []
        for old_path, new_path in moves.items():
            if old_path in self._lazy:
                captured.append(
                    (new_path, None, self._lazy[old_path], old_path in self._stored, True)
                )
            else:
                captured.append(
                    (
                        new_path,
                        self._files[old_path],
                        self._fingerprints.get(old_path),
                        old_path in self._stored,
                        False,
                    )
                )
        for old_path in moves:
            del self[old_path]
        for new_path, data, oid, stored, was_lazy in captured:
            if was_lazy:
                self._install_lazy(new_path, oid, stored)
                continue
            self[new_path] = data
            if oid is not None:
                self._fingerprints[new_path] = oid
                if stored:
                    self._stored.add(new_path)
        # The delete phase may have emptied the lazy set transiently (and
        # released the gc lease) before the insert phase re-installed lazy
        # entries; those survivors must stay pinned against a donor-store gc.
        if self._lazy and self._lease is None:
            self._acquire_lease()

    def load_committed(self, entries: Iterable[tuple[str, bytes, str]]) -> None:
        """Replace the content with ``(path, data, blob oid)`` triples whose
        blobs are known stored — one pass, every fingerprint primed.

        The eager counterpart of :meth:`load_committed_lazy` (kept for
        callers that hold the bytes already, and as the measured baseline in
        the checkout benchmarks)."""
        self.clear()
        for path, data, oid in entries:
            self._files[path] = data
            self._fingerprints[path] = oid
        self._stored = set(self._files)
        self._sorted_paths = sorted(self._files)
        self._rebuild_directory_index()
