"""The indexed working tree: a mapping with a path index and blob fingerprints.

:class:`WorktreeState` replaces the raw ``{path: bytes}`` dict that
:class:`~repro.vcs.repository.Repository` used to hold its working tree.  It
is mapping-compatible (``repo.worktree[path]``, iteration, equality against
plain dicts all behave identically), but maintains three auxiliary indexes
that turn the repository's per-operation worktree scans into bounded probes:

* a **sorted path index**, so "does this path have descendants?" and "which
  files live under this directory?" are bisect range probes
  (:func:`repro.utils.sortedkeys.descendant_slice`) instead of O(n) scans;
* a **directory index** mapping every implicit directory to the number of
  files beneath it, so ``directory_exists`` is an O(1) dict probe and
  ``list_directories`` enumerates directories without re-deriving them from
  every file path;
* a per-path **content-fingerprint cache**: the blob oid of each file's
  current bytes, computed lazily and invalidated by mutation, with a
  ``stored`` flag recording that the blob is known to live in the owning
  repository's object store.  ``Repository.add``/``status`` hash only paths
  whose fingerprint is missing — a commit that touched one file hashes one
  blob, making commits O(changed) end to end.

Every index is maintained incrementally by the mutation methods; a wholesale
replacement (:meth:`replace`, checkout) rebuilds them in one sorted pass.
Keys are canonical repository paths — the :class:`Repository` facade
normalises before touching the mapping, exactly as it did for the plain dict.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Mapping, MutableMapping

from repro.utils.hashing import object_id
from repro.utils.paths import ROOT, ancestors
from repro.utils.sortedkeys import descendant_slice, sorted_insert, sorted_remove

__all__ = ["WorktreeState"]


class WorktreeState(MutableMapping):
    """A ``{canonical path: bytes}`` mapping with sorted-path and blob-oid indexes."""

    def __init__(self, initial: Mapping[str, bytes] | None = None) -> None:
        self._files: dict[str, bytes] = {}
        self._sorted_paths: list[str] = []
        #: Implicit directory path → number of files anywhere beneath it.
        self._dir_counts: dict[str, int] = {}
        self._sorted_dirs: list[str] = []
        #: path → blob oid of the current bytes (dropped on every mutation).
        self._fingerprints: dict[str, str] = {}
        #: Paths whose fingerprinted blob is known present in the repo store.
        self._stored: set[str] = set()
        #: Total lazy fingerprint computations (deterministic perf probe).
        self.hash_count = 0
        #: Index probes made by the last :meth:`check_can_create` call
        #: (deterministic perf probe: bounded by path depth, never by size).
        self.last_check_probes = 0
        if initial:
            self.replace(initial)

    # -- mapping protocol --------------------------------------------------

    def __getitem__(self, path: str) -> bytes:
        return self._files[path]

    def __setitem__(self, path: str, data: bytes) -> None:
        if path not in self._files:
            sorted_insert(self._sorted_paths, path)
            self._index_directories(path, +1)
        else:
            self._fingerprints.pop(path, None)
        self._stored.discard(path)
        self._files[path] = data

    def __delitem__(self, path: str) -> None:
        del self._files[path]
        sorted_remove(self._sorted_paths, path)
        self._index_directories(path, -1)
        self._fingerprints.pop(path, None)
        self._stored.discard(path)

    def __iter__(self) -> Iterator[str]:
        # Deterministic sorted order (a superset of the plain dict contract,
        # which promised no particular order).
        return iter(self._sorted_paths)

    def __len__(self) -> int:
        return len(self._files)

    def __contains__(self, path: object) -> bool:
        return path in self._files

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WorktreeState({len(self._files)} files)"

    def get(self, path: str, default=None):
        return self._files.get(path, default)

    def clear(self) -> None:
        self._files.clear()
        self._sorted_paths.clear()
        self._dir_counts.clear()
        self._sorted_dirs.clear()
        self._fingerprints.clear()
        self._stored.clear()

    def replace(self, mapping: Mapping[str, bytes]) -> None:
        """Replace the whole content in one pass (checkout / merge / import)."""
        self.clear()
        self._files = dict(mapping)
        self._sorted_paths = sorted(self._files)
        self._rebuild_directory_index()

    def bulk_update(self, mapping: Mapping[str, bytes]) -> None:
        """Add/overwrite many entries at once (one re-sort, not n inserts)."""
        if not mapping:
            return
        if len(mapping) <= 8:
            for path, data in mapping.items():
                self[path] = data
            return
        for path in mapping:
            if path in self._files:
                self._fingerprints.pop(path, None)
                self._stored.discard(path)
            else:
                self._index_directories(path, +1)
        self._files.update(mapping)
        self._sorted_paths = sorted(self._files)

    # -- directory index ---------------------------------------------------

    def _index_directories(self, path: str, delta: int) -> None:
        for ancestor in ancestors(path):
            count = self._dir_counts.get(ancestor, 0) + delta
            if count > 0:
                if ancestor not in self._dir_counts:
                    sorted_insert(self._sorted_dirs, ancestor)
                self._dir_counts[ancestor] = count
            else:
                self._dir_counts.pop(ancestor, None)
                sorted_remove(self._sorted_dirs, ancestor)

    def _rebuild_directory_index(self) -> None:
        self._dir_counts = {}
        for path in self._files:
            for ancestor in ancestors(path):
                self._dir_counts[ancestor] = self._dir_counts.get(ancestor, 0) + 1
        self._sorted_dirs = sorted(self._dir_counts)

    # -- path-index queries ------------------------------------------------

    def sorted_paths(self) -> list[str]:
        """All file paths in sorted order (a copy)."""
        return list(self._sorted_paths)

    def files_under(self, base: str, include_base: bool = True) -> list[str]:
        """The file paths beneath canonical ``base`` (sorted range probe)."""
        if base == ROOT:
            return list(self._sorted_paths)  # the root is never a file
        lower, upper = descendant_slice(self._sorted_paths, base)
        selected = self._sorted_paths[lower:upper]
        if include_base and base in self._files:
            selected.insert(0, base)
        return selected

    def first_descendant(self, path: str) -> str | None:
        """The sorted-first file strictly beneath ``path``, or ``None``."""
        lower, upper = descendant_slice(self._sorted_paths, path)
        return self._sorted_paths[lower] if lower < upper else None

    def has_directory(self, path: str) -> bool:
        """Whether ``path`` is an (implicit) directory — O(1) dict probe."""
        return path == ROOT or path in self._dir_counts

    def directories(self, base: str = ROOT) -> list[str]:
        """Every implicit directory path at or beneath canonical ``base``."""
        if not self._files:
            return [ROOT] if base == ROOT else []
        if base == ROOT:
            return list(self._sorted_dirs)
        if base not in self._dir_counts:
            return []
        lower, upper = descendant_slice(self._sorted_dirs, base)
        return [base] + self._sorted_dirs[lower:upper]

    def check_can_create(self, path: str, error=ValueError) -> None:
        """Raise ``error`` if creating a file at canonical ``path`` would
        violate the worktree invariant (no path is an ancestor of another).

        O(depth) ancestor probes plus one bisect — never a worktree scan.
        Overwriting an existing file at ``path`` itself is always allowed.
        """
        probes = 0
        for ancestor in ancestors(path):
            probes += 1
            if ancestor != ROOT and ancestor in self._files:
                self.last_check_probes = probes
                raise error(f"{ancestor!r} is a file; cannot create {path!r} beneath it")
        probes += 1
        descendant = self.first_descendant(path)
        self.last_check_probes = probes
        if descendant is not None:
            raise error(f"{path!r} is a directory (contains {descendant!r})")

    # -- content fingerprints ----------------------------------------------

    def fingerprint(self, path: str) -> str:
        """The blob oid of ``path``'s current bytes (computed lazily, cached)."""
        oid = self._fingerprints.get(path)
        if oid is None:
            oid = object_id("blob", self._files[path])
            self._fingerprints[path] = oid
            self.hash_count += 1
        return oid

    def is_stored(self, path: str) -> bool:
        """Whether ``path``'s fingerprinted blob is known to be in the store."""
        return path in self._stored

    def mark_stored(self, path: str, oid: str) -> None:
        """Record that ``path``'s bytes hash to ``oid`` and the blob is stored."""
        self._fingerprints[path] = oid
        self._stored.add(path)

    def forget_stored(self) -> None:
        """Drop every known-stored flag (fingerprints stay).

        Used when this state is adopted by a different repository: the
        flags assert membership in the *previous* owner's object store.
        """
        self._stored.clear()

    def prime(self, path: str, data: bytes, oid: str) -> None:
        """Install ``path`` with a known, already-stored blob oid (checkout)."""
        self[path] = data
        self.mark_stored(path, oid)

    def move_entry(self, old_path: str, new_path: str) -> None:
        """Move a file, carrying its fingerprint (the bytes did not change)."""
        self.move_entries({old_path: new_path})

    def move_entries(self, moves: Mapping[str, str]) -> None:
        """Move several files at once, carrying their fingerprints.

        Two phases — capture + delete every source, then insert every
        destination — so a destination that coincides with a *later* source
        (a directory moved into itself, ``/a`` → ``/a/x``) never clobbers
        bytes that are still waiting to move.
        """
        captured = [
            (
                new_path,
                self._files[old_path],
                self._fingerprints.get(old_path),
                old_path in self._stored,
            )
            for old_path, new_path in moves.items()
        ]
        for old_path in moves:
            del self[old_path]
        for new_path, data, oid, stored in captured:
            self[new_path] = data
            if oid is not None:
                self._fingerprints[new_path] = oid
                if stored:
                    self._stored.add(new_path)

    def load_committed(self, entries: Iterable[tuple[str, bytes, str]]) -> None:
        """Replace the content with ``(path, data, blob oid)`` triples whose
        blobs are known stored — one pass, every fingerprint primed."""
        self.clear()
        for path, data, oid in entries:
            self._files[path] = data
            self._fingerprints[path] = oid
        self._stored = set(self._files)
        self._sorted_paths = sorted(self._files)
        self._rebuild_directory_index()
