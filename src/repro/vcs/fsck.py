"""Full-store integrity checking and repair (``gitcite fsck [--repair]``).

The durability story has two halves.  The write path promises crash
atomicity (temp + rename + fsync for every durable artefact); this module
is the read-side audit that *proves* a store kept that promise — and the
recovery path for stores that met real corruption (bit rot, torn disks,
damage the atomicity contract cannot prevent).

The check runs against a working copy **at the directory level**, below the
backend classes, because a corrupt pack can make ``PackBackend`` refuse to
open at all: fsck must be able to diagnose exactly the stores the normal
read path rejects.  One sequential tolerant pass per pack re-hashes every
record (deltas are resolved against a cache of the pack's own full
records), which is also markedly faster than auditing via per-oid
random-access reads — the ``fsck_5k`` benchmark pins that gap.

Checks, in order:

1. ``state.json`` parses and (memory layout) every embedded object re-hashes;
2. every loose object / pack record decompresses and re-hashes to its oid;
3. every per-pack ``.idx`` and the ``multi-pack-index.midx`` agree with the
   packs they index (they are caches, but a *wrong* cache serves wrong
   offsets, which surfaces as phantom corruption on read);
4. every branch, tag and HEAD target exists and is a commit;
5. the commit/tree graph under every ref is fully connected;
6. every reachable ``citation.cite`` blob parses.

``repair=True`` quarantines corrupt loose objects and packs into
``.gitcite/quarantine/`` (never deletes — the bytes may still be partially
salvageable by hand), re-packs every record that still verifies out of a
damaged pack, rebuilds wrong or missing idx/midx files, sweeps orphan
temp files, and then re-audits.  What repair cannot recover is reported as
*unrecoverable*: each lost oid with the refs whose history it strands.
"""

from __future__ import annotations

import base64
import binascii
import struct
import zlib
from dataclasses import dataclass, field
from pathlib import Path

from repro.errors import CitationFileError, VCSError
from repro.utils import atomicio
from repro.utils.hashing import object_id
from repro.utils.jsonutil import stable_loads
from repro.vcs.objects import deserialize_object
from repro.vcs.storage.pack import (
    _INDEX_MAGIC,
    _MAX_HEADER_BYTES,
    _MIDX_MAGIC,
    _MIDX_NAME,
    _PACK_MAGIC,
    _PackFile,
    apply_delta,
)

__all__ = ["Finding", "FsckReport", "fsck_working_copy"]

_STATE_DIR = ".gitcite"
_STATE_FILE = "state.json"
_QUARANTINE_DIR = "quarantine"
_CITATION_FILE = "citation.cite"


@dataclass(frozen=True)
class Finding:
    """One integrity violation (or self-healing observation)."""

    #: "state" | "loose" | "pack" | "idx" | "midx" | "refs" | "connectivity"
    #: | "citation" | "tmp"
    category: str
    #: "error" — the store is damaged; "warning" — degraded but self-healing
    #: on the next backend open (e.g. a missing index cache).
    severity: str
    detail: str
    oid: str | None = None
    path: str | None = None

    def __str__(self) -> str:
        location = f" [{self.path}]" if self.path else ""
        subject = f" {self.oid}" if self.oid else ""
        return f"{self.severity}: {self.category}{subject}: {self.detail}{location}"


@dataclass
class FsckReport:
    """Everything one fsck pass established about a working copy."""

    directory: str
    storage: str | None = None
    findings: list[Finding] = field(default_factory=list)
    objects_checked: int = 0
    packs_checked: int = 0
    refs_checked: int = 0
    citations_checked: int = 0
    #: Lost oid → sorted ref names whose history the loss strands.
    unrecoverable: dict[str, tuple[str, ...]] = field(default_factory=dict)
    #: Human-readable repair actions taken (empty unless ``repair=True``).
    repaired: list[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No errors (warnings — self-healing cache misses — are tolerated)."""
        return not any(finding.severity == "error" for finding in self.findings)

    def errors(self) -> list[Finding]:
        return [finding for finding in self.findings if finding.severity == "error"]


# ---------------------------------------------------------------------------
# Internal scan state (kept out of the public report)
# ---------------------------------------------------------------------------


@dataclass
class _PackScan:
    path: Path
    #: Verified ``(oid, offset)`` pairs, in record order.
    entries: list[tuple[str, int]] = field(default_factory=list)
    #: ``oid → (type, payload)`` for every record that verified.
    verified: dict[str, tuple[str, bytes]] = field(default_factory=dict)
    #: Whether every byte of the pack was accounted for and verified.
    intact: bool = True
    #: Whether the sequential walk itself survived (False = offsets past the
    #: damage are unknowable and the pack must be treated as ending there).
    structurally_sound: bool = True


@dataclass
class _ScanState:
    root: Path
    kind: str | None = None
    state: dict | None = None
    #: ``oid → (type, payload)`` for every object that verified, all sources.
    objects: dict[str, tuple[str, bytes]] = field(default_factory=dict)
    pack_scans: list[_PackScan] = field(default_factory=list)
    corrupt_loose: list[Path] = field(default_factory=list)
    #: Pack-dir idx files that exist but disagree with their pack.
    wrong_idx: list[tuple[Path, list[tuple[str, int]]]] = field(default_factory=list)
    midx_needs_rebuild: bool = False
    orphan_tmp: list[Path] = field(default_factory=list)


# ---------------------------------------------------------------------------
# Object sources: state.json, loose files, pack files
# ---------------------------------------------------------------------------


def _load_state(scan: _ScanState, report: FsckReport) -> None:
    state_path = scan.root / _STATE_DIR / _STATE_FILE
    if not state_path.is_file():
        report.findings.append(Finding(
            "state", "error", f"missing {_STATE_DIR}/{_STATE_FILE}", path=str(state_path)
        ))
        return
    try:
        scan.state = stable_loads(state_path.read_text(encoding="utf-8"))
    except (ValueError, UnicodeDecodeError, OSError) as exc:
        report.findings.append(Finding(
            "state", "error", f"state file does not parse: {exc}", path=str(state_path)
        ))
        return
    if not isinstance(scan.state, dict):
        report.findings.append(Finding(
            "state", "error", "state file is not a JSON object", path=str(state_path)
        ))
        scan.state = None
        return
    scan.kind = scan.state.get("storage", "memory")
    report.storage = scan.kind


def _scan_embedded(scan: _ScanState, report: FsckReport) -> None:
    """Verify the objects a memory-layout state.json embeds."""
    records = (scan.state or {}).get("objects", {})
    if not isinstance(records, dict):
        report.findings.append(Finding("state", "error", "'objects' is not an object"))
        return
    for oid, record in records.items():
        report.objects_checked += 1
        try:
            payload = base64.b64decode(record["payload"], validate=True)
            type_name = record["type"]
        except (KeyError, TypeError, binascii.Error, ValueError) as exc:
            report.findings.append(Finding(
                "state", "error", f"embedded object record is malformed: {exc}", oid=oid
            ))
            continue
        if object_id(type_name, payload) != oid:
            report.findings.append(Finding(
                "state", "error", "embedded payload does not hash to its oid", oid=oid
            ))
            continue
        scan.objects[oid] = (type_name, payload)


def _scan_loose(scan: _ScanState, report: FsckReport) -> None:
    root = scan.root / _STATE_DIR / "objects"
    if not root.is_dir():
        return
    hex_digits = set("0123456789abcdef")
    for shard in sorted(root.iterdir()):
        if not (shard.is_dir() and len(shard.name) == 2 and set(shard.name) <= hex_digits):
            continue
        for entry in sorted(shard.iterdir()):
            if not (entry.is_file() and len(entry.name) == 38 and set(entry.name) <= hex_digits):
                continue
            oid = shard.name + entry.name
            report.objects_checked += 1
            try:
                decompressed = zlib.decompress(entry.read_bytes())
                header, separator, payload = decompressed.partition(b"\0")
                if not separator:
                    raise ValueError("missing object header")
                type_name, size_text = header.decode("ascii").split(" ", 1)
                if int(size_text) != len(payload):
                    raise ValueError("header size does not match payload")
            except (OSError, zlib.error, ValueError, UnicodeDecodeError) as exc:
                report.findings.append(Finding(
                    "loose", "error", f"unreadable object file: {exc}", oid=oid, path=str(entry)
                ))
                scan.corrupt_loose.append(entry)
                continue
            if object_id(type_name, payload) != oid:
                report.findings.append(Finding(
                    "loose", "error", "payload does not hash to the file's oid",
                    oid=oid, path=str(entry),
                ))
                scan.corrupt_loose.append(entry)
                continue
            scan.objects[oid] = (type_name, payload)


def _scan_one_pack(pack_path: Path, report: FsckReport) -> _PackScan:
    """One sequential tolerant pass over a pack, re-hashing every record.

    Per-record damage (a body that fails to decompress or hash) is skipped
    using the header's declared size, so one flipped byte costs one object,
    not the whole pack.  Structural damage (bad magic, an unparseable
    header, a truncated body) ends the walk — offsets past it are
    unknowable — and everything already verified remains salvageable.
    """
    result = _PackScan(path=pack_path)
    #: Full-record payloads of this pack, for delta resolution.
    fulls: dict[str, bytes] = {}
    try:
        data = pack_path.read_bytes()
    except OSError as exc:
        report.findings.append(Finding(
            "pack", "error", f"unreadable pack file: {exc}", path=str(pack_path)
        ))
        result.intact = result.structurally_sound = False
        return result
    if not data.startswith(_PACK_MAGIC):
        report.findings.append(Finding(
            "pack", "error", "bad pack magic", path=str(pack_path)
        ))
        result.intact = result.structurally_sound = False
        return result
    offset = len(_PACK_MAGIC)
    while offset < len(data):
        newline = data.find(b"\n", offset, offset + _MAX_HEADER_BYTES)
        if newline < 0:
            report.findings.append(Finding(
                "pack", "error", f"unterminated record header at offset {offset}",
                path=str(pack_path),
            ))
            result.intact = result.structurally_sound = False
            return result
        try:
            fields = data[offset:newline].decode("ascii").split(" ")
            kind = fields[0]
            if kind == "full" and len(fields) == 4:
                type_name, oid, csize, base_oid = fields[1], fields[2], int(fields[3]), None
            elif kind == "delta" and len(fields) == 5:
                type_name, oid, csize, base_oid = fields[1], fields[2], int(fields[3]), fields[4]
            else:
                raise ValueError(f"malformed record header {fields!r}")
            if csize < 0:
                raise ValueError("negative record size")
        except (UnicodeDecodeError, ValueError) as exc:
            report.findings.append(Finding(
                "pack", "error", f"unreadable record header at offset {offset}: {exc}",
                path=str(pack_path),
            ))
            result.intact = result.structurally_sound = False
            return result
        body_start = newline + 1
        if body_start + csize > len(data):
            report.findings.append(Finding(
                "pack", "error", f"record {oid} truncated (pack ends mid-body)",
                oid=oid, path=str(pack_path),
            ))
            result.intact = result.structurally_sound = False
            return result
        record_offset, body = offset, data[body_start:body_start + csize]
        offset = body_start + csize
        report.objects_checked += 1
        try:
            payload = zlib.decompress(body)
            if kind == "delta":
                base = fulls.get(base_oid or "")
                if base is None:
                    raise ValueError(f"delta base {base_oid} is not an earlier full record")
                payload = apply_delta(base, payload)
        except (zlib.error, ValueError, IndexError) as exc:
            report.findings.append(Finding(
                "pack", "error", f"record does not decode: {exc}", oid=oid, path=str(pack_path)
            ))
            result.intact = False
            continue
        if object_id(type_name, payload) != oid:
            report.findings.append(Finding(
                "pack", "error", "record payload does not hash to its oid",
                oid=oid, path=str(pack_path),
            ))
            result.intact = False
            continue
        if kind == "full":
            fulls[oid] = payload
        result.entries.append((oid, record_offset))
        result.verified[oid] = (type_name, payload)
    return result


def _check_idx(scan: _ScanState, report: FsckReport, pack: _PackScan) -> None:
    idx_path = pack.path.with_suffix(".idx")
    expected = sorted(pack.entries)
    if not idx_path.is_file():
        report.findings.append(Finding(
            "idx", "warning", "index missing (rebuilt automatically on open)",
            path=str(idx_path),
        ))
        return
    try:
        raw = idx_path.read_bytes()
        if not raw.startswith(_INDEX_MAGIC):
            raise ValueError("bad index magic")
        cursor = len(_INDEX_MAGIC)
        counts = struct.unpack_from(">256I", raw, cursor)
        cursor += 256 * 4
        got: list[tuple[str, int]] = []
        for _ in range(counts[255]):
            oid_bytes = raw[cursor:cursor + 20]
            (entry_offset,) = struct.unpack_from(">Q", raw, cursor + 20)
            got.append((oid_bytes.hex(), entry_offset))
            cursor += 28
        if cursor != len(raw):
            raise ValueError("trailing bytes after the last index entry")
    except (ValueError, struct.error) as exc:
        report.findings.append(Finding(
            "idx", "error", f"index does not parse: {exc}", path=str(idx_path)
        ))
        scan.wrong_idx.append((idx_path, expected))
        return
    if got != expected:
        report.findings.append(Finding(
            "idx", "error",
            "index disagrees with its pack "
            f"({len(got)} indexed vs {len(expected)} scanned entries)",
            path=str(idx_path),
        ))
        scan.wrong_idx.append((idx_path, expected))


def _check_midx(scan: _ScanState, report: FsckReport) -> None:
    root = scan.root / _STATE_DIR / "pack"
    midx_path = root / _MIDX_NAME
    pack_names = {pack.path.name for pack in scan.pack_scans}
    if not midx_path.is_file():
        if pack_names:
            report.findings.append(Finding(
                "midx", "warning", "multi-pack index missing (rebuilt on open)",
                path=str(midx_path),
            ))
        return
    try:
        raw = midx_path.read_bytes()
        if not raw.startswith(_MIDX_MAGIC):
            raise ValueError("bad midx magic")
        cursor = len(_MIDX_MAGIC)
        (pack_count,) = struct.unpack_from(">I", raw, cursor)
        cursor += 4
        names: list[str] = []
        for _ in range(pack_count):
            (name_length,) = struct.unpack_from(">H", raw, cursor)
            cursor += 2
            names.append(raw[cursor:cursor + name_length].decode("ascii"))
            cursor += name_length
        counts = struct.unpack_from(">256I", raw, cursor)
        cursor += 256 * 4
        entries: list[tuple[str, int, int]] = []
        for _ in range(counts[255]):
            oid_bytes = raw[cursor:cursor + 20]
            pack_number, entry_offset = struct.unpack_from(">IQ", raw, cursor + 20)
            entries.append((oid_bytes.hex(), pack_number, entry_offset))
            cursor += 32
        if cursor != len(raw):
            raise ValueError("trailing bytes after the last midx entry")
    except (ValueError, struct.error, UnicodeDecodeError) as exc:
        # An unparseable midx is rejected (and rebuilt) on open, so it is
        # degradation, not danger — but still worth repairing eagerly.
        report.findings.append(Finding(
            "midx", "warning", f"multi-pack index does not parse: {exc}", path=str(midx_path)
        ))
        scan.midx_needs_rebuild = True
        return
    if set(names) != pack_names:
        report.findings.append(Finding(
            "midx", "warning", "multi-pack index is stale (pack set changed; rebuilt on open)",
            path=str(midx_path),
        ))
        scan.midx_needs_rebuild = True
        return
    # Names match, so the backend would trust this midx verbatim: its
    # entries must agree exactly with the packs it claims to index.
    by_pack: dict[str, dict[str, int]] = {
        pack.path.name: dict(pack.entries) for pack in scan.pack_scans
    }
    expected_oids = set()
    for pack in scan.pack_scans:
        expected_oids.update(oid for oid, _ in pack.entries)
    seen = set()
    for oid, pack_number, entry_offset in entries:
        if pack_number >= len(names):
            report.findings.append(Finding(
                "midx", "error", f"entry {oid} names pack #{pack_number}, which does not exist",
                oid=oid, path=str(midx_path),
            ))
            scan.midx_needs_rebuild = True
            return
        offsets = by_pack.get(names[pack_number], {})
        if offsets.get(oid) != entry_offset:
            report.findings.append(Finding(
                "midx", "error",
                f"entry {oid} points at {names[pack_number]}:{entry_offset}, "
                "which holds no such record",
                oid=oid, path=str(midx_path),
            ))
            scan.midx_needs_rebuild = True
            return
        seen.add(oid)
    missing = expected_oids - seen
    if missing:
        report.findings.append(Finding(
            "midx", "error",
            f"{len(missing)} packed object(s) absent from the multi-pack index "
            "(they would be unreadable despite intact packs)",
            path=str(midx_path),
        ))
        scan.midx_needs_rebuild = True


def _scan_packs(scan: _ScanState, report: FsckReport) -> None:
    root = scan.root / _STATE_DIR / "pack"
    if not root.is_dir():
        return
    for pack_path in sorted(root.glob("pack-*.pack")):
        report.packs_checked += 1
        pack = _scan_one_pack(pack_path, report)
        scan.pack_scans.append(pack)
        if pack.intact:
            _check_idx(scan, report, pack)
        for oid, record in pack.verified.items():
            scan.objects.setdefault(oid, record)
    _check_midx(scan, report)


def _find_orphan_tmp(scan: _ScanState, report: FsckReport) -> None:
    metadata = scan.root / _STATE_DIR
    if not metadata.is_dir():
        return
    for entry in sorted(metadata.rglob(f"{atomicio.TMP_PREFIX}*")):
        if entry.is_file() and _QUARANTINE_DIR not in entry.parts:
            scan.orphan_tmp.append(entry)
            report.findings.append(Finding(
                "tmp", "warning", "orphan temp file from an interrupted write (swept on open)",
                path=str(entry),
            ))


# ---------------------------------------------------------------------------
# Refs, connectivity, citations
# ---------------------------------------------------------------------------


def _ref_tips(state: dict) -> list[tuple[str, str]]:
    tips: list[tuple[str, str]] = []
    for name, oid in sorted((state.get("branches") or {}).items()):
        tips.append((f"branch {name}", oid))
    for name, oid in sorted((state.get("tags") or {}).items()):
        tips.append((f"tag {name}", oid))
    head_oid = state.get("head_oid")
    if head_oid:
        tips.append(("detached HEAD", head_oid))
    return tips


def _references(type_name: str, payload: bytes) -> list[str]:
    """The oids an object points at (empty for blobs / unparsable objects)."""
    if type_name == "blob":
        return []
    try:
        obj = deserialize_object(type_name, payload)
    except VCSError:
        # Unparsable objects carry no outgoing edges; the object-integrity
        # pass reports the corruption itself.
        return []
    if type_name == "commit":
        return [obj.tree_oid, *obj.parent_oids]
    if type_name == "tree":
        return [entry.oid for entry in obj.entries]
    if type_name == "tag":
        return [obj.object_oid]
    return []


def _check_graph(scan: _ScanState, report: FsckReport) -> None:
    """Ref targets, connectivity, and the missing-oid → stranded-refs map.

    One iterative post-order walk computes, per object, the set of missing
    oids its subtree reaches (memoised, so shared history costs one visit);
    each ref then inherits its tip's set.
    """
    if scan.state is None:
        return
    objects = scan.objects
    #: oid → frozenset of missing oids reachable from it (memo).
    missing_below: dict[str, frozenset] = {}

    def resolve(start: str) -> frozenset:
        if start in missing_below:
            return missing_below[start]
        stack: list[tuple[str, bool]] = [(start, False)]
        while stack:
            oid, expanded = stack.pop()
            if oid in missing_below:
                continue
            if oid not in objects:
                missing_below[oid] = frozenset((oid,))
                continue
            children = _references(*objects[oid])
            if expanded:
                gathered: set = set()
                for child in children:
                    gathered |= missing_below.get(child, frozenset())
                missing_below[oid] = frozenset(gathered)
            else:
                stack.append((oid, True))
                stack.extend(
                    (child, False) for child in children if child not in missing_below
                )
        return missing_below[start]

    stranded: dict[str, set] = {}
    for ref_name, tip in _ref_tips(scan.state):
        report.refs_checked += 1
        if tip not in objects:
            report.findings.append(Finding(
                "refs", "error", f"{ref_name} points at a missing object", oid=tip
            ))
            stranded.setdefault(tip, set()).add(ref_name)
            continue
        if objects[tip][0] != "commit":
            report.findings.append(Finding(
                "refs", "error",
                f"{ref_name} points at a {objects[tip][0]} object, not a commit", oid=tip,
            ))
            continue
        for lost in sorted(resolve(tip)):
            stranded.setdefault(lost, set()).add(ref_name)
    for lost, refs in sorted(stranded.items()):
        if lost in {tip for _, tip in _ref_tips(scan.state)} and lost not in objects:
            pass  # already reported as a refs error above
        elif lost not in objects:
            report.findings.append(Finding(
                "connectivity", "error",
                f"reachable object is missing (strands {', '.join(sorted(refs))})",
                oid=lost,
            ))
    report.unrecoverable = {
        lost: tuple(sorted(refs)) for lost, refs in sorted(stranded.items())
    }


def _check_citations(scan: _ScanState, report: FsckReport) -> None:
    """Parse every distinct reachable ``citation.cite`` blob."""
    from repro.citation.citefile import load_citation_bytes

    if scan.state is None:
        return
    objects = scan.objects
    checked: set[str] = set()
    for _, tip in _ref_tips(scan.state):
        frontier = [tip]
        seen: set[str] = set()
        while frontier:
            oid = frontier.pop()
            if oid in seen or oid not in objects:
                continue
            seen.add(oid)
            type_name, payload = objects[oid]
            if type_name != "commit":
                continue
            try:
                commit = deserialize_object(type_name, payload)
            except VCSError as exc:
                report.findings.append(Finding(
                    "connectivity", "error", f"commit does not parse: {exc}", oid=oid
                ))
                continue
            frontier.extend(commit.parent_oids)
            tree = objects.get(commit.tree_oid)
            if tree is None or tree[0] != "tree":
                continue
            try:
                entries = deserialize_object(tree[0], tree[1]).entries
            except VCSError as exc:
                report.findings.append(Finding(
                    "connectivity", "error", f"tree does not parse: {exc}", oid=commit.tree_oid
                ))
                continue
            for entry in entries:
                if entry.name != _CITATION_FILE or entry.is_directory:
                    continue
                if entry.oid in checked:
                    break
                checked.add(entry.oid)
                blob = objects.get(entry.oid)
                if blob is None:
                    break  # already a connectivity error
                report.citations_checked += 1
                try:
                    load_citation_bytes(blob[1])
                except CitationFileError as exc:
                    report.findings.append(Finding(
                        "citation", "error", f"citation.cite does not parse: {exc}",
                        oid=entry.oid,
                    ))
                break


# ---------------------------------------------------------------------------
# Repair
# ---------------------------------------------------------------------------


def _quarantine(root: Path, victim: Path, actions: list[str]) -> None:
    quarantine = root / _STATE_DIR / _QUARANTINE_DIR
    quarantine.mkdir(parents=True, exist_ok=True)
    destination = quarantine / victim.name
    serial = 0
    while destination.exists():
        serial += 1
        destination = quarantine / f"{victim.name}.{serial}"
    try:
        victim.replace(destination)
        actions.append(f"quarantined {victim.name} -> {destination.relative_to(root)}")
    except OSError as exc:
        actions.append(f"could not quarantine {victim.name}: {exc}")


def _repair(scan: _ScanState, report: FsckReport) -> list[str]:
    actions: list[str] = []
    root = scan.root
    for orphan in scan.orphan_tmp:
        try:
            orphan.unlink()
            actions.append(f"removed orphan temp file {orphan.name}")
        except OSError:
            pass
    for corrupt in scan.corrupt_loose:
        _quarantine(root, corrupt, actions)
    # Records still alive in the surviving (healthy) packs.
    surviving: set[str] = set()
    for pack in scan.pack_scans:
        if pack.intact:
            surviving.update(pack.verified)
    salvage: dict[str, tuple[str, bytes]] = {}
    repacked = False
    for pack in scan.pack_scans:
        if pack.intact:
            continue
        for oid, record in pack.verified.items():
            if oid not in surviving:
                salvage[oid] = record
        _quarantine(root, pack.path, actions)
        idx_path = pack.path.with_suffix(".idx")
        if idx_path.is_file():
            _quarantine(root, idx_path, actions)
        repacked = True
    for idx_path, entries in scan.wrong_idx:
        _PackFile.write_index(idx_path, entries)
        actions.append(f"rebuilt {idx_path.name} from its pack")
    if salvage or repacked or scan.midx_needs_rebuild:
        # Opening the backend on the cleaned pack set rebuilds the midx;
        # salvaged records land as a fresh pack through the normal write
        # path (which also re-indexes them).  A *wrong-but-parseable* midx
        # would be trusted verbatim by that open (its pack-name set still
        # matches), so the bad cache must be removed first — it is a pure
        # cache, rebuilt from the packs, so removal loses nothing.
        from repro.vcs.storage.pack import PackBackend

        if scan.midx_needs_rebuild:
            midx_path = root / _STATE_DIR / "pack" / _MIDX_NAME
            try:
                midx_path.unlink()
            except OSError:
                pass
        backend = PackBackend(root / _STATE_DIR / "pack")
        if salvage:
            backend.write_many(
                (oid, type_name, payload)
                for oid, (type_name, payload) in sorted(salvage.items())
            )
            actions.append(f"salvaged {len(salvage)} object(s) from quarantined pack(s)")
        backend.close()
        if scan.midx_needs_rebuild or repacked:
            actions.append("rebuilt multi-pack index")
    return actions


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def _scan(directory: Path) -> tuple[FsckReport, _ScanState]:
    report = FsckReport(directory=str(directory))
    scan = _ScanState(root=directory)
    _load_state(scan, report)
    if scan.state is not None:
        if scan.kind == "memory":
            _scan_embedded(scan, report)
        # Persistent layouts can coexist transiently with embedded objects
        # (a migration's source); scan whatever is on disk.
        _scan_loose(scan, report)
        _scan_packs(scan, report)
        _find_orphan_tmp(scan, report)
        _check_graph(scan, report)
        _check_citations(scan, report)
    return report, scan


def fsck_working_copy(directory, repair: bool = False) -> FsckReport:
    """Audit a working copy's full on-disk state; optionally repair it.

    Returns the :class:`FsckReport` of the *final* state: with
    ``repair=True`` the store is re-audited after repair, so ``report.ok``
    answers "is it healthy now", ``report.repaired`` lists what was done,
    and ``report.unrecoverable`` maps each genuinely lost oid to the refs
    it strands.
    """
    root = Path(directory)
    report, scan = _scan(root)
    if not repair:
        return report
    repairable = scan.corrupt_loose or scan.wrong_idx or scan.midx_needs_rebuild \
        or scan.orphan_tmp or any(not pack.intact for pack in scan.pack_scans)
    if not repairable:
        return report
    actions = _repair(scan, report)
    final, _ = _scan(root)
    final.repaired = actions
    return final
