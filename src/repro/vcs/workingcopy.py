"""On-disk persistence of a working copy (``.gitcite/`` and the files).

A working copy managed by ``gitcite`` is an ordinary directory of files
plus a ``.gitcite/`` metadata directory holding the serialised repository
state:

* ``state.json`` — repository identity, the reference store (branches,
  tags, HEAD) and the storage layout in use;
* the object store, whose location depends on the layout:

  - ``memory`` — objects embedded in ``state.json`` (type + base64
    payload per object; the seed's original format, still read and
    written);
  - ``loose`` — one compressed file per object under ``.gitcite/objects/``;
  - ``pack``  — delta-compressed pack files under ``.gitcite/pack/``;

* the working tree is the directory itself (``.gitcite/`` excluded),
  imported on load and exported on checkout, so users see and edit normal
  files while the citation machinery keeps its history next to them.

This used to live in ``repro.cli.storage``, but it is not CLI logic: the
hub's durability recovery replays journals through it and
``Repository.load`` bootstraps from it, and neither may import *upward*
into the entry-point layer (the ``layering`` analysis rule now pins
that).  ``repro.cli.storage`` remains as a thin shim re-exporting this
module plus the ``gitcite storage`` subcommands.

Errors surface as :class:`~repro.errors.CLIError` — the operator-facing
"the working copy on disk is unusable" error — which lives in the
foundation error tree, not the CLI package.
"""

from __future__ import annotations

import base64
import os
import shutil
from pathlib import Path

from repro.errors import CLIError, StorageError
from repro.utils import atomicio
from repro.utils.jsonutil import pretty_dumps, stable_loads
from repro.vcs.ignore import IgnoreRules
from repro.vcs.repository import Repository
from repro.vcs.storage import MemoryBackend, backend_kinds, make_backend
from repro.vcs.worktree import export_worktree, import_worktree

__all__ = [
    "STATE_DIR",
    "STATE_FILE",
    "backend_root",
    "is_working_copy",
    "save_repository",
    "load_repository",
    "switch_storage",
    "reachable_from_refs",
]

STATE_DIR = ".gitcite"
STATE_FILE = "state.json"

#: Subdirectory of ``STATE_DIR`` holding each persistent layout's objects.
_BACKEND_SUBDIRS = {"loose": "objects", "pack": "pack"}


def _state_path(directory: str | os.PathLike[str]) -> Path:
    return Path(directory) / STATE_DIR / STATE_FILE


def backend_root(directory: str | os.PathLike[str], kind: str) -> Path:
    """Where a working copy keeps its objects for a persistent layout."""
    return Path(directory) / STATE_DIR / _BACKEND_SUBDIRS[kind]


def is_working_copy(directory: str | os.PathLike[str]) -> bool:
    """Whether ``directory`` contains a gitcite working copy."""
    return _state_path(directory).is_file()


def _checked_kind(kind: str) -> str:
    if kind not in backend_kinds():
        raise CLIError(f"unknown storage layout {kind!r}; expected one of {backend_kinds()}")
    return kind


def _migrate_layout(
    repo: Repository, directory: str | os.PathLike[str], kind: str
) -> tuple[int, Path | None]:
    """Copy the object store into layout ``kind`` under the working copy.

    Returns ``(objects moved, stale directory or None)``.  The old layout's
    directory is *not* removed here: the caller must delete it only after the
    state file records the new layout, so a crash mid-switch never leaves
    ``state.json`` pointing at a layout whose objects are already gone.
    """
    kind = _checked_kind(kind)
    backend = repo.store.backend
    target_root = None if kind == "memory" else backend_root(directory, kind).resolve()
    if backend.kind == kind:
        # Resolve both sides: the same physical directory may be reached via
        # different path spellings (relative vs absolute, symlinks), and a
        # false mismatch here would "migrate" the store onto itself and then
        # delete it as the old layout.
        if kind == "memory" or Path(backend.root).resolve() == target_root:
            return 0, None
    old_backend = backend
    if kind == "memory":
        new_backend = MemoryBackend()
    else:
        new_backend = make_backend(kind, backend_root(directory, kind))
    try:
        moved = repo.store.migrate_backend(new_backend)
    except StorageError as exc:
        raise CLIError(str(exc)) from exc
    # The previous layout's files are stale if they lived inside this working
    # copy — but never when old and new layouts share the physical directory.
    old_root = getattr(old_backend, "root", None)
    if old_root is not None:
        old_root = Path(old_root).resolve()
        metadata_dir = Path(directory) / STATE_DIR
        if metadata_dir.resolve() in old_root.parents and old_root != target_root:
            old_backend.close()
            return moved, old_root
    return moved, None


def _write_state(repo: Repository, root: Path, kind: str) -> Path:
    """Write ``state.json`` recording layout ``kind`` (objects embedded for memory)."""
    state_path = _state_path(root)
    state_path.parent.mkdir(parents=True, exist_ok=True)
    state = {
        "version": 2,
        "storage": kind,
        "name": repo.name,
        "owner": repo.owner,
        "description": repo.description,
        "default_branch": repo.refs.default_branch,
        "head_branch": repo.refs.head_branch,
        "head_oid": repo.refs.head_commit() if repo.refs.is_detached else None,
        "branches": repo.refs.branches,
        "tags": repo.refs.tags,
    }
    if kind == "memory":
        state["objects"] = {
            oid: {
                "type": repo.store.get_type(oid),
                "payload": base64.b64encode(repo.store.backend.read(oid)[1]).decode("ascii"),
            }
            for oid in repo.store.object_ids()
        }
    # state.json is the working copy's source of truth (for the memory
    # layout it *is* the object store) — the write must be crash-atomic and
    # durable: temp + rename so no reader ever sees a torn file, fsync so a
    # power cut after "saved" cannot roll the refs (or the objects) back.
    atomicio.atomic_write_text(
        state_path, pretty_dumps(state) + "\n",
        durable=True, failpoint="state.save",
    )
    return state_path


def switch_storage(repo: Repository, directory: str | os.PathLike[str], kind: str) -> int:
    """Migrate ``repo``'s object store to ``kind`` and persist the switch.

    Objects are copied into the new layout, the store keeps its identity
    (live caches and references stay valid), the state file is rewritten to
    record the new layout, and only then is the previous layout's directory
    under ``.gitcite/`` removed.  Returns the number of objects actually
    copied (0 when already on the target layout — or when a crash-interrupted
    earlier switch already moved them and only the state record was missing).
    """
    moved, stale_root = _migrate_layout(repo, directory, kind)
    repo.store.flush()
    _write_state(repo, Path(directory), _checked_kind(kind))
    if stale_root is not None:
        shutil.rmtree(stale_root, ignore_errors=True)
    return moved


def save_repository(repo: Repository, directory: str | os.PathLike[str],
                    export_files: bool = True, storage: str | None = None) -> Path:
    """Serialise repository state under ``directory``/.gitcite and export the worktree.

    ``storage`` selects the on-disk layout (default: whatever the repository's
    store already uses); a differing layout triggers an in-place migration.
    """
    root = Path(directory)
    kind = _checked_kind(storage or repo.store.backend.kind)
    _, stale_root = _migrate_layout(repo, root, kind)
    repo.store.flush()
    state_path = _write_state(repo, root, kind)
    # Only now — with the state file recording the new layout (and, for
    # memory, embedding the objects) — is the old layout safe to delete.
    if stale_root is not None:
        shutil.rmtree(stale_root, ignore_errors=True)
    if export_files:
        export_worktree(repo, root)
    return state_path


def load_repository(directory: str | os.PathLike[str],
                    storage: str | None = None) -> Repository:
    """Reconstruct a repository from ``directory``/.gitcite plus the on-disk files.

    ``storage`` optionally overrides the layout recorded in the state file;
    the object store is migrated immediately and the state file updated, so
    the working copy on disk never straddles two layouts.
    """
    root = Path(directory)
    state_path = _state_path(root)
    if not state_path.is_file():
        raise CLIError(
            f"{root} is not a gitcite working copy (no {STATE_DIR}/{STATE_FILE}); run 'gitcite init'"
        )
    # A crashed earlier save can leave a torn ``.tmp-*`` next to state.json;
    # the rename never happened, so the file is garbage by construction.
    atomicio.sweep_orphan_tmp(state_path.parent)
    try:
        state = stable_loads(state_path.read_text(encoding="utf-8"))
    except ValueError as exc:
        raise CLIError(f"corrupt gitcite state file: {exc}") from exc

    stored_kind = _checked_kind(state.get("storage", "memory"))
    if stored_kind == "memory":
        backend_spec = None
    else:
        try:
            backend_spec = make_backend(stored_kind, backend_root(root, stored_kind))
        except StorageError as exc:
            raise CLIError(str(exc)) from exc

    repo = Repository.init(
        name=state["name"],
        owner=state["owner"],
        default_branch=state.get("default_branch", "main"),
        description=state.get("description", ""),
        storage=backend_spec,
    )
    if stored_kind == "memory":
        from repro.vcs.objects import deserialize_object

        for oid, record in state.get("objects", {}).items():
            obj = deserialize_object(record["type"], base64.b64decode(record["payload"]))
            stored = repo.store.put(obj)
            if stored != oid:
                raise CLIError(f"object {oid} failed its integrity check on load")
    for name, oid in state.get("branches", {}).items():
        repo.refs.set_branch(name, oid)
    for name, oid in state.get("tags", {}).items():
        repo.refs.set_tag(name, oid)
    if state.get("head_branch"):
        repo.refs.attach_head(state["head_branch"])
    elif state.get("head_oid"):
        repo.refs.detach_head(state["head_oid"])

    # The index mirrors HEAD; the working tree is whatever is on disk now.
    head = repo.head_oid()
    if head is not None:
        repo.index.read_tree(repo.store, repo.store.get_commit(head).tree_oid)
    import_worktree(repo, root, ignore=IgnoreRules(), replace=True)
    if storage is not None and _checked_kind(storage) != stored_kind:
        save_repository(repo, root, export_files=False, storage=storage)
    return repo


# ---------------------------------------------------------------------------
# Reachability (shared by gc)
# ---------------------------------------------------------------------------


def reachable_from_refs(repo: Repository) -> set[str]:
    """Every object id reachable from any branch, tag or a detached HEAD.

    One shared walk over all tips: commits, trees and blobs already visited
    for one branch are never re-walked for another, so gc over B branches of
    a mostly shared history costs one traversal, not B.
    """
    keep: set[str] = set()

    def add_tree(tree_oid: str) -> None:
        if tree_oid in keep:
            return
        keep.add(tree_oid)
        for entry in repo.store.get_tree(tree_oid).entries:
            if entry.is_directory:
                add_tree(entry.oid)
            else:
                keep.add(entry.oid)

    tips = set(repo.refs.branches.values()) | set(repo.refs.tags.values())
    head = repo.head_oid()
    if head:
        tips.add(head)
    frontier = [tip for tip in tips if tip in repo.store]
    while frontier:
        oid = frontier.pop()
        if oid in keep:
            continue
        keep.add(oid)
        commit = repo.store.get_commit(oid)
        add_tree(commit.tree_oid)
        frontier.extend(parent for parent in commit.parent_oids if parent not in keep)
    # Annotated tag objects stay alive as long as their target does.
    for oid in repo.store.iter_oids():
        if repo.store.get_type(oid) == "tag" and repo.store.get_tag(oid).object_oid in keep:
            keep.add(oid)
    return keep
