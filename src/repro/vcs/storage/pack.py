"""The pack backend: append-only pack files with a sorted fanout index.

New writes accumulate in memory and :meth:`PackBackend.flush` appends them as
one pack file, so a bulk commit costs one sequential write instead of one
file per object.  Each pack ``pack-<digest>.pack`` carries a sidecar
``pack-<digest>.idx``:

``.pack`` layout::

    b"RPCK1\\n"
    repeated records, each:
      header line  b"full <type> <oid> <csize>\\n"
                or b"delta <type> <oid> <csize> <base-oid>\\n"
      csize bytes of zlib-compressed data (payload, or a delta against the
      *full* record of <base-oid> in the same pack; delta depth is 1)

``.idx`` layout (the sorted fanout index)::

    b"RIDX1\\n"
    256 big-endian uint32 cumulative bucket counts (fanout over oid[0:2])
    per oid, sorted: 20 raw oid bytes + big-endian uint64 record offset

A lookup narrows to the oid's first-byte bucket via the fanout table, then
bisects inside the bucket — O(log bucket) with no payload touched.  Similar
blobs are stored as deltas (copy/insert opcodes against a base blob chosen
from a sliding window, kept only when materially smaller than the compressed
full payload).  :meth:`repack` rewrites all packs as one, re-running delta
selection over the full object population; with a ``keep`` set it doubles as
the garbage collector.  A missing/corrupt ``.idx`` is rebuilt by scanning the
pack, so the index is a cache, never the source of truth.

Two structures keep the read path flat as packs accumulate between repacks:

* a **multi-pack index** (``multi-pack-index.midx``): one merged fanout over
  every pack, mapping each oid to ``(pack, record offset)``, rebuilt on
  ``flush``/``repack`` and validated against the pack set on open — a cold
  open with a valid midx reads one index file no matter how many packs
  exist, and every lookup is a single bisect instead of a per-pack probe
  loop.  Like the per-pack ``.idx`` it is a cache: stale, missing or corrupt
  midx files are rebuilt from the per-pack indexes (which are themselves
  recoverable by scanning the packs);
* a **bounded handle pool**: pack file handles are opened lazily and kept in
  an LRU of at most ``handle_limit`` open files, so a store fragmented into
  many packs cannot hold one descriptor per pack forever.

Concurrency: mutators (write, flush, repack, gc, close) run under the
backend write lock; readers run lock-free against an immutable
``(packs, midx)`` pair published in a single reference assignment
(:attr:`PackBackend._state`), so a lookup can never pair a new multi-pack
index with an old pack list or vice versa.  ``flush`` publishes the new
state *before* dropping the pending buffer (an object is always findable in
at least one of the two), and ``repack`` publishes before unlinking the
stale packs — a reader that raced the swap and hit a just-unlinked file
gets one retry against the fresh state.
"""

from __future__ import annotations

import hashlib
import heapq
import os
import struct
import threading
import zlib
from bisect import bisect_left
from collections import OrderedDict
from difflib import SequenceMatcher
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator

from repro.errors import CorruptObjectError, StorageError
from repro.utils import atomicio
from repro.utils.hashing import object_id
from repro.vcs.storage.base import ObjectBackend

__all__ = ["PackBackend"]

_PACK_MAGIC = b"RPCK1\n"
_INDEX_MAGIC = b"RIDX1\n"
_MIDX_MAGIC = b"RMIDX1\n"
_MIDX_NAME = "multi-pack-index.midx"
#: Upper bound on simultaneously open pack file handles.
_DEFAULT_HANDLE_LIMIT = 32
#: Longest possible record header line, with margin (kind + type + 2 oids).
_MAX_HEADER_BYTES = 160
#: How many recently packed blobs are considered as delta bases.
_DELTA_WINDOW = 8
#: A delta is kept only when its compressed size beats this fraction of the
#: compressed full payload.
_DELTA_KEEP_RATIO = 0.75
#: On-disk cost a delta record pays over a full record (the base oid plus a
#: space in the header line); charged during delta acceptance so tiny blobs
#: whose body saving is smaller than the header growth stay full records.
_DELTA_HEADER_EXTRA = 41
#: Blobs larger than this are never delta-compressed.
_DELTA_MAX_BYTES = 4 * 1024 * 1024
#: Above this size only the linear prefix/suffix trim is attempted
#: (SequenceMatcher is quadratic in the worst case).
_SEQUENCE_MATCH_MAX_BYTES = 64 * 1024


# ---------------------------------------------------------------------------
# Delta encoding: copy/insert opcodes against a base payload
# ---------------------------------------------------------------------------


def encode_delta(base: bytes, target: bytes) -> bytes:
    """Encode ``target`` as copy/insert opcodes against ``base``.

    Two strategies, cheapest first: a linear common-prefix/common-suffix trim
    (covers the dominant versioned-file shape — an edit or append somewhere
    in an otherwise identical payload), falling back to full
    :class:`difflib.SequenceMatcher` opcodes for small payloads where the
    trim left too much literal middle.
    """
    prefix = 0
    limit = min(len(base), len(target))
    while prefix < limit and base[prefix] == target[prefix]:
        prefix += 1
    suffix = 0
    while (
        suffix < limit - prefix
        and base[len(base) - 1 - suffix] == target[len(target) - 1 - suffix]
    ):
        suffix += 1
    middle = len(target) - prefix - suffix
    if middle <= len(target) // 2 or len(target) > _SEQUENCE_MATCH_MAX_BYTES:
        chunks: list[bytes] = []
        if prefix:
            chunks.append(b"C %d %d\n" % (0, prefix))
        if middle:
            chunks.append(b"I %d\n" % middle)
            chunks.append(target[prefix:prefix + middle])
        if suffix:
            chunks.append(b"C %d %d\n" % (len(base) - suffix, suffix))
        return b"".join(chunks)
    matcher = SequenceMatcher(a=base, b=target, autojunk=False)
    chunks = []
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            chunks.append(b"C %d %d\n" % (i1, i2 - i1))
        elif j2 > j1:
            chunks.append(b"I %d\n" % (j2 - j1))
            chunks.append(target[j1:j2])
    return b"".join(chunks)


def apply_delta(base: bytes, delta: bytes) -> bytes:
    """Reconstruct the target payload from ``base`` and an encoded delta."""
    output: list[bytes] = []
    position = 0
    while position < len(delta):
        newline = delta.index(b"\n", position)
        fields = delta[position:newline].split(b" ")
        position = newline + 1
        if fields[0] == b"C":
            offset, length = int(fields[1]), int(fields[2])
            output.append(base[offset:offset + length])
        elif fields[0] == b"I":
            length = int(fields[1])
            output.append(delta[position:position + length])
            position += length
        else:
            raise ValueError(f"unknown delta opcode: {fields[0]!r}")
    return b"".join(output)


def delta_output_length(delta: bytes) -> int:
    """Target payload size encoded by a delta, without applying it."""
    total = 0
    position = 0
    while position < len(delta):
        newline = delta.index(b"\n", position)
        fields = delta[position:newline].split(b" ")
        position = newline + 1
        if fields[0] == b"C":
            total += int(fields[2])
        else:
            length = int(fields[1])
            total += length
            position += length
    return total


def _delta_worth_trying(base: bytes, target: bytes) -> bool:
    if not base or not target:
        return False
    if len(base) > _DELTA_MAX_BYTES or len(target) > _DELTA_MAX_BYTES:
        return False
    longer, shorter = max(len(base), len(target)), min(len(base), len(target))
    return shorter * 2 >= longer


# ---------------------------------------------------------------------------
# Bounded pool of open pack file handles
# ---------------------------------------------------------------------------


class _HandlePool:
    """An LRU of open read handles, bounded to ``limit`` descriptors.

    Thread-safe: the LRU bookkeeping runs under a lock, and record access
    reads through :func:`os.pread` (no shared seek position), so one handle
    can serve any number of reader threads.  A handle evicted or closed
    while another thread is mid-read surfaces as ``OSError``/``ValueError``
    there, which the backend's read retry re-acquires through a fresh open.
    """

    def __init__(self, limit: int = _DEFAULT_HANDLE_LIMIT) -> None:
        self.limit = max(1, limit)
        self._handles: "OrderedDict[Path, BinaryIO]" = OrderedDict()  # guarded-by: _lock
        self._lock = threading.Lock()

    def acquire(self, path: Path) -> BinaryIO:
        with self._lock:
            handle = self._handles.get(path)
            if handle is not None and not handle.closed:
                self._handles.move_to_end(path)
                return handle
            handle = path.open("rb")
            self._handles[path] = handle
            while len(self._handles) > self.limit:
                _, evicted = self._handles.popitem(last=False)
                evicted.close()
            return handle

    def discard(self, path: Path) -> None:
        with self._lock:
            handle = self._handles.pop(path, None)
        if handle is not None:
            handle.close()

    def close_all(self) -> None:
        with self._lock:
            handles = list(self._handles.values())
            self._handles.clear()
        for handle in handles:
            handle.close()

    @property
    def open_count(self) -> int:
        with self._lock:
            return sum(1 for handle in self._handles.values() if not handle.closed)


# ---------------------------------------------------------------------------
# A single on-disk pack and its fanout index
# ---------------------------------------------------------------------------


class _PackFile:
    """One immutable pack file plus its (lazily loaded) fanout index.

    With ``defer_index=True`` the ``.idx`` is not touched until the first
    per-pack lookup — a backend whose multi-pack index is valid never loads
    it at all.  ``pool`` shares a bounded handle pool across packs; without
    one the pack owns a private handle (standalone/test use).
    """

    def __init__(self, pack_path: Path, pool: _HandlePool | None = None,
                 defer_index: bool = False) -> None:
        self.path = pack_path
        self.index_path = pack_path.with_suffix(".idx")
        self._pool = pool
        self._handle = None
        self._oids: list[str] = []
        self._offsets: list[int] = []
        self._fanout: list[int] = [0] * 257
        self._indexed = False
        if not defer_index:
            self._ensure_index()

    def _ensure_index(self) -> None:
        if self._indexed:
            return
        if self.index_path.is_file():
            try:
                self._load_index()
                self._indexed = True
                return
            except (OSError, ValueError, struct.error):
                pass  # fall through to a rebuild from the pack itself
        self._rebuild_index()
        self._indexed = True

    # -- index (de)serialisation ------------------------------------------

    def _load_index(self) -> None:
        raw = self.index_path.read_bytes()
        if not raw.startswith(_INDEX_MAGIC):
            raise ValueError("bad index magic")
        cursor = len(_INDEX_MAGIC)
        counts = struct.unpack_from(">256I", raw, cursor)
        cursor += 256 * 4
        total = counts[255]
        self._fanout = [0] + list(counts)
        oids: list[str] = []
        offsets: list[int] = []
        for _ in range(total):
            oid_bytes = raw[cursor:cursor + 20]
            (offset,) = struct.unpack_from(">Q", raw, cursor + 20)
            oids.append(oid_bytes.hex())
            offsets.append(offset)
            cursor += 28
        self._oids = oids
        self._offsets = offsets

    @staticmethod
    def write_index(index_path: Path, entries: list[tuple[str, int]]) -> None:
        """Write the sorted fanout index for ``(oid, offset)`` entries."""
        entries = sorted(entries)
        counts = [0] * 256
        for oid, _ in entries:
            counts[int(oid[:2], 16)] += 1
        cumulative = []
        running = 0
        for count in counts:
            running += count
            cumulative.append(running)
        blob = bytearray(_INDEX_MAGIC)
        blob += struct.pack(">256I", *cumulative)
        for oid, offset in entries:
            blob += bytes.fromhex(oid)
            blob += struct.pack(">Q", offset)
        # The idx is a rebuildable cache of its pack, so the write is atomic
        # (no torn index is ever visible) but not fsynced — losing it to a
        # power cut costs one pack scan on the next open, not data.
        atomicio.atomic_write_bytes(index_path, bytes(blob), failpoint="pack.idx")

    def _rebuild_index(self) -> None:
        """Recover the index by scanning the pack records sequentially."""
        entries: list[tuple[str, int]] = []
        with self.path.open("rb") as handle:
            magic = handle.read(len(_PACK_MAGIC))
            if magic != _PACK_MAGIC:
                raise StorageError(f"{self.path} is not a pack file")
            offset = handle.tell()
            while True:
                chunk = handle.read(_MAX_HEADER_BYTES)
                if not chunk:
                    break
                newline = chunk.find(b"\n")
                if newline < 0:
                    raise StorageError(f"unterminated record header in {self.path}")
                fields = chunk[:newline].decode("ascii").split(" ")
                oid, csize = fields[2], int(fields[3])
                entries.append((oid, offset))
                offset += newline + 1 + csize
                handle.seek(offset)
        self.write_index(self.index_path, entries)
        self._load_index()

    # -- lookups -----------------------------------------------------------

    def __len__(self) -> int:
        self._ensure_index()
        return len(self._oids)

    @property
    def oids(self) -> list[str]:
        self._ensure_index()
        return self._oids

    def entries(self) -> Iterator[tuple[str, int]]:
        """Sorted ``(oid, offset)`` pairs (the midx merges these)."""
        self._ensure_index()
        return zip(self._oids, self._offsets)

    def lookup(self, oid: str) -> int | None:
        """Record offset of ``oid`` via fanout bucket + bisect, or ``None``.

        Malformed ids (short, non-hex — e.g. an unknown ref name probed via
        ``__contains__``) are simply absent, never an error.
        """
        try:
            bucket = int(oid[:2], 16)
        except ValueError:
            return None
        if bucket < 0 or len(oid) != 40:
            return None
        self._ensure_index()
        low, high = self._fanout[bucket], self._fanout[bucket + 1]
        position = bisect_left(self._oids, oid, low, high)
        if position < high and self._oids[position] == oid:
            return self._offsets[position]
        return None

    # -- record access -----------------------------------------------------

    def _file(self):
        if self._pool is not None:
            return self._pool.acquire(self.path)
        if self._handle is None:
            self._handle = self.path.open("rb")
        return self._handle

    def _read_at(self, offset: int, size: int) -> bytes:
        """Read ``size`` bytes at ``offset`` without a shared seek position.

        :func:`os.pread` keeps one pooled handle safe under any number of
        concurrent readers (each call carries its own offset); the
        seek+read fallback covers platforms without it, where the backend's
        write lock is the only serialisation.
        """
        handle = self._file()
        if hasattr(os, "pread"):
            return os.pread(handle.fileno(), size, offset)
        handle.seek(offset)
        return handle.read(size)

    def read_record(self, offset: int) -> tuple[str, str, bytes, str | None]:
        """Return ``(kind, type, data, base oid)`` for the record at ``offset``."""
        chunk = self._read_at(offset, _MAX_HEADER_BYTES)
        newline = chunk.find(b"\n")
        if newline < 0:
            raise StorageError(f"unterminated record header in {self.path} at {offset}")
        fields = chunk[:newline].decode("ascii").split(" ")
        kind, type_name, oid, csize = fields[0], fields[1], fields[2], int(fields[3])
        base_oid = fields[4] if kind == "delta" else None
        compressed = chunk[newline + 1:newline + 1 + csize]
        if len(compressed) < csize:
            compressed += self._read_at(
                offset + newline + 1 + len(compressed), csize - len(compressed)
            )
        try:
            data = zlib.decompress(compressed)
        except zlib.error as exc:
            raise CorruptObjectError(oid, f"zlib decompression failed: {exc}") from exc
        return kind, type_name, data, base_oid

    def read_header(self, offset: int) -> tuple[str, str, str | None]:
        """Return ``(kind, type, base oid)`` without decompressing the data."""
        chunk = self._read_at(offset, _MAX_HEADER_BYTES)
        newline = chunk.find(b"\n")
        if newline < 0:
            raise StorageError(f"unterminated record header in {self.path} at {offset}")
        fields = chunk[:newline].decode("ascii").split(" ")
        return fields[0], fields[1], fields[4] if fields[0] == "delta" else None

    def close(self) -> None:
        if self._pool is not None:
            self._pool.discard(self.path)
        if self._handle is not None:
            self._handle.close()
            self._handle = None


# ---------------------------------------------------------------------------
# The multi-pack index
# ---------------------------------------------------------------------------


class _MultiPackIndex:
    """One merged fanout index across every pack of a backend.

    ``multi-pack-index.midx`` layout::

        b"RMIDX1\\n"
        uint32 pack count
        per pack: uint16 name length + ascii pack file name
        256 big-endian uint32 cumulative bucket counts (fanout over oid[0:2])
        per oid, sorted: 20 raw oid bytes + uint32 pack number + uint64 offset

    The recorded pack-name list doubles as the staleness check: packs are
    immutable and digest-named, so the midx is valid exactly when its name
    list matches the backend's current packs (in order).  Duplicated oids
    keep their first (oldest-pack) entry; any copy verifies against the oid
    on read, so the choice is free.
    """

    def __init__(self, root: Path) -> None:
        self.path = root / _MIDX_NAME
        self.pack_names: list[str] = []
        self._oids: list[str] = []
        self._pack_numbers: list[int] = []
        self._offsets: list[int] = []
        self._fanout: list[int] = [0] * 257

    # -- construction ------------------------------------------------------

    @classmethod
    def load(cls, root: Path, expected_names: set[str]) -> "_MultiPackIndex | None":
        """Load a midx covering exactly the pack set ``expected_names``.

        Pack *order* is whatever the midx recorded (append order — the
        backend re-orders its pack list to match); a differing name set
        means packs were added or removed behind the midx, so it is stale
        and ``None`` is returned for a rebuild.
        """
        midx = cls(root)
        if not midx.path.is_file():
            return None
        try:
            raw = midx.path.read_bytes()
            if not raw.startswith(_MIDX_MAGIC):
                return None
            cursor = len(_MIDX_MAGIC)
            (pack_count,) = struct.unpack_from(">I", raw, cursor)
            cursor += 4
            names: list[str] = []
            for _ in range(pack_count):
                (name_length,) = struct.unpack_from(">H", raw, cursor)
                cursor += 2
                names.append(raw[cursor:cursor + name_length].decode("ascii"))
                cursor += name_length
            if set(names) != expected_names or len(names) != len(expected_names):
                return None
            counts = struct.unpack_from(">256I", raw, cursor)
            cursor += 256 * 4
            midx._fanout = [0] + list(counts)
            for _ in range(counts[255]):
                oid_bytes = raw[cursor:cursor + 20]
                pack_number, offset = struct.unpack_from(">IQ", raw, cursor + 20)
                midx._oids.append(oid_bytes.hex())
                midx._pack_numbers.append(pack_number)
                midx._offsets.append(offset)
                cursor += 32
        except (OSError, ValueError, struct.error):
            return None
        midx.pack_names = names
        return midx

    @classmethod
    def build(
        cls,
        root: Path,
        streams: list[tuple[str, Iterable[tuple[str, int]]]],
        write: bool = True,
    ) -> "_MultiPackIndex":
        """Merge per-pack ``(oid, offset)`` streams into one index.

        ``streams`` pairs each pack file name with its sorted entries —
        either a pack's own ``.idx`` content or a slice of a previous midx,
        so appending a pack never forces older packs' indexes to be read.
        """
        midx = cls(root)
        midx.pack_names = [name for name, _ in streams]

        def tag(number: int, entries: Iterable[tuple[str, int]]):
            for oid, offset in entries:
                yield oid, number, offset

        tagged = [tag(number, entries) for number, (_, entries) in enumerate(streams)]
        previous = None
        for oid, pack_number, offset in heapq.merge(*tagged):
            if oid == previous:
                continue
            previous = oid
            midx._oids.append(oid)
            midx._pack_numbers.append(pack_number)
            midx._offsets.append(offset)
        counts = [0] * 256
        for oid in midx._oids:
            counts[int(oid[:2], 16)] += 1
        running = 0
        fanout = [0]
        for count in counts:
            running += count
            fanout.append(running)
        midx._fanout = fanout
        if write:
            midx._write()
        return midx

    def _write(self) -> None:
        blob = bytearray(_MIDX_MAGIC)
        blob += struct.pack(">I", len(self.pack_names))
        for name in self.pack_names:
            encoded = name.encode("ascii")
            blob += struct.pack(">H", len(encoded))
            blob += encoded
        blob += struct.pack(">256I", *self._fanout[1:])
        for oid, pack_number, offset in zip(self._oids, self._pack_numbers, self._offsets):
            blob += bytes.fromhex(oid)
            blob += struct.pack(">IQ", pack_number, offset)
        try:
            atomicio.atomic_write_bytes(self.path, bytes(blob), failpoint="pack.midx")
        except OSError:
            # The midx is a cache; an unwritable one degrades to the
            # in-memory copy for this process and a rebuild next open.
            pass

    # -- queries -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._oids)

    @property
    def oids(self) -> list[str]:
        return self._oids

    def lookup(self, oid: str) -> tuple[int, int] | None:
        """``(pack number, record offset)`` for ``oid``, or ``None``."""
        try:
            bucket = int(oid[:2], 16)
        except ValueError:
            return None
        if bucket < 0 or len(oid) != 40:
            return None
        low, high = self._fanout[bucket], self._fanout[bucket + 1]
        position = bisect_left(self._oids, oid, low, high)
        if position < high and self._oids[position] == oid:
            return self._pack_numbers[position], self._offsets[position]
        return None

    def entries_by_pack(self) -> list[list[tuple[str, int]]]:
        """Per-pack sorted ``(oid, offset)`` lists, one scan over the index
        (for append merges — older packs' ``.idx`` files stay untouched)."""
        buckets: list[list[tuple[str, int]]] = [[] for _ in self.pack_names]
        for oid, number, offset in zip(self._oids, self._pack_numbers, self._offsets):
            buckets[number].append((oid, offset))
        return buckets


# ---------------------------------------------------------------------------
# The backend proper
# ---------------------------------------------------------------------------


class PackBackend(ObjectBackend):
    """Buffered writes + append-only packs + fanout-indexed reads.

    ``use_midx`` (default on) maintains the multi-pack index so lookups are
    one bisect across all packs and cold opens read a single index file;
    ``handle_limit`` bounds the pool of simultaneously open pack handles.
    """

    kind = "pack"

    def __init__(self, root: str | Path, use_midx: bool = True,
                 handle_limit: int = _DEFAULT_HANDLE_LIMIT) -> None:
        super().__init__()
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StorageError(f"cannot create pack directory {self.root}: {exc}") from exc
        # Orphans from writers that crashed mid-write (torn temp files that
        # never reached their rename) are garbage by construction: any
        # ``.tmp-*`` visible at open time has no live writer behind it.
        atomicio.sweep_orphan_tmp(self.root)
        self._pending: dict[str, tuple[str, bytes]] = {}  # guarded-by: _write_lock
        self._pool = _HandlePool(handle_limit)
        self._use_midx = use_midx
        packs: list[_PackFile] = []
        for pack_path in sorted(self.root.glob("pack-*.pack")):
            packs.append(_PackFile(pack_path, pool=self._pool, defer_index=use_midx))
        midx: _MultiPackIndex | None = None
        if use_midx:
            midx = _MultiPackIndex.load(self.root, {pack.path.name for pack in packs})
            if midx is not None:
                # The midx's entries are keyed by its own (append-order)
                # pack numbering; adopt that ordering.
                by_name = {pack.path.name: pack for pack in packs}
                packs = [by_name[name] for name in midx.pack_names]
            else:
                # Missing/stale/corrupt: rebuild from the per-pack indexes
                # (each itself recoverable by scanning its pack).
                midx = _MultiPackIndex.build(
                    self.root,
                    [(pack.path.name, pack.entries()) for pack in packs],
                )
        #: The lock-free read view: an immutable (packs, midx) pair, always
        #: replaced with a single reference assignment so readers can never
        #: observe a midx whose pack numbers index a different pack list.
        self._state: tuple[tuple[_PackFile, ...], _MultiPackIndex | None] = (  # guarded-by: _write_lock
            tuple(packs), midx,
        )

    @property
    def _packs(self) -> tuple[_PackFile, ...]:
        """The current pack list (read-only snapshot component)."""
        return self._state[0]

    @property
    def _midx(self) -> _MultiPackIndex | None:
        """The current multi-pack index (read-only snapshot component)."""
        return self._state[1]

    # -- core API ----------------------------------------------------------

    def write(self, oid: str, type_name: str, payload: bytes) -> bool:
        with self._write_lock:
            if oid in self:
                return False
            self._pending[oid] = (type_name, payload)
            self.mutation_counter += 1
            return True

    def write_many(self, records) -> int:
        """Batch writes into the pending buffer with one mutation bump."""
        with self._write_lock:
            added = 0
            for oid, type_name, payload in records:
                if oid not in self:
                    self._pending[oid] = (type_name, payload)
                    added += 1
            if added:
                self.mutation_counter += 1
            return added

    def _packed_lookup(self, oid: str) -> tuple[_PackFile, int] | None:
        packs, midx = self._state
        if midx is not None:
            located = midx.lookup(oid)
            if located is None:
                return None
            pack_number, offset = located
            return packs[pack_number], offset
        for pack in packs:
            offset = pack.lookup(oid)
            if offset is not None:
                return pack, offset
        return None

    def _base_offset_in(self, pack: _PackFile, base_oid: str) -> int | None:
        """Offset of a delta's base record, which lives in the same pack.

        The midx may map a duplicated base oid to a *different* pack, so it
        is only trusted when it points into ``pack``; otherwise the pack's
        own index answers.
        """
        packs, midx = self._state
        if midx is not None:
            located = midx.lookup(base_oid)
            if located is not None and located[0] < len(packs) and packs[located[0]] is pack:
                return located[1]
        return pack.lookup(base_oid)

    def _read_packed(self, pack: _PackFile, offset: int, oid: str) -> tuple[str, bytes]:
        kind, type_name, data, base_oid = pack.read_record(offset)
        if kind == "delta":
            base_offset = self._base_offset_in(pack, base_oid) if base_oid else None
            if base_offset is None:
                raise CorruptObjectError(oid, f"delta base {base_oid} missing from pack")
            base_kind, _, base_data, _ = pack.read_record(base_offset)
            if base_kind != "full":
                raise CorruptObjectError(oid, f"delta base {base_oid} is not a full record")
            try:
                data = apply_delta(base_data, data)
            except (ValueError, IndexError) as exc:
                raise CorruptObjectError(oid, f"malformed delta body: {exc}") from exc
        if object_id(type_name, data) != oid:
            raise CorruptObjectError(oid, "payload does not hash to the indexed oid")
        return type_name, data

    def _read_record(self, oid: str, reader):
        """The lock-free read skeleton: pending buffer, then packed lookup.

        ``reader(pack, offset)`` does the actual record access.  A reader
        that raced a concurrent flush may find the oid in neither the
        pending dict it snapshotted nor the state it looked up (the buffer
        was dropped between the two); one that raced a repack may hit a
        just-unlinked pack file (``OSError``), a pooled handle the repack
        closed mid-read (``ValueError`` from the closed file object), or —
        when an idempotent repack atomically replaced the pack *at the same
        path* — a stale offset into the new file, which parses as garbage
        (``StorageError``, ``CorruptObjectError``, ``IndexError``,
        ``ValueError``).  Either way a single retry against the freshly
        published state settles it — mutators hold the write lock, so at
        most one swap was in flight.  An error that *survives* the retry is
        re-raised as-is: at that point it is genuine corruption, not a race.
        """
        last_error: BaseException = KeyError(oid)
        for _attempt in range(2):
            pending = self._pending
            if oid in pending:
                try:
                    return pending[oid], None
                except KeyError:
                    pass  # flush swapped the buffer between the check and the read
            located = self._packed_lookup(oid)
            if located is not None:
                pack, offset = located
                try:
                    return None, reader(pack, offset)
                except (OSError, ValueError, IndexError, StorageError, CorruptObjectError) as exc:
                    last_error = exc
                    continue
        if isinstance(last_error, (KeyError, StorageError, CorruptObjectError)):
            raise last_error
        raise KeyError(oid) from last_error

    def read(self, oid: str) -> tuple[str, bytes]:
        buffered, packed = self._read_record(
            oid, lambda pack, offset: self._read_packed(pack, offset, oid)
        )
        return buffered if buffered is not None else packed

    def read_type(self, oid: str) -> str:
        buffered, packed = self._read_record(
            oid, lambda pack, offset: pack.read_header(offset)[1]
        )
        return buffered[0] if buffered is not None else packed

    def read_many(self, oids: Iterable[str]) -> Iterator[tuple[str, str, bytes]]:
        """Batched reads grouped per pack and sorted by record offset.

        One handle acquisition per touched pack and a monotonically forward
        seek pattern inside each, instead of a per-oid index probe + random
        seek — this is what serves the lazy worktree's whole-tree
        materialisation without churning the handle pool.
        """
        pending = self._pending
        per_pack: dict[int, list[tuple[int, str]]] = {}
        packs_by_id: dict[int, _PackFile] = {}
        for oid in oids:
            if oid in pending:
                type_name, payload = pending[oid]
                yield oid, type_name, payload
                continue
            located = self._packed_lookup(oid)
            if located is None:
                raise KeyError(oid)
            pack, offset = located
            packs_by_id[id(pack)] = pack
            per_pack.setdefault(id(pack), []).append((offset, oid))
        for pack_id, records in per_pack.items():
            pack = packs_by_id[pack_id]
            for offset, oid in sorted(records):
                try:
                    type_name, payload = self._read_packed(pack, offset, oid)
                except (OSError, ValueError, IndexError, StorageError, CorruptObjectError):
                    # A repack swapped the pack set (unlinked the file,
                    # closed its pooled handle, or replaced it in place)
                    # mid-batch; the single-read path re-resolves against
                    # the fresh state and re-raises genuine corruption.
                    type_name, payload = self.read(oid)
                yield oid, type_name, payload

    def read_size(self, oid: str) -> int:
        """Logical payload size from the record alone — full records report
        their decompressed length, delta records the length their opcodes
        encode; neither applies the delta or re-verifies the hash."""

        def sized(pack: _PackFile, offset: int) -> int:
            kind, _, data, _ = pack.read_record(offset)
            return delta_output_length(data) if kind == "delta" else len(data)

        buffered, packed = self._read_record(oid, sized)
        return len(buffered[1]) if buffered is not None else packed

    def __contains__(self, oid: str) -> bool:
        return oid in self._pending or self._packed_lookup(oid) is not None

    def __len__(self) -> int:
        return sum(1 for _ in self.iter_oids())

    def iter_oids(self) -> Iterator[str]:
        """All oids in sorted order (merge of pending + packed indexes)."""
        # One coherent snapshot up front: the pending buffer reference and
        # the (packs, midx) pair, so a concurrent flush/repack cannot make
        # oids flicker in and out mid-iteration.
        pending = self._pending
        packs, midx = self._state
        streams: list[Iterable[str]] = [sorted(pending)]
        if midx is not None:
            streams.append(midx.oids)
        else:
            streams.extend(pack.oids for pack in packs)
        previous = None
        for oid in heapq.merge(*streams):
            if oid != previous:
                previous = oid
                yield oid

    # -- pack writing ------------------------------------------------------

    @staticmethod
    def _delta_order(oids: Iterable[str], describe) -> list[str]:
        """Order a record stream so the delta window actually hits.

        ``describe(oid)`` returns ``(type name, payload size)``.  Non-blobs
        (small, rarely similar) go first sorted by oid; blobs follow sorted
        by (size, oid) — revisions of the same file have near-identical
        sizes, so similar payloads land inside the sliding window.  (An
        oid-sorted stream scatters revisions randomly and the window almost
        never hits.)
        """
        blobs: list[tuple[int, str]] = []
        others: list[str] = []
        for oid in oids:
            type_name, size = describe(oid)
            if type_name == "blob":
                blobs.append((size, oid))
            else:
                others.append(oid)
        return sorted(others) + [oid for _, oid in sorted(blobs)]

    def _write_pack_stream(
        self, ordered: list[str], fetch, failpoint: str = "storage.flush"
    ) -> _PackFile:
        """Write one pack (+ index) from ``fetch(oid) → (type, payload)``.

        Streaming: each record is compressed and written as it is fetched,
        and only the delta window (≤ ``_DELTA_WINDOW`` full blob payloads)
        is held in memory — repacking a store larger than RAM stays within
        the layout's own scaling claim.  The pack lands via a fsynced temp
        file + atomic rename (pack data is source of truth, unlike the
        rebuildable idx/midx caches), so a crash mid-write leaves no
        half-pack behind and a completed pack survives a power cut.
        """
        digest = hashlib.sha1("\n".join(sorted(ordered)).encode("ascii")).hexdigest()[:16]
        pack_path = self.root / f"pack-{digest}.pack"
        entries: list[tuple[str, int]] = []
        #: Sliding window of recently written *full* blob payloads.
        window: list[tuple[str, bytes]] = []
        out = atomicio.AtomicFile(pack_path, durable=True, failpoint=failpoint)
        try:
            out.write(_PACK_MAGIC)
            for oid in ordered:
                type_name, payload = fetch(oid)
                full_compressed = zlib.compress(payload)
                best: tuple[str, bytes] | None = None
                if type_name == "blob":
                    # Most recent window entry first; the first acceptable
                    # delta wins (git's heuristic, depth capped at 1).
                    for base_oid, base_payload in reversed(window):
                        if not _delta_worth_trying(base_payload, payload):
                            continue
                        delta_compressed = zlib.compress(encode_delta(base_payload, payload))
                        delta_cost = len(delta_compressed) + _DELTA_HEADER_EXTRA
                        if delta_cost < _DELTA_KEEP_RATIO * len(full_compressed):
                            best = (base_oid, delta_compressed)
                            break
                if best is not None:
                    base_oid, body = best
                    header = f"delta {type_name} {oid} {len(body)} {base_oid}"
                else:
                    body = full_compressed
                    header = f"full {type_name} {oid} {len(body)}"
                    if type_name == "blob":
                        window.append((oid, payload))
                        if len(window) > _DELTA_WINDOW:
                            window.pop(0)
                entries.append((oid, out.tell()))
                out.write(header.encode("ascii") + b"\n")
                out.write(body)
            out.commit()
        finally:
            out.close()
        _PackFile.write_index(pack_path.with_suffix(".idx"), entries)
        return _PackFile(pack_path, pool=self._pool)

    def _write_pack(self, objects: dict[str, tuple[str, bytes]]) -> _PackFile:
        """Materialise in-memory ``objects`` as one pack (+ index)."""
        ordered = self._delta_order(
            objects, lambda oid: (objects[oid][0], len(objects[oid][1]))
        )
        return self._write_pack_stream(ordered, objects.__getitem__)

    def _build_midx(
        self, packs: tuple[_PackFile, ...], appended: _PackFile | None = None
    ) -> _MultiPackIndex | None:
        """Build the multi-pack index for a prospective pack set.

        Appending a pack merges the previous midx with the new pack's
        entries — older packs' ``.idx`` files are not re-read.  Pure with
        respect to the backend: the caller publishes the result together
        with ``packs`` in one state swap.
        """
        if not self._use_midx:
            return None
        current = self._state[1]
        if (
            appended is not None
            and current is not None
            and current.pack_names == [p.path.name for p in packs[:-1]]
        ):
            streams = list(zip(current.pack_names, current.entries_by_pack()))
            streams.append((appended.path.name, list(appended.entries())))
        else:
            streams = [(pack.path.name, pack.entries()) for pack in packs]
        return _MultiPackIndex.build(self.root, streams)

    def flush(self) -> None:
        """Append pending objects as a new pack file (and refresh the midx)."""
        with self._write_lock:
            if not self._pending:
                return
            new_pack = self._write_pack(self._pending)
            packs = self._state[0] + (new_pack,)
            self._state = (packs, self._build_midx(packs, appended=new_pack))
            # Drop the buffer only after the new state is visible: a reader
            # finds every flushed oid in the old pending dict it snapshotted
            # or in the just-published pack — never in neither.
            self._pending = {}

    def close(self) -> None:
        with self._write_lock:
            self.flush()
            for pack in self._state[0]:
                pack.close()
            self._pool.close_all()

    def open_file_handles(self) -> int:
        """How many pack file handles are currently open (pool-bounded)."""
        return self._pool.open_count

    # -- maintenance -------------------------------------------------------

    def repack(self, keep: set[str] | None = None) -> dict:
        """Rewrite everything (pending included) as a single optimised pack.

        ``keep`` restricts the survivors — that is the gc entry point.  The
        operation is idempotent: repacking an already single-pack store
        rewrites it to the identical object population.  The replacement
        pack is fully written and indexed *before* the stale packs are
        deleted, so a crash or full disk mid-repack never loses objects;
        only the delta window is held in memory, never the whole store.
        """
        with self._write_lock:
            before = self.stats()
            self.flush()
            survivors = [
                oid for oid in self.iter_oids() if keep is None or oid in keep
            ]

            def describe(oid: str) -> tuple[str, int]:
                # Type + logical size from the record alone: one
                # decompression, no delta application, no hash verification —
                # the sizing pass must not double the full read cost of the
                # write pass.
                pack, offset = self._packed_lookup(oid)
                kind, type_name, data, _ = pack.read_record(offset)
                size = delta_output_length(data) if kind == "delta" else len(data)
                return type_name, size

            ordered = self._delta_order(survivors, describe)
            old_packs = self._state[0]
            new_pack = (
                self._write_pack_stream(ordered, self.read, failpoint="pack.repack")
                if ordered
                else None
            )
            # Publish the replacement view *before* unlinking the stale
            # packs: a reader that raced the swap at worst touches a
            # just-unlinked file and retries against this state.
            packs = (new_pack,) if new_pack is not None else ()
            self._state = (packs, self._build_midx(packs))
            for pack in old_packs:
                pack.close()
                if new_pack is not None and pack.path == new_pack.path:
                    continue  # idempotent repack: replaced atomically in place
                for stale in (pack.path, pack.index_path):
                    try:
                        stale.unlink()
                    except OSError:
                        pass
            dropped = before["objects"] - len(ordered)
            if dropped:
                self.mutation_counter += 1
            after = self.stats()
        return {
            "objects_before": before["objects"],
            "objects_after": len(ordered),
            "objects_dropped": dropped,
            "packs_before": before["packs"],
            "packs_after": after["packs"],
            "disk_bytes_before": before["disk_bytes"],
            "disk_bytes_after": after["disk_bytes"],
        }

    def gc(self, keep: set[str]) -> int:
        return self.repack(keep=keep)["objects_dropped"]

    def on_disk_bytes(self) -> int:
        """Total pack + index bytes currently stored under the root."""
        total = 0
        for pack in self._packs:
            for path in (pack.path, pack.index_path):
                if path.is_file():
                    total += path.stat().st_size
        return total

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "objects": len(self),
            "packs": len(self._packs),
            "pending": len(self._pending),
            "disk_bytes": self.on_disk_bytes(),
            "open_handles": self.open_file_handles(),
            "midx": self._midx is not None,
            "root": str(self.root),
        }
