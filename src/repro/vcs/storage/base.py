"""The abstract storage-backend API behind :class:`~repro.vcs.object_store.ObjectStore`.

A backend is a dumb, typed byte store: it maps a 40-character object id to a
``(type name, payload bytes)`` pair and knows nothing about blobs, trees or
commits.  All object semantics (hashing, (de)serialisation, prefix
resolution, caching) live in the :class:`ObjectStore` facade, which is why
three very different layouts — an in-memory dict, sharded loose files and
append-only pack files — can sit behind the same five methods.

Every mutation bumps :attr:`ObjectBackend.mutation_counter`.  The facade's
lazily sorted oid index records the counter value it was built against and
rebuilds itself whenever the counter moved, so writes that bypass
``ObjectStore.put`` (raw transfers, migrations, direct backend writes) can
never leave a stale prefix index behind.

Thread-safety contract
----------------------
Backends are *single-writer-at-a-time, many-readers*: every state-changing
operation (write, write_many, flush, gc, repack, migrate) runs under the
backend's re-entrant :attr:`ObjectBackend._write_lock`, while readers take
**no lock at all**.  That asymmetry is deliberate — a hosted repository must
keep answering reads (clones, upload-pack negotiations) while a push is
flushing a pack — and it obliges every mutator to leave the backend readable
at all times: publish new state with single reference assignments, append
before you clear, and never let a reader observe a half-swapped index.  The
pack backend's atomically swapped ``(packs, midx)`` snapshot is the model.
"""

from __future__ import annotations

import threading
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterable, Iterator, Union

from repro.errors import StorageError

__all__ = ["ObjectBackend", "BackendSpec", "make_backend", "backend_kinds"]


class ObjectBackend(ABC):
    """Raw ``oid → (type, payload)`` storage with a mutation counter."""

    #: Short machine-readable layout name (``"memory"``/``"loose"``/``"pack"``).
    kind: str = "abstract"

    def __init__(self) -> None:
        #: Monotonic counter bumped by every state-changing operation.
        self.mutation_counter = 0  # guarded-by: _write_lock
        #: Serialises mutators (re-entrant: flush inside repack inside gc).
        #: Readers never take it — see the module docstring.
        self._write_lock = threading.RLock()

    # -- core API ----------------------------------------------------------

    @abstractmethod
    def write(self, oid: str, type_name: str, payload: bytes) -> bool:
        """Store a raw object; return ``True`` if it was newly added."""

    def write_many(self, records: Iterable[tuple[str, str, bytes]]) -> int:
        """Store raw ``(oid, type, payload)`` records; return how many were new.

        The default loops :meth:`write`; layouts that can amortise
        bookkeeping across a batch (one mutation bump, one pending-buffer
        update) override it.  This is the bundle-apply write path.
        """
        added = 0
        for oid, type_name, payload in records:
            if self.write(oid, type_name, payload):
                added += 1
        return added

    @abstractmethod
    def read(self, oid: str) -> tuple[str, bytes]:
        """Return ``(type name, payload)``; raise :class:`KeyError` if absent."""

    @abstractmethod
    def read_type(self, oid: str) -> str:
        """Return the type name only; raise :class:`KeyError` if absent."""

    def read_many(self, oids: Iterable[str]) -> Iterator[tuple[str, str, bytes]]:
        """Yield ``(oid, type name, payload)`` for each requested oid.

        No ordering guarantee; a missing oid raises :class:`KeyError` when
        its turn comes.  The default loops :meth:`read`; layouts with
        per-read open/seek costs (packs) override it to batch — the lazy
        worktree's whole-tree materialisation goes through here.
        """
        for oid in oids:
            type_name, payload = self.read(oid)
            yield oid, type_name, payload

    def read_size(self, oid: str) -> int:
        """Logical payload size in bytes; raise :class:`KeyError` if absent.

        The default pays a full read; layouts that record the size in a
        header (loose files) or can derive it without reconstructing the
        payload (pack deltas) override it so size probes stay cheap.
        """
        return len(self.read(oid)[1])

    @abstractmethod
    def __contains__(self, oid: str) -> bool: ...

    @abstractmethod
    def __len__(self) -> int: ...

    @abstractmethod
    def iter_oids(self) -> Iterator[str]:
        """Iterate over every stored oid (no ordering guarantee)."""

    # -- lifecycle ---------------------------------------------------------

    def flush(self) -> None:
        """Make pending writes durable (no-op for non-buffering backends)."""

    def close(self) -> None:
        """Release any held resources; the backend stays reopenable."""
        self.flush()

    # -- maintenance -------------------------------------------------------

    def gc(self, keep: set[str]) -> int:
        """Drop every object whose oid is not in ``keep``; return the count."""
        with self._write_lock:
            victims = [oid for oid in list(self.iter_oids()) if oid not in keep]
            for oid in victims:
                self._delete(oid)
            if victims:
                self.mutation_counter += 1
            return len(victims)

    def _delete(self, oid: str) -> None:  # pragma: no cover - overridden
        raise StorageError(f"{self.kind} backend cannot delete individual objects")

    def open_file_handles(self) -> int:
        """How many file handles the backend currently holds open.

        Layouts that keep read handles alive (the pack backend's bounded
        handle pool) override this; memory/loose layouts open nothing
        between calls and report 0.  Surfaced through :meth:`stats` for the
        CLI and the resource-bound regression tests.
        """
        return 0

    def total_payload_size(self) -> int:
        """Total *logical* payload bytes (not on-disk bytes) across objects."""
        return sum(len(self.read(oid)[1]) for oid in self.iter_oids())

    def stats(self) -> dict:
        """Layout-specific statistics for CLI reporting and benchmarks."""
        return {"kind": self.kind, "objects": len(self)}


#: What callers may pass as a ``storage=`` option: ``None`` (memory), a kind
#: name, a ``"kind:/path"`` spec, or an already constructed backend.
BackendSpec = Union[None, str, ObjectBackend]


def backend_kinds() -> tuple[str, ...]:
    """The storage layouts :func:`make_backend` knows how to build."""
    return ("memory", "loose", "pack")


def make_backend(spec: BackendSpec = None, root: str | Path | None = None) -> ObjectBackend:
    """Build a backend from a ``storage=`` specification.

    ``None`` or ``"memory"`` yields a fresh :class:`MemoryBackend`;
    ``"loose"``/``"pack"`` require a directory (either via ``root`` or inline
    as ``"loose:/some/dir"``); a backend instance is returned unchanged.
    """
    from repro.vcs.storage.loose import LooseFileBackend
    from repro.vcs.storage.memory import MemoryBackend
    from repro.vcs.storage.pack import PackBackend

    if spec is None:
        return MemoryBackend()
    if isinstance(spec, ObjectBackend):
        return spec
    if not isinstance(spec, str):
        raise StorageError(f"unsupported storage specification: {spec!r}")
    kind, separator, inline_root = spec.partition(":")
    if separator and inline_root:
        root = inline_root
    if kind == "memory":
        return MemoryBackend()
    if kind in ("loose", "pack"):
        if root is None:
            raise StorageError(f"storage kind {kind!r} needs a directory (use '{kind}:<dir>')")
        directory = Path(root)
        return LooseFileBackend(directory) if kind == "loose" else PackBackend(directory)
    raise StorageError(f"unknown storage kind {kind!r}; expected one of {backend_kinds()}")
