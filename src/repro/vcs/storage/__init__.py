"""Pluggable storage backends for the content-addressable object store.

:class:`~repro.vcs.object_store.ObjectStore` delegates raw byte storage to an
:class:`ObjectBackend`:

* :class:`MemoryBackend` — one dict entry per object (fastest; default);
* :class:`LooseFileBackend` — one zlib-compressed file per object under a
  sharded ``objects/ab/cdef...`` directory;
* :class:`PackBackend` — buffered writes appended as pack files with a
  sorted fanout index and blob delta compression, plus ``repack()``/gc.

Use :func:`make_backend` to build one from a ``storage=`` specification.
"""

from repro.vcs.storage.base import BackendSpec, ObjectBackend, backend_kinds, make_backend
from repro.vcs.storage.loose import LooseFileBackend
from repro.vcs.storage.memory import MemoryBackend
from repro.vcs.storage.pack import PackBackend

__all__ = [
    "ObjectBackend",
    "BackendSpec",
    "backend_kinds",
    "make_backend",
    "MemoryBackend",
    "LooseFileBackend",
    "PackBackend",
]
