"""The loose-file backend: one zlib-compressed file per object.

Layout (mirroring Git's loose object store)::

    <root>/ab/cdef0123...   # first two oid characters shard the directory

Each file holds ``zlib.compress(b"<type> <size>\\0" + payload)``.  Writes are
atomic (temp file + ``os.replace``) and reads re-hash the payload against the
file's oid, so silent on-disk corruption is detected at the first read
instead of propagating into trees and commits.

Writes take the backend write lock and only publish an oid into the known set
*after* its file is atomically in place, so lock-free readers either miss the
object entirely (KeyError, as if the write had not happened yet) or find a
complete, verifiable file — never a torn one.
"""

from __future__ import annotations

import zlib
from pathlib import Path
from typing import Iterator

from repro.errors import CorruptObjectError, StorageError
from repro.utils import atomicio
from repro.utils.hashing import object_id
from repro.vcs.storage.base import ObjectBackend

__all__ = ["LooseFileBackend"]

#: Decompressed header prefix fetched when only the type is needed.
_HEADER_PROBE_BYTES = 64

_HEX_DIGITS = frozenset("0123456789abcdef")


def _is_hex(text: str) -> bool:
    return all(character in _HEX_DIGITS for character in text)


class LooseFileBackend(ObjectBackend):
    """Sharded ``objects/ab/cdef...`` directory of compressed objects."""

    kind = "loose"

    def __init__(self, root: str | Path) -> None:
        super().__init__()
        self.root = Path(root)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            raise StorageError(f"cannot create loose object directory {self.root}: {exc}") from exc
        self._known: set[str] = set()  # guarded-by: _write_lock
        # A ``.tmp-*`` visible at open time is a crashed writer's torn file
        # (live writes exist only between our own write and its rename).
        atomicio.sweep_orphan_tmp(self.root, recursive=True)
        self._scan()

    def _scan(self) -> None:  # lint: unguarded-ok(runs from __init__ before the backend is published)
        """Populate the oid set from the on-disk shard directories.

        Only well-formed ``ab``/``cdef…`` (2 + 38 hex characters) names are
        accepted: a crash between writing a ``.tmp-*`` file and its atomic
        rename must not surface as a phantom object that breaks clone,
        migration and gc on every later open.
        """
        for shard in self.root.iterdir():
            if not (shard.is_dir() and len(shard.name) == 2 and _is_hex(shard.name)):
                continue
            for entry in shard.iterdir():
                if entry.is_file() and len(entry.name) == 38 and _is_hex(entry.name):
                    self._known.add(shard.name + entry.name)

    def _path_for(self, oid: str) -> Path:
        return self.root / oid[:2] / oid[2:]

    # -- core API ----------------------------------------------------------

    def write(self, oid: str, type_name: str, payload: bytes) -> bool:
        with self._write_lock:
            if oid in self._known:
                return False
            header = f"{type_name} {len(payload)}\0".encode("ascii")
            compressed = zlib.compress(header + payload)
            target = self._path_for(oid)
            target.parent.mkdir(parents=True, exist_ok=True)
            # Atomic but not fsynced, matching git's loose-object durability:
            # readers never see a torn object, and an object lost to a power
            # cut before the OS flush is one fsck finds (the ref pointing at
            # it is only durable once state.json — which *is* fsynced —
            # lands).
            atomicio.atomic_write_bytes(target, compressed, failpoint="storage.write")
            self._known.add(oid)
            self.mutation_counter += 1
            return True

    def _load(self, oid: str) -> tuple[str, bytes]:
        path = self._path_for(oid)
        try:
            raw = path.read_bytes()
        except OSError:
            raise KeyError(oid) from None
        try:
            decompressed = zlib.decompress(raw)
        except zlib.error as exc:
            raise CorruptObjectError(oid, f"zlib decompression failed: {exc}") from exc
        header, separator, payload = decompressed.partition(b"\0")
        if not separator:
            raise CorruptObjectError(oid, "missing object header")
        try:
            type_name, size_text = header.decode("ascii").split(" ", 1)
            declared_size = int(size_text)
        except (UnicodeDecodeError, ValueError) as exc:
            raise CorruptObjectError(oid, f"malformed object header {header!r}") from exc
        if declared_size != len(payload):
            raise CorruptObjectError(
                oid, f"header declares {declared_size} payload bytes, file holds {len(payload)}"
            )
        if object_id(type_name, payload) != oid:
            raise CorruptObjectError(oid, "payload does not hash to the file's oid")
        return type_name, payload

    def read(self, oid: str) -> tuple[str, bytes]:
        if oid not in self._known:
            raise KeyError(oid)
        return self._load(oid)

    def _probe_header(self, oid: str) -> bytes:
        """The first decompressed bytes of an object file (header probe).

        Trusts the header without re-hashing — corruption is still caught by
        the verifying full read path.  Raises :class:`KeyError` for unknown
        or unreadable oids, like the other read methods.
        """
        if oid not in self._known:
            raise KeyError(oid)
        path = self._path_for(oid)
        try:
            with path.open("rb") as handle:
                probe = handle.read(_HEADER_PROBE_BYTES)
        except OSError:
            raise KeyError(oid) from None
        decompressor = zlib.decompressobj()
        try:
            return decompressor.decompress(probe, _HEADER_PROBE_BYTES)
        except zlib.error as exc:
            raise CorruptObjectError(oid, f"zlib decompression failed: {exc}") from exc

    def read_type(self, oid: str) -> str:
        header = self._probe_header(oid)
        type_name, separator, _ = header.partition(b" ")
        if not separator:
            # Header did not fit in the probe (never happens for real types).
            return self._load(oid)[0]
        return type_name.decode("ascii")

    def read_size(self, oid: str) -> int:
        """The size the object header declares — no full decompression."""
        header = self._probe_header(oid)
        head, separator, _ = header.partition(b"\0")
        if not separator:
            return len(self._load(oid)[1])
        try:
            return int(head.decode("ascii").rsplit(" ", 1)[1])
        except (UnicodeDecodeError, IndexError, ValueError) as exc:
            raise CorruptObjectError(oid, f"malformed object header {head!r}") from exc

    def __contains__(self, oid: str) -> bool:
        return oid in self._known

    def __len__(self) -> int:
        return len(self._known)

    def iter_oids(self) -> Iterator[str]:
        # list() snapshots atomically; sorting the copy cannot race a writer.
        return iter(sorted(list(self._known)))

    # -- maintenance -------------------------------------------------------

    def _delete(self, oid: str) -> None:
        with self._write_lock:
            try:
                self._path_for(oid).unlink()
            except OSError:
                pass
            self._known.discard(oid)

    def on_disk_bytes(self) -> int:
        """Total compressed bytes currently stored under the root."""
        return sum(
            self._path_for(oid).stat().st_size for oid in list(self._known)
            if self._path_for(oid).is_file()
        )

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "objects": len(self._known),
            "disk_bytes": self.on_disk_bytes(),
            "root": str(self.root),
        }
