"""The in-memory backend: the seed's original ``ObjectStore`` layout.

One dict entry per object — the fastest layout and the default for tests and
the hosting-platform simulator, but bounded by RAM and gone on process exit.

Writes take the backend write lock; reads are bare dict lookups (atomic under
CPython) and ``iter_oids`` hands out a snapshot so concurrent writes cannot
invalidate an in-flight iteration.
"""

from __future__ import annotations

from typing import Iterator

from repro.vcs.storage.base import ObjectBackend

__all__ = ["MemoryBackend"]


class MemoryBackend(ObjectBackend):
    """``oid → (type, payload)`` in a plain dict."""

    kind = "memory"

    def __init__(self) -> None:
        super().__init__()
        self._objects: dict[str, tuple[str, bytes]] = {}  # guarded-by: _write_lock

    def write(self, oid: str, type_name: str, payload: bytes) -> bool:
        with self._write_lock:
            if oid in self._objects:
                return False
            self._objects[oid] = (type_name, payload)
            self.mutation_counter += 1
            return True

    def write_many(self, records) -> int:
        with self._write_lock:
            added = 0
            for oid, type_name, payload in records:
                if oid not in self._objects:
                    self._objects[oid] = (type_name, payload)
                    added += 1
            if added:
                self.mutation_counter += 1
            return added

    def read(self, oid: str) -> tuple[str, bytes]:
        return self._objects[oid]

    def read_type(self, oid: str) -> str:
        return self._objects[oid][0]

    def read_size(self, oid: str) -> int:
        return len(self._objects[oid][1])

    def __contains__(self, oid: str) -> bool:
        return oid in self._objects

    def __len__(self) -> int:
        return len(self._objects)

    def iter_oids(self) -> Iterator[str]:
        # Snapshot: a write landing mid-iteration must not blow up the caller.
        return iter(list(self._objects))

    def _delete(self, oid: str) -> None:  # lint: holds-lock(_write_lock)
        del self._objects[oid]

    def total_payload_size(self) -> int:
        return sum(len(payload) for _, payload in list(self._objects.values()))

    def stats(self) -> dict:
        return {
            "kind": self.kind,
            "objects": len(self._objects),
            "payload_bytes": self.total_payload_size(),
        }
