"""Repository-to-repository transfer: clone, fork, push and pull.

Because objects are content-addressed, transferring history between two
repositories only requires copying the objects missing on the receiving side
and updating a branch reference.  ``push`` enforces fast-forward updates
unless forced, mirroring how the GitCite local tool publishes the updated
``citation.cite`` back to the hosting platform (Section 3: "the Git command
is used to push the local copy ... to the remote repository").

``fork`` copies a repository's full history into a *new* repository owned by
another user — the substrate operation underlying ForkCite, which the paper
notes "will naturally" carry citations because ``citation.cite`` travels with
the tree.
"""

from __future__ import annotations

from repro.errors import RemoteError
from repro.vcs.merge import commit_ancestors, is_ancestor_commit
from repro.vcs.object_store import ObjectStore
from repro.vcs.repository import Repository
from repro.vcs.treeops import flatten_tree

__all__ = [
    "clone_repository",
    "fork_repository",
    "push",
    "pull",
    "fetch_branch",
    "reachable_objects",
]


def reachable_objects(store: ObjectStore, commit_oid: str) -> set[str]:
    """Return every object id reachable from ``commit_oid`` (commits, trees, blobs)."""
    reachable: set[str] = set()
    for ancestor in commit_ancestors(store, commit_oid):
        if ancestor in reachable:
            continue
        reachable.add(ancestor)
        commit = store.get_commit(ancestor)
        for path, (oid, _) in flatten_tree(store, commit.tree_oid).items():
            reachable.add(oid)
    return reachable


def _copy_branch_objects(source: Repository, destination: Repository, commit_oid: str) -> int:
    objects = reachable_objects(source.store, commit_oid)
    return source.store.copy_objects_to(destination.store, objects)


def clone_repository(
    source: Repository,
    name: str | None = None,
    owner: str | None = None,
) -> Repository:
    """Create a full copy of ``source`` (all branches, tags and objects).

    The clone keeps the source's owner by default — this is "downloading a
    copy of the project repository with Git" from Section 3, the state in
    which the local executable tool operates.
    """
    clone = Repository(
        name=name or source.name,
        owner=owner or source.owner,
        default_branch=source.refs.default_branch,
        description=source.description,
    )
    source.store.copy_objects_to(clone.store)
    clone.refs = source.refs.clone()
    head = clone.head_oid()
    if head:
        clone.checkout(clone.current_branch or head)
    return clone


def fork_repository(source: Repository, new_owner: str, new_name: str | None = None) -> Repository:
    """Fork ``source`` into a new repository owned by ``new_owner``.

    The full history is preserved; only the ownership (and optionally the
    name) changes.  The citation layer's ForkCite wraps this and records
    fork provenance in the new root citation.
    """
    if not new_owner:
        raise RemoteError("a fork must have an owner")
    fork = clone_repository(source, name=new_name or source.name, owner=new_owner)
    fork.description = source.description
    return fork


def fetch_branch(source: Repository, destination: Repository, branch: str) -> str:
    """Copy the objects of ``branch`` from ``source`` into ``destination``.

    The branch reference itself is *not* moved in the destination; the commit
    id is returned so the caller can merge or fast-forward explicitly.
    """
    if not source.refs.has_branch(branch):
        raise RemoteError(f"source repository has no branch {branch!r}")
    tip = source.refs.branch_target(branch)
    _copy_branch_objects(source, destination, tip)
    return tip


def push(
    local: Repository,
    remote: Repository,
    branch: str | None = None,
    force: bool = False,
) -> str:
    """Push a branch from ``local`` to ``remote`` and return the new tip.

    Non-fast-forward updates are rejected unless ``force`` is given, exactly
    like ``git push``: the remote branch must be an ancestor of the local one.
    """
    branch = branch or local.current_branch or local.refs.default_branch
    if not local.refs.has_branch(branch):
        raise RemoteError(f"local repository has no branch {branch!r}")
    local_tip = local.refs.branch_target(branch)
    _copy_branch_objects(local, remote, local_tip)
    if remote.refs.has_branch(branch):
        remote_tip = remote.refs.branch_target(branch)
        if remote_tip != local_tip and not force:
            if not is_ancestor_commit(remote.store, remote_tip, local_tip):
                raise RemoteError(
                    f"push rejected: remote branch {branch!r} is not an ancestor of the local branch "
                    "(fetch and merge first, or force-push)"
                )
    remote.refs.set_branch(branch, local_tip)
    if remote.current_branch == branch:
        remote.checkout(branch)
    return local_tip


def pull(
    local: Repository,
    remote: Repository,
    branch: str | None = None,
) -> str:
    """Fetch ``branch`` from ``remote`` and fast-forward the local branch.

    Diverged histories are not merged automatically (the citation-aware
    MergeCite should decide how to merge); a :class:`RemoteError` is raised
    instead.
    """
    branch = branch or local.current_branch or local.refs.default_branch
    tip = fetch_branch(remote, local, branch)
    if not local.refs.has_branch(branch):
        local.refs.set_branch(branch, tip)
        if local.current_branch == branch or local.head_oid() is None:
            local.refs.attach_head(branch)
            local.checkout(branch)
        return tip
    local_tip = local.refs.branch_target(branch)
    if local_tip == tip:
        return tip
    if is_ancestor_commit(local.store, local_tip, tip):
        local.refs.set_branch(branch, tip)
        if local.current_branch == branch:
            local.checkout(branch)
        return tip
    raise RemoteError(
        f"pull cannot fast-forward branch {branch!r}: local and remote histories diverged; "
        "use MergeCite to merge them"
    )
