"""Repository-to-repository transfer: clone, fork, push and pull.

Because objects are content-addressed, transferring history between two
repositories only requires moving the objects missing on the receiving side
and updating a branch reference.  Since PR 5 every one of these paths goes
through the sync subsystem (:mod:`repro.vcs.transfer`): the sender and
receiver negotiate haves/wants, the sender serialises exactly the negotiated
frontier as a delta-compressed bundle, and the receiver verifies it end to
end before anything lands — so a push of one new commit moves O(changed)
objects instead of re-offering the whole history, and a corrupt transfer
leaves the receiver untouched.

``push`` enforces fast-forward updates unless forced, mirroring how the
GitCite local tool publishes the updated ``citation.cite`` back to the
hosting platform (Section 3: "the Git command is used to push the local copy
... to the remote repository").  ``fork`` copies a repository's history into
a *new* repository owned by another user — the substrate operation underlying
ForkCite.  Clones are built from the reachability walk, so objects that no
ref can reach (pre-gc garbage) are left behind by construction.
"""

from __future__ import annotations

from repro.errors import RemoteError
from repro.vcs.merge import commit_ancestors, is_ancestor_commit
from repro.vcs.object_store import ObjectStore
from repro.vcs.repository import Repository
from repro.vcs.transfer import (
    ApplyResult,
    advertise_refs,
    apply_bundle,
    common_tips,
    create_bundle,
)
from repro.vcs.treeops import tree_closure

__all__ = [
    "clone_repository",
    "fork_repository",
    "push",
    "pull",
    "fetch_branch",
    "sync_objects",
    "reachable_objects",
]


def reachable_objects(store: ObjectStore, commit_oid: str) -> set[str]:
    """Return every object id reachable from ``commit_oid`` (commits, trees, blobs).

    Tree closures are memoised per tree oid, so a deep history whose commits
    share most subtrees is walked in O(distinct trees), not O(commits × tree).
    """
    cache: dict = {}
    reachable: set[str] = set()
    for ancestor in commit_ancestors(store, commit_oid):
        reachable.add(ancestor)
        reachable |= tree_closure(store, store.get_commit(ancestor).tree_oid, cache)
    return reachable


def sync_objects(source: Repository, destination: Repository, wants) -> ApplyResult:
    """Negotiate and transfer ``wants`` from ``source`` into ``destination``.

    The receiver's advertised tips are walked back to the closest commits the
    source knows (:func:`~repro.vcs.transfer.common_tips`), the source builds
    a thin bundle against them, and the receiver applies it with full
    verification — the in-process twin of the hub's upload-pack/receive-pack
    wire exchange.
    """
    haves = common_tips(source.store, destination)
    data = create_bundle(source.store, wants, haves)
    return apply_bundle(destination.store, data)


def _copy_annotated_tags(source: Repository, destination: Repository) -> int:
    """Carry annotated tag objects whose targets made it into ``destination``.

    Tag objects are not referenced by any commit graph edge, so the
    reachability walk cannot discover them; like the gc keep-set they ride
    along exactly when their target survived.
    """
    store = source.store
    records: list[tuple[str, str, bytes]] = []
    for oid in store.iter_oids():
        # Membership in the destination is the cheap probe (no payload or
        # header read) and true for almost everything after a clone, so it
        # goes first; only genuinely absent objects pay the type probe.
        if oid in destination.store or store.get_type(oid) != "tag":
            continue
        if store.get_tag(oid).object_oid in destination.store:
            type_name, payload = store.get_raw(oid)
            records.append((oid, type_name, payload))
    if records:
        destination.store.put_raw_many(records)
    return len(records)


def clone_repository(
    source: Repository,
    name: str | None = None,
    owner: str | None = None,
) -> Repository:
    """Create a copy of ``source`` (all branches, tags and *reachable* objects).

    The clone keeps the source's owner by default — this is "downloading a
    copy of the project repository with Git" from Section 3, the state in
    which the local executable tool operates.  The object transfer goes
    through the reachability walker, so a clone is gc-clean by construction:
    dangling objects the source accumulated before its own gc are not
    copied.
    """
    clone = Repository(
        name=name or source.name,
        owner=owner or source.owner,
        default_branch=source.refs.default_branch,
        description=source.description,
    )
    wants = sorted(advertise_refs(source).tips())
    if wants:
        apply_bundle(clone.store, create_bundle(source.store, wants))
        _copy_annotated_tags(source, clone)
    clone.refs = source.refs.clone()
    head = clone.head_oid()
    if head:
        clone.checkout(clone.current_branch or head)
    return clone


def fork_repository(source: Repository, new_owner: str, new_name: str | None = None) -> Repository:
    """Fork ``source`` into a new repository owned by ``new_owner``.

    The full reachable history is preserved; only the ownership (and
    optionally the name) changes.  The citation layer's ForkCite wraps this
    and records fork provenance in the new root citation.
    """
    if not new_owner:
        raise RemoteError("a fork must have an owner")
    fork = clone_repository(source, name=new_name or source.name, owner=new_owner)
    fork.description = source.description
    return fork


def fetch_branch(source: Repository, destination: Repository, branch: str) -> str:
    """Transfer the objects of ``branch`` from ``source`` into ``destination``.

    The branch reference itself is *not* moved in the destination; the commit
    id is returned so the caller can merge or fast-forward explicitly.
    """
    if not source.refs.has_branch(branch):
        raise RemoteError(f"source repository has no branch {branch!r}")
    tip = source.refs.branch_target(branch)
    sync_objects(source, destination, [tip])
    return tip


def push(
    local: Repository,
    remote: Repository,
    branch: str | None = None,
    force: bool = False,
) -> str:
    """Push a branch from ``local`` to ``remote`` and return the new tip.

    Non-fast-forward updates are rejected unless ``force`` is given, exactly
    like ``git push``: the remote branch must be an ancestor of the local one.
    """
    branch = branch or local.current_branch or local.refs.default_branch
    if not local.refs.has_branch(branch):
        raise RemoteError(f"local repository has no branch {branch!r}")
    local_tip = local.refs.branch_target(branch)
    sync_objects(local, remote, [local_tip])
    if remote.refs.has_branch(branch):
        remote_tip = remote.refs.branch_target(branch)
        if remote_tip != local_tip and not force:
            if not is_ancestor_commit(remote.store, remote_tip, local_tip):
                raise RemoteError(
                    f"push rejected: remote branch {branch!r} is not an ancestor of the local branch "
                    "(fetch and merge first, or force-push)"
                )
    remote.refs.set_branch(branch, local_tip)
    if remote.current_branch == branch:
        remote.checkout(branch)
    return local_tip


def pull(
    local: Repository,
    remote: Repository,
    branch: str | None = None,
) -> str:
    """Fetch ``branch`` from ``remote`` and fast-forward the local branch.

    Diverged histories are not merged automatically (the citation-aware
    MergeCite should decide how to merge); a :class:`RemoteError` is raised
    instead.
    """
    branch = branch or local.current_branch or local.refs.default_branch
    tip = fetch_branch(remote, local, branch)
    if not local.refs.has_branch(branch):
        local.refs.set_branch(branch, tip)
        # Only move HEAD when it already points at this branch (an unborn
        # checkout of it).  Pulling branch X into a repository whose unborn
        # HEAD sits on a *different* branch must not silently re-attach HEAD
        # to X — that would discard the user's chosen starting branch.
        if local.current_branch == branch:
            local.checkout(branch)
        return tip
    local_tip = local.refs.branch_target(branch)
    if local_tip == tip:
        return tip
    if is_ancestor_commit(local.store, local_tip, tip):
        local.refs.set_branch(branch, tip)
        if local.current_branch == branch:
            local.checkout(branch)
        return tip
    raise RemoteError(
        f"pull cannot fast-forward branch {branch!r}: local and remote histories diverged; "
        "use MergeCite to merge them"
    )
