"""The :class:`Repository` facade.

A repository bundles the object store, the reference store, a staging index
and an in-memory working tree, and exposes the day-to-day operations the
citation layer and the CLI are built on: write/move/remove files, stage,
commit, branch, checkout, log, diff, and merge.

The working tree is an in-memory mapping from canonical repository path to
file bytes — since PR 3 a :class:`~repro.vcs.worktree_state.WorktreeState`,
which keeps a sorted path index (single-file writes, directory queries and
moves are bisect probes, not scans) and a per-path blob-fingerprint cache
(``add``/``status`` hash only the files that actually changed, so a commit
that touched one file is O(changed), not O(worktree)).
:mod:`repro.vcs.worktree` can materialise it on disk (and read a disk
directory back in) for the command-line tool; everything else — tests,
benchmarks, the hosting-platform simulator — stays in memory, which keeps the
reproduction fast and hermetic.
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Iterable, Mapping, Optional

from repro.errors import CheckoutError, MergeConflictError, MergeError, RefError, VCSError
from repro.utils.paths import ROOT, ancestors, is_ancestor, join_path, normalize_path, relative_to
from repro.utils.sortedkeys import descendant_slice
from repro.utils.timeutil import now_utc
from repro.vcs.diff import TreeDiff, diff_trees
from repro.vcs.index import StagingIndex
from repro.vcs.merge import MergeResult, find_merge_base, merge_trees
from repro.vcs.object_store import ObjectStore
from repro.vcs.storage import BackendSpec
from repro.vcs.objects import MODE_DIRECTORY, MODE_FILE, Blob, Commit, Signature, Tag
from repro.vcs.refs import DEFAULT_BRANCH, RefStore
from repro.vcs.treeops import flatten_files, flatten_tree, lookup_path, subtree_oid
from repro.vcs.worktree_state import WorktreeState

__all__ = ["Repository", "CommitInfo", "PreparedMerge", "MergeOutcome", "WorktreeStatus"]


@dataclass(frozen=True)
class CommitInfo:
    """A commit together with its id (what ``log`` returns)."""

    oid: str
    commit: Commit

    @property
    def summary(self) -> str:
        return self.commit.summary

    @property
    def timestamp(self) -> datetime:
        return self.commit.committer.timestamp


@dataclass(frozen=True)
class PreparedMerge:
    """The inputs and raw result of a three-way merge, before committing.

    The citation layer uses this to run Git's rules on ordinary files while
    handling ``citation.cite`` itself (Section 3 of the paper).
    """

    base_oid: Optional[str]
    ours_oid: str
    theirs_oid: str
    base_tree_oid: Optional[str]
    ours_tree_oid: str
    theirs_tree_oid: str
    result: MergeResult
    fast_forward: bool


@dataclass(frozen=True)
class MergeOutcome:
    """What a completed merge produced."""

    commit_oid: str
    fast_forward: bool
    conflicts_resolved: tuple[str, ...] = ()


@dataclass(frozen=True)
class WorktreeStatus:
    """Differences between HEAD, the index and the working tree."""

    staged: tuple[str, ...]
    modified: tuple[str, ...]
    deleted: tuple[str, ...]
    untracked: tuple[str, ...]

    @property
    def is_clean(self) -> bool:
        return not (self.staged or self.modified or self.deleted or self.untracked)


class Repository:
    """An in-memory version-controlled project repository."""

    def __init__(
        self,
        name: str,
        owner: str,
        default_branch: str = DEFAULT_BRANCH,
        description: str = "",
        storage: BackendSpec = None,
    ) -> None:
        if not name:
            raise VCSError("repository name must not be empty")
        if not owner:
            raise VCSError("repository owner must not be empty")
        self.name = name
        self.owner = owner
        self.description = description
        self.store = ObjectStore(backend=storage)
        self.refs = RefStore(default_branch=default_branch)
        self.index = StagingIndex()
        self._worktree = WorktreeState()
        # Callables invoked at the start of commit(), before staging.  The
        # citation layer registers its flush here so deferred (batched)
        # citation.cite writes can never be missed by a snapshot, even when
        # callers commit through the repository directly.
        self._pre_commit_hooks: list = []
        # Callables invoked after the working tree is replaced wholesale
        # (checkout / fast-forward merge), so holders of deferred
        # worktree-derived state can discard it instead of flushing it over
        # a different version.  The generation counter lets holders of
        # *clean* caches detect replacement lazily without registering
        # anything (no reference pinning).
        self._worktree_reload_hooks: list = []
        self._worktree_generation = 0
        self.default_author = Signature(
            name=owner, email=f"{owner.lower().replace(' ', '.')}@example.org", timestamp=now_utc()
        )

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def init(
        cls,
        name: str,
        owner: str,
        default_branch: str = DEFAULT_BRANCH,
        description: str = "",
        storage: BackendSpec = None,
    ) -> "Repository":
        """Create an empty repository (no commits yet).

        ``storage`` selects the object-store layout: ``None``/``"memory"``
        (default), ``"loose:<dir>"``, ``"pack:<dir>"``, or a constructed
        :class:`~repro.vcs.storage.ObjectBackend` instance.
        """
        return cls(
            name=name,
            owner=owner,
            default_branch=default_branch,
            description=description,
            storage=storage,
        )

    @classmethod
    def open(cls, directory, storage: str | None = None) -> "Repository":
        """Open a gitcite working copy saved on disk.

        Delegates to :func:`repro.vcs.workingcopy.load_repository`; ``storage``
        optionally overrides the *layout name* recorded in the working copy's
        state file — ``"memory"``, ``"loose"`` or ``"pack"`` (the objects
        always live under the working copy's ``.gitcite/``, so unlike
        :meth:`init` no ``kind:<dir>`` specs or backend instances are
        accepted) — and the working copy is migrated in place.
        """
        from repro.vcs.workingcopy import load_repository

        return load_repository(directory, storage=storage)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Repository({self.owner}/{self.name}, head={self.head_oid()!r})"

    @property
    def full_name(self) -> str:
        """The ``owner/name`` slug used by the hosting platform."""
        return f"{self.owner}/{self.name}"

    def register_pre_commit_hook(self, hook) -> None:
        """Run ``hook()`` at the start of every :meth:`commit` (idempotent)."""
        if hook not in self._pre_commit_hooks:
            self._pre_commit_hooks.append(hook)

    def unregister_pre_commit_hook(self, hook) -> None:
        """Remove a previously registered pre-commit hook (missing is fine)."""
        try:
            self._pre_commit_hooks.remove(hook)
        except ValueError:
            pass

    def register_worktree_reload_hook(self, hook) -> None:
        """Run ``hook()`` whenever the working tree is replaced (idempotent)."""
        if hook not in self._worktree_reload_hooks:
            self._worktree_reload_hooks.append(hook)

    def unregister_worktree_reload_hook(self, hook) -> None:
        """Remove a previously registered reload hook (missing is fine)."""
        try:
            self._worktree_reload_hooks.remove(hook)
        except ValueError:
            pass

    def make_signature(self, name: str | None = None, email: str | None = None,
                       timestamp: datetime | None = None) -> Signature:
        """Build a signature, falling back to the repository's default author."""
        base = self.default_author
        resolved_name = name if name is not None else base.name
        resolved_email = email if email is not None else (
            base.email if name is None else f"{resolved_name.lower().replace(' ', '.')}@example.org"
        )
        return Signature(
            name=resolved_name,
            email=resolved_email,
            timestamp=timestamp if timestamp is not None else now_utc(),
        )

    # ------------------------------------------------------------------
    # Working-tree operations
    # ------------------------------------------------------------------

    @property
    def worktree(self) -> WorktreeState:
        """The working tree: a mapping from canonical path to file bytes."""
        return self._worktree

    @worktree.setter
    def worktree(self, mapping) -> None:
        # Wholesale replacement (merge, tests): any plain mapping is adopted
        # by rebuilding the indexes in one pass.  An adopted WorktreeState is
        # *detached* (bytes shared, bookkeeping copied) and must drop its
        # known-stored flags — they assert blob membership in *some* store,
        # not necessarily this repository's — or add() would skip puts and
        # commit a tree referencing missing blobs.  Detaching keeps this
        # repository's staging from re-marking flags on state the donor
        # repository still uses; content fingerprints are store-independent
        # and stay valid, and unmaterialised entries keep faulting from the
        # donor's store (the content-addressed bytes are identical).
        previous = self._worktree
        if isinstance(mapping, WorktreeState):
            self._worktree = mapping.detached_copy()
            self._worktree.forget_stored()
        else:
            self._worktree = WorktreeState(mapping)
        if isinstance(previous, WorktreeState) and previous is not mapping:
            previous.release_lease()

    def write_file(self, path: str, data: bytes | str) -> str:
        """Create or overwrite a file in the working tree; returns its canonical path.

        The file/directory invariant check is O(depth + log n) against the
        worktree's sorted path index — never a scan over every file.
        """
        canonical = normalize_path(path)
        if canonical == ROOT:
            raise VCSError("cannot write a file at the repository root path '/'")
        self._worktree.check_can_create(canonical, error=VCSError)
        payload = data.encode("utf-8") if isinstance(data, str) else bytes(data)
        self._worktree[canonical] = payload
        return canonical

    def write_files(self, files: Mapping[str, bytes | str]) -> list[str]:
        """Create or overwrite many working-tree files in one batch.

        Equivalent to :meth:`write_file` per entry but validated in one pass:
        ancestor conflicts are O(depth) set probes, descendant conflicts one
        bisect range probe per new path against the worktree's index and the
        incoming set — O(m (d + log n + log m)) for the batch.  Nothing is
        written unless the entire batch is conflict-free.  Returns the
        canonical paths written, sorted.
        """
        incoming: dict[str, bytes] = {}
        for path, data in files.items():
            canonical = normalize_path(path)
            if canonical == ROOT:
                raise VCSError("cannot write a file at the repository root path '/'")
            incoming[canonical] = (
                data.encode("utf-8") if isinstance(data, str) else bytes(data)
            )
        # The worktree invariant: no path may be an ancestor of another.
        incoming_sorted = sorted(incoming)
        worktree = self._worktree
        for canonical in incoming_sorted:
            for ancestor in ancestors(canonical):
                if ancestor != ROOT and (ancestor in worktree or ancestor in incoming):
                    raise VCSError(
                        f"{ancestor!r} is a file; cannot create {canonical!r} beneath it"
                    )
            contained = worktree.first_descendant(canonical)
            lower, upper = descendant_slice(incoming_sorted, canonical)
            if lower < upper and (contained is None or incoming_sorted[lower] < contained):
                contained = incoming_sorted[lower]
            if contained is not None:
                raise VCSError(f"{canonical!r} is a directory (contains {contained!r})")
        worktree.bulk_update(incoming)
        return incoming_sorted

    def read_file(self, path: str) -> bytes:
        """Return the working-tree content of ``path``."""
        canonical = normalize_path(path)
        try:
            return self.worktree[canonical]
        except KeyError:
            raise VCSError(f"no such file in the working tree: {canonical!r}") from None

    def file_text(self, path: str, encoding: str = "utf-8") -> str:
        return self.read_file(path).decode(encoding)

    def file_exists(self, path: str) -> bool:
        return normalize_path(path) in self.worktree

    def file_size(self, path: str) -> int:
        """Byte length of a working-tree file without materialising it.

        A lazily checked-out entry answers through the object store's size
        probe (header-only on disk layouts); its bytes stay unread.
        """
        canonical = normalize_path(path)
        if canonical not in self._worktree:
            raise VCSError(f"no such file in the working tree: {canonical!r}")
        return self._worktree.size_of(canonical)

    def directory_exists(self, path: str) -> bool:
        canonical = normalize_path(path)
        if canonical == ROOT:
            return True
        return self._worktree.has_directory(canonical)

    def remove_file(self, path: str) -> None:
        canonical = normalize_path(path)
        if canonical not in self.worktree:
            raise VCSError(f"no such file in the working tree: {canonical!r}")
        del self._worktree[canonical]
        self.index.discard(canonical)

    def remove_directory(self, path: str) -> list[str]:
        """Remove every file under ``path``; returns the removed paths."""
        canonical = normalize_path(path)
        victims = self._worktree.files_under(canonical)
        if not victims:
            raise VCSError(f"no such directory in the working tree: {canonical!r}")
        for victim in victims:
            del self._worktree[victim]
            self.index.discard(victim)
        return victims

    def move_file(self, source: str, destination: str) -> None:
        """Move/rename a single file in the working tree.

        The destination is validated against the worktree *minus the source*
        (the move vacates it) before anything mutates, so a conflicting move
        leaves the tree unchanged.
        """
        src = normalize_path(source)
        if src not in self.worktree:
            raise VCSError(f"no such file in the working tree: {src!r}")
        dst = normalize_path(destination)
        if dst == ROOT:
            raise VCSError("cannot write a file at the repository root path '/'")
        if dst != src:
            for ancestor in ancestors(dst):
                if ancestor != ROOT and ancestor != src and ancestor in self._worktree:
                    raise VCSError(
                        f"{ancestor!r} is a file; cannot create {dst!r} beneath it"
                    )
            contained = self._first_surviving_descendant(dst, src)
            if contained is not None:
                raise VCSError(f"{dst!r} is a directory (contains {contained!r})")
            self._worktree.move_entry(src, dst)
        self.index.discard(src)

    def move_directory(self, source: str, destination: str) -> dict[str, str]:
        """Move/rename a directory; returns ``{old path: new path}`` for its files.

        The move is atomic: the *entire* destination set is validated against
        the surviving worktree before any path is touched, so a conflicting
        move raises without leaving the tree half-moved.
        """
        src = normalize_path(source)
        dst = normalize_path(destination)
        victims = self._worktree.files_under(src, include_base=False)
        if not victims:
            raise VCSError(f"no such directory in the working tree: {src!r}")
        moves = {old: join_path(dst, relative_to(old, src)) for old in victims}
        if dst == src:
            for old_path in victims:
                self.index.discard(old_path)
            return moves
        # The destinations preserve the victims' relative structure, so they
        # cannot conflict among themselves; validate each against the paths
        # that survive the move (everything outside the source subtree).
        destination_set = set(moves.values())
        for new_path in moves.values():
            for ancestor in ancestors(new_path):
                if ancestor == ROOT or ancestor in destination_set:
                    continue
                if ancestor in self._worktree and not is_ancestor(src, ancestor):
                    raise VCSError(
                        f"{ancestor!r} is a file; cannot create {new_path!r} beneath it"
                    )
            contained = self._first_surviving_descendant(new_path, src)
            if contained is not None and contained not in destination_set:
                raise VCSError(f"{new_path!r} is a directory (contains {contained!r})")
        self._worktree.move_entries(moves)
        for old_path in moves:
            self.index.discard(old_path)
        return moves

    def _first_surviving_descendant(self, path: str, vacated: str) -> str | None:
        """A worktree file strictly beneath ``path`` that is *not* at or
        beneath ``vacated`` (paths being moved away do not count as
        conflicts)."""
        for candidate in self._worktree.files_under(path, include_base=False):
            if not is_ancestor(vacated, candidate, strict=False):
                return candidate
        return None

    def list_files(self, under: str = ROOT) -> list[str]:
        """Return the working-tree file paths under ``under`` (sorted)."""
        return self._worktree.files_under(normalize_path(under))

    def list_directories(self, under: str = ROOT) -> list[str]:
        """Return every (implicit) directory path in the working tree."""
        return self._worktree.directories(normalize_path(under))

    # ------------------------------------------------------------------
    # Staging and committing
    # ------------------------------------------------------------------

    def _run_pre_commit_hooks(self) -> None:
        for hook in tuple(self._pre_commit_hooks):
            hook()

    def _stage_oid(self, path: str) -> str:
        """The blob oid of a worktree file, stored if not already.

        Clean paths (fingerprint cached and known stored) cost two dict
        probes; only dirty paths construct, hash and :meth:`ObjectStore.put`
        a blob — which is what makes ``add``/``commit`` O(changed).
        """
        worktree = self._worktree
        if worktree.is_stored(path):
            return worktree.fingerprint(path)
        oid = self.store.put(Blob(worktree[path]))
        worktree.mark_stored(path, oid)
        return oid

    def add(self, paths: Iterable[str] | None = None) -> list[str]:
        """Stage working-tree files (all of them when ``paths`` is ``None``)."""
        # Staging expresses intent to snapshot: deferred-state holders flush
        # first so the index never captures stale bytes (this also covers
        # commit(auto_add=False) after a manual add).
        self._run_pre_commit_hooks()
        if paths is None:
            # Entries that are lazy but not known stored (an adopted
            # worktree after forget_stored) all need their bytes to
            # re-store below; fault them through one batched read instead
            # of per-path get_blob calls.  A no-op for ordinary lazy
            # checkouts (everything stored).
            self._worktree.materialize_unstored()
            # Mirror the worktree wholesale (recording deletions too).  The
            # worktree already enforces the file/directory invariants, so the
            # per-path conflict checks of stage() are unnecessary here, and
            # its fingerprint cache means only dirty blobs are hashed.
            targets = self._worktree.sorted_paths()
            self.index.replace(
                {path: (self._stage_oid(path), MODE_FILE) for path in targets},
                assume_canonical=True,
            )
            return targets
        else:
            targets = []
            seen: set[str] = set()
            for path in paths:
                canonical = normalize_path(path)
                if canonical in self.worktree:
                    if canonical not in seen:
                        seen.add(canonical)
                        targets.append(canonical)
                elif self.directory_exists(canonical):
                    for member in self._worktree.files_under(canonical, include_base=False):
                        # Overlapping arguments (add(["a", "a/b"])) must not
                        # stage the shared files twice.
                        if member not in seen:
                            seen.add(member)
                            targets.append(member)
                    # Staging a directory records its deletions too, like
                    # add(None) and like git: tracked files that vanished
                    # from the working tree beneath it are unstaged, not
                    # silently carried into the next commit.
                    for staged_path in self.index.paths_under(canonical):
                        if staged_path not in self.worktree:
                            self.index.discard(staged_path)
                else:
                    # Path was deleted from the working tree: unstage it —
                    # including staged entries beneath it, for a directory
                    # whose files *all* vanished (no worktree file survives
                    # under it, so every staged descendant is stale).
                    self.index.discard(canonical)
                    for staged_path in self.index.paths_under(canonical):
                        self.index.discard(staged_path)
        staged: list[str] = []
        for path in targets:
            oid = self._stage_oid(path)
            self.index.discard(path)
            self.index.stage(path, oid)
            staged.append(path)
        return staged

    def commit(
        self,
        message: str,
        author: Signature | None = None,
        author_name: str | None = None,
        author_email: str | None = None,
        timestamp: datetime | None = None,
        allow_empty: bool = False,
        auto_add: bool = True,
    ) -> str:
        """Create a commit from the current working tree and return its id.

        By default (``auto_add=True``) the whole working tree is staged first,
        which matches how the GitCite tools operate: every citation operation
        rewrites ``citation.cite`` and the next commit snapshots it.
        """
        self._run_pre_commit_hooks()
        if auto_add:
            self.add()
        if author is None:
            author = self.make_signature(author_name, author_email, timestamp)
        elif timestamp is not None and author.timestamp != timestamp:
            author = Signature(name=author.name, email=author.email, timestamp=timestamp)
        tree_oid = self.index.write_tree(self.store)
        parent = self.head_oid()
        parents: tuple[str, ...] = (parent,) if parent else ()
        if parent and not allow_empty:
            parent_tree = self.store.get_commit(parent).tree_oid
            if parent_tree == tree_oid:
                raise VCSError("nothing to commit (working tree matches HEAD); use allow_empty=True")
        commit = Commit(
            tree_oid=tree_oid,
            parent_oids=parents,
            author=author,
            committer=author,
            message=message,
        )
        oid = self.store.put(commit)
        if not self.refs.branches and not self.refs.is_detached:
            # First commit: create the default branch at this commit.
            self.refs.set_branch(self.refs.head_branch or self.refs.default_branch, oid)
        else:
            self.refs.advance_head(oid)
        return oid

    def _merge_commit(
        self,
        message: str,
        tree_oid: str,
        parents: tuple[str, ...],
        author: Signature,
    ) -> str:
        commit = Commit(
            tree_oid=tree_oid,
            parent_oids=parents,
            author=author,
            committer=author,
            message=message,
        )
        oid = self.store.put(commit)
        self.refs.advance_head(oid)
        return oid

    # ------------------------------------------------------------------
    # References and history
    # ------------------------------------------------------------------

    def head_oid(self) -> Optional[str]:
        return self.refs.head_commit()

    def head_commit(self) -> Optional[Commit]:
        oid = self.head_oid()
        return self.store.get_commit(oid) if oid else None

    @property
    def current_branch(self) -> Optional[str]:
        return self.refs.head_branch

    def branches(self) -> dict[str, str]:
        return self.refs.branches

    def create_branch(self, name: str, at: str | None = None) -> str:
        """Create a branch at ``at`` (default: HEAD) and return its commit id."""
        target = self.resolve(at) if at else self.head_oid()
        if target is None:
            raise RefError("cannot create a branch in a repository with no commits")
        if self.refs.has_branch(name):
            raise RefError(f"branch already exists: {name!r}")
        self.refs.set_branch(name, target)
        return target

    def delete_branch(self, name: str) -> None:
        self.refs.delete_branch(name)

    def tag(self, name: str, at: str | None = None, message: str = "",
            tagger: Signature | None = None) -> str:
        """Create a tag; annotated when ``message`` is non-empty."""
        target = self.resolve(at) if at else self.head_oid()
        if target is None:
            raise RefError("cannot tag a repository with no commits")
        if message:
            tag = Tag(
                object_oid=target,
                object_type="commit",
                name=name,
                tagger=tagger or self.make_signature(),
                message=message,
            )
            self.store.put(tag)
        self.refs.set_tag(name, target)
        return target

    def resolve(self, ref: str) -> str:
        """Resolve a branch/tag/``HEAD``/object-id (full or abbreviated) to a commit id."""
        try:
            return self.refs.resolve(ref)
        except RefError:
            pass
        if ref in self.store and self.store.get_type(ref) == "commit":
            return ref
        try:
            full = self.store.resolve_prefix(ref)
        except VCSError:
            raise RefError(f"cannot resolve reference: {ref!r}") from None
        if self.store.get_type(full) != "commit":
            raise RefError(f"reference {ref!r} does not name a commit")
        return full

    def checkout(self, ref: str, create_branch: bool = False) -> str:
        """Switch HEAD (and the working tree) to ``ref``; returns the commit id."""
        if create_branch:
            self.create_branch(ref)
        if self.refs.has_branch(ref):
            target = self.refs.branch_target(ref)
            self.refs.attach_head(ref)
        else:
            try:
                target = self.resolve(ref)
            except RefError as exc:
                raise CheckoutError(str(exc)) from exc
            self.refs.detach_head(target)
        self._load_worktree(target)
        return target

    @property
    def worktree_generation(self) -> int:
        """Bumped every time the working tree is replaced wholesale."""
        return self._worktree_generation

    def _notify_worktree_reload(self) -> None:
        self._worktree_generation += 1
        for hook in tuple(self._worktree_reload_hooks):
            hook()

    def _load_worktree(self, commit_oid: str) -> None:
        commit = self.store.get_commit(commit_oid)
        # One tree walk shared between the worktree and the index.  Blob oids
        # come straight from the tree, so every fingerprint is primed as
        # known-stored, and the entries are installed *lazily*: no blob is
        # read until its path is actually accessed — checkout and the
        # add/status/commit that follow it perform zero blob reads on a
        # clean tree.  Bytes the outgoing worktree had already materialised
        # (same oid) are carried over, so branch switching re-reads only
        # blobs that changed since they were last loaded.
        flat = flatten_tree(self.store, commit.tree_oid)
        previous = self._worktree
        state = WorktreeState()
        state.load_committed_lazy(
            (
                (path, oid)
                for path, (oid, mode) in flat.items()
                if mode != MODE_DIRECTORY
            ),
            self.store,
            carry_from=previous if isinstance(previous, WorktreeState) else None,
        )
        self._worktree = state
        if isinstance(previous, WorktreeState):
            # The outgoing worktree no longer backs this repository; its gc
            # pin is returned now rather than at garbage-collection time
            # (adopted copies hold their own lease, so borrowers stay safe).
            previous.release_lease()
        self.index.read_flat(self.store, flat)
        self._notify_worktree_reload()

    def log(self, ref: str = "HEAD", limit: int | None = None) -> list[CommitInfo]:
        """Return the history reachable from ``ref``, newest first."""
        try:
            start = self.resolve(ref)
        except RefError:
            return []
        seen: set[str] = set()
        ordered: list[CommitInfo] = []
        frontier = [start]
        while frontier:
            # Pick the frontier commit with the latest committer timestamp, which
            # yields a reverse-chronological interleaving of merged branches.
            frontier.sort(key=lambda oid: self.store.get_commit(oid).committer.timestamp)
            oid = frontier.pop()
            if oid in seen:
                continue
            seen.add(oid)
            commit = self.store.get_commit(oid)
            ordered.append(CommitInfo(oid=oid, commit=commit))
            frontier.extend(p for p in commit.parent_oids if p not in seen)
            if limit is not None and len(ordered) >= limit:
                break
        return ordered

    # ------------------------------------------------------------------
    # Snapshots and diffs
    # ------------------------------------------------------------------

    def tree_oid_of(self, ref: str) -> str:
        return self.store.get_commit(self.resolve(ref)).tree_oid

    def snapshot(self, ref: str = "HEAD") -> dict[str, bytes]:
        """Return ``{path: content}`` for every file in the given version."""
        tree_oid = self.tree_oid_of(ref)
        files = flatten_files(self.store, tree_oid)
        return {path: self.store.get_blob(oid).data for path, (oid, _) in files.items()}

    def blob_oid_at(self, ref: str, path: str) -> str:
        """Return the blob oid of a file as of the given version.

        The content-addressed oid identifies the file's bytes without
        reading them — callers that memoise parses key on it.
        """
        tree_oid = self.tree_oid_of(ref)
        resolved = lookup_path(self.store, tree_oid, path)
        if resolved is None:
            raise VCSError(f"no such file in {ref!r}: {path!r}")
        oid, mode = resolved
        if mode == MODE_DIRECTORY:
            raise VCSError(f"path is a directory in {ref!r}: {path!r}")
        return oid

    def read_file_at(self, ref: str, path: str) -> bytes:
        """Return a file's content as of the given version."""
        return self.store.get_blob(self.blob_oid_at(ref, path)).data

    def path_exists_at(self, ref: str, path: str) -> bool:
        tree_oid = self.tree_oid_of(ref)
        return lookup_path(self.store, tree_oid, path) is not None

    def subtree_of(self, ref: str, path: str) -> str:
        """Return the tree id of the directory ``path`` in version ``ref``."""
        return subtree_oid(self.store, self.tree_oid_of(ref), path)

    def diff(self, old_ref: str, new_ref: str, detect_renames: bool = True) -> TreeDiff:
        """Diff two versions of the repository."""
        return diff_trees(
            self.store,
            self.tree_oid_of(old_ref),
            self.tree_oid_of(new_ref),
            detect_renames=detect_renames,
        )

    def status(self) -> WorktreeStatus:
        """Compare HEAD, the index and the working tree."""
        head = self.head_oid()
        head_files: dict[str, tuple[str, str]] = {}
        if head:
            head_files = flatten_files(self.store, self.store.get_commit(head).tree_oid)
        staged: list[str] = []
        for path, (oid, _) in self.index.entries().items():
            if path not in head_files or head_files[path][0] != oid:
                staged.append(path)
        modified: list[str] = []
        deleted: list[str] = []
        untracked: list[str] = []
        tracked = set(head_files) | set(self.index.entries())
        for path in self._worktree:
            if path not in tracked:
                untracked.append(path)
                continue
            reference = self.index.get(path) or head_files.get(path)
            if reference is None:
                untracked.append(path)
            elif self._worktree.fingerprint(path) != reference[0]:
                # The fingerprint cache means a clean worktree re-hashes
                # nothing here, no matter how often status runs.
                modified.append(path)
        for path in tracked:
            if path not in self.worktree:
                deleted.append(path)
        return WorktreeStatus(
            staged=tuple(sorted(staged)),
            modified=tuple(sorted(modified)),
            deleted=tuple(sorted(deleted)),
            untracked=tuple(sorted(untracked)),
        )

    # ------------------------------------------------------------------
    # Merging
    # ------------------------------------------------------------------

    def prepare_merge(self, other_ref: str, ours_ref: str = "HEAD") -> PreparedMerge:
        """Compute the three-way merge of ``other_ref`` into ``ours_ref`` without committing."""
        ours_oid = self.resolve(ours_ref)
        theirs_oid = self.resolve(other_ref)
        base_oid = find_merge_base(self.store, ours_oid, theirs_oid)
        ours_tree = self.store.get_commit(ours_oid).tree_oid
        theirs_tree = self.store.get_commit(theirs_oid).tree_oid
        base_tree = self.store.get_commit(base_oid).tree_oid if base_oid else None
        fast_forward = base_oid == ours_oid
        result = merge_trees(self.store, base_tree, ours_tree, theirs_tree)
        return PreparedMerge(
            base_oid=base_oid,
            ours_oid=ours_oid,
            theirs_oid=theirs_oid,
            base_tree_oid=base_tree,
            ours_tree_oid=ours_tree,
            theirs_tree_oid=theirs_tree,
            result=result,
            fast_forward=fast_forward,
        )

    def merge(
        self,
        other_ref: str,
        message: str | None = None,
        author: Signature | None = None,
        timestamp: datetime | None = None,
        resolutions: Mapping[str, bytes] | None = None,
        extra_files: Mapping[str, bytes] | None = None,
        allow_fast_forward: bool = True,
        allow_unrelated: bool = False,
    ) -> MergeOutcome:
        """Merge ``other_ref`` into the current branch.

        ``resolutions`` supplies content for conflicted paths (a missing entry
        for a conflict raises :class:`MergeConflictError`).  ``extra_files``
        lets the citation layer inject the merged ``citation.cite`` content
        into the merge commit, as MergeCite requires.
        """
        prepared = self.prepare_merge(other_ref)
        if prepared.base_oid is None and not allow_unrelated:
            raise MergeError(
                f"refusing to merge unrelated histories: {other_ref!r} shares no ancestor with HEAD"
            )
        if prepared.theirs_oid == prepared.ours_oid or (
            prepared.base_oid == prepared.theirs_oid
        ):
            # Other branch is already contained in ours: nothing to do.
            return MergeOutcome(commit_oid=prepared.ours_oid, fast_forward=True)

        author = author or self.make_signature(timestamp=timestamp)
        if timestamp is not None and author.timestamp != timestamp:
            author = Signature(name=author.name, email=author.email, timestamp=timestamp)

        if prepared.fast_forward and allow_fast_forward and not extra_files:
            self.refs.advance_head(prepared.theirs_oid)
            self._load_worktree(prepared.theirs_oid)
            return MergeOutcome(commit_oid=prepared.theirs_oid, fast_forward=True)

        files = dict(prepared.result.files)
        unresolved = list(prepared.result.conflicts)
        resolved: list[str] = []
        if resolutions:
            for path, content in resolutions.items():
                canonical = normalize_path(path)
                files[canonical] = content
                if canonical in unresolved:
                    unresolved.remove(canonical)
                    resolved.append(canonical)
        if unresolved:
            raise MergeConflictError(unresolved)
        if extra_files:
            for path, content in extra_files.items():
                files[normalize_path(path)] = content

        # Build the merged tree and commit with both parents.  Replacing the
        # worktree wholesale invalidates deferred worktree-derived state,
        # exactly like a checkout.  Paths whose merged bytes were taken
        # verbatim from an existing blob arrive with their fingerprints
        # primed as known-stored, so the add() below hashes and stores only
        # content the merge actually produced.
        overridden: set[str] = set()
        if resolutions:
            overridden.update(normalize_path(path) for path in resolutions)
        if extra_files:
            overridden.update(normalize_path(path) for path in extra_files)
        state = WorktreeState(files)
        for path, oid in prepared.result.taken_oids.items():
            if path not in overridden and path in state:
                state.mark_stored(path, oid)
        self._worktree.release_lease()
        self._worktree = state
        self._notify_worktree_reload()
        self.add()
        tree_oid = self.index.write_tree(self.store)
        message = message or f"Merge {other_ref} into {self.current_branch or 'HEAD'}"
        commit_oid = self._merge_commit(
            message=message,
            tree_oid=tree_oid,
            parents=(prepared.ours_oid, prepared.theirs_oid),
            author=author,
        )
        return MergeOutcome(
            commit_oid=commit_oid,
            fast_forward=False,
            conflicts_resolved=tuple(sorted(resolved)),
        )
