"""Sync sessions: negotiate → bundle → verified apply, plus ref updates.

This is the orchestration layer the repo-to-repo operations (push, pull,
fetch, clone), the hub's wire endpoints and the ``gitcite bundle`` commands
all share.  The contract that matters is *atomicity at the receiver*: a
bundle is checksum-verified, every object re-hashed and the whole incoming
graph connectivity-checked **before** a single byte lands in the receiving
store — a corrupt, truncated or inapplicable bundle raises
:class:`~repro.errors.BundleError` and leaves both the store and the refs
exactly as they were.

Ref movement is deliberately separate from object transfer
(:func:`update_refs_from_bundle`): receivers decide their own fast-forward
policy after the objects are safely in place, which is also why a rejected
non-fast-forward push can never leave dangling half-updated branches.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import faults
from repro.errors import BundleError, RefError, RemoteError
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import deserialize_object
from repro.vcs.transfer.bundle import Bundle, BundleWriter, read_bundle
from repro.vcs.transfer.frontier import RefAdvertisement, negotiate

__all__ = [
    "ApplyResult",
    "plan_bundle",
    "create_bundle",
    "apply_bundle",
    "verify_bundle",
    "update_refs_from_bundle",
]


@dataclass(frozen=True)
class ApplyResult:
    """What applying a bundle did to the receiving store."""

    bundle: Bundle
    #: How many objects the bundle carried (the wire transfer size).
    objects_total: int
    #: How many of them were actually missing and got written.
    objects_added: int
    #: Exactly the ids that were written (the exact-transfer property tests
    #: assert this equals the receiver's missing set).
    added_oids: frozenset


def plan_bundle(
    store: ObjectStore,
    wants,
    haves=(),
    refs: RefAdvertisement | None = None,
    closure_cache: dict | None = None,
):
    """Negotiate a transfer and prepare its writer without serialising yet.

    Returns ``(plan, writer)`` so callers that want to report the plan's
    statistics (the CLI, benchmarks) need not re-parse the stream they just
    wrote.  With empty ``haves`` the bundle is self-contained (a clone);
    otherwise it is thin — its prerequisites record the boundary commits the
    receiver must already have.  ``refs`` (usually the sender's
    advertisement) records the branch/tag tips whose history the bundle
    carries, restricted to tips that are actually among the wanted commits.
    """
    plan = negotiate(store, wants, haves, closure_cache=closure_cache)
    branches: dict = {}
    tags: dict = {}
    head_branch = None
    if refs is not None:
        wanted = set(plan.wants)
        branches = {name: oid for name, oid in refs.branches.items() if oid in wanted}
        tags = {name: oid for name, oid in refs.tags.items() if oid in wanted}
        if refs.head_branch in branches:
            head_branch = refs.head_branch
    writer = BundleWriter(
        store,
        prerequisites=plan.boundary,
        branches=branches,
        tags=tags,
        head_branch=head_branch,
    )
    writer.add(plan.objects)
    return plan, writer


def create_bundle(
    store: ObjectStore,
    wants,
    haves=(),
    refs: RefAdvertisement | None = None,
    closure_cache: dict | None = None,
) -> bytes:
    """Negotiate and serialise a bundle for ``wants`` thin against ``haves``."""
    _, writer = plan_bundle(store, wants, haves=haves, refs=refs, closure_cache=closure_cache)
    return writer.getvalue()


def _check_connectivity(
    store: ObjectStore, objects: dict[str, tuple[str, bytes]], bundle: Bundle
) -> None:
    """Every reference an incoming object makes must resolve.

    A referenced id must be in the incoming set or already in the receiving
    store — otherwise applying the bundle would create commits whose trees
    (or trees whose entries) dangle, which is exactly the partially-updated
    state the verify-then-write discipline exists to prevent.
    """

    def present(oid: str) -> bool:
        return oid in objects or oid in store

    for oid, (type_name, payload) in objects.items():
        if type_name == "blob":
            continue
        obj = deserialize_object(type_name, payload)
        if type_name == "commit":
            if not present(obj.tree_oid):
                raise BundleError(f"commit {oid}: tree {obj.tree_oid} is neither in the bundle nor stored")
            for parent in obj.parent_oids:
                if not present(parent):
                    raise BundleError(f"commit {oid}: parent {parent} is neither in the bundle nor stored")
        elif type_name == "tree":
            for entry in obj.entries:
                if not present(entry.oid):
                    raise BundleError(f"tree {oid}: entry {entry.name!r} points at missing {entry.oid}")
        elif type_name == "tag":
            if not present(obj.object_oid):
                raise BundleError(f"tag {oid}: target {obj.object_oid} is neither in the bundle nor stored")


def verify_bundle(store: ObjectStore | None, data) -> dict[str, tuple[str, bytes]]:
    """Fully verify a bundle without writing anything; returns its objects.

    Checks, in order: stream checksum (via :func:`read_bundle` when ``data``
    is raw bytes), per-object hash integrity, and — when a receiving store
    is given — prerequisite presence plus graph connectivity.  Raises
    :class:`BundleError` on the first violation.
    """
    bundle = data if isinstance(data, Bundle) else read_bundle(data)
    objects = bundle.materialize()
    if store is not None:
        for prerequisite in bundle.prerequisites:
            if prerequisite not in store:
                raise BundleError(
                    f"bundle requires prerequisite commit {prerequisite} "
                    "which this repository does not have"
                )
        _check_connectivity(store, objects, bundle)
    return objects


def apply_bundle(store: ObjectStore, data) -> ApplyResult:
    """Verify a bundle end to end, then install its missing objects.

    Verification (checksum, object hashes, prerequisites, connectivity)
    completes before the first write, so failure leaves the store untouched.
    Objects the store already has are skipped — the written set is exactly
    the receiver's missing objects — and the write goes through the
    backend's batched raw path.
    """
    bundle = data if isinstance(data, Bundle) else read_bundle(data)
    # Idempotency fast path: a re-sent bundle whose every object the store
    # already holds (the retry of a push whose first attempt landed but
    # whose response was lost) is a no-op success — no re-materialisation,
    # no writes, nothing to double-apply.  Record identity is enough: each
    # record names its oid, and an oid already present was verified when it
    # first landed.
    if all(record.oid in store for record in bundle.records):
        return ApplyResult(
            bundle=bundle,
            objects_total=bundle.object_count,
            objects_added=0,
            added_oids=frozenset(),
        )
    objects = verify_bundle(store, bundle)
    missing = [oid for oid in objects if oid not in store]
    # The window between full verification and the first write — a crash
    # armed here models dying with the bundle accepted but not yet applied.
    faults.fire("bundle.apply")
    added = store.put_raw_many(
        (oid, objects[oid][0], objects[oid][1]) for oid in missing
    )
    return ApplyResult(
        bundle=bundle,
        objects_total=len(objects),
        objects_added=added,
        added_oids=frozenset(missing),
    )


#: How often a ref-update transaction re-validates before giving up.  Each
#: retry means another writer committed between our validation and our lock
#: acquisition; the bound only exists to turn a livelock bug into an error.
_REF_CAS_MAX_ATTEMPTS = 64


def update_refs_from_bundle(
    repo, bundle: Bundle, force: bool = False, branches=None
) -> dict[str, str]:
    """Move the receiver's refs to the tips a (already applied) bundle carries.

    Branch updates are fast-forward-only unless ``force``; ``branches``
    optionally restricts which branch records are honoured.  Tags are only
    created, never moved (a conflicting tag raises unless ``force``).  The
    update is all-or-nothing: every move is validated *before* the first ref
    changes, so one rejected branch cannot leave the others half-applied.
    The working tree is refreshed when the currently checked-out branch
    moved.  Returns ``{ref name: new oid}`` for everything that changed.

    Concurrency: the update is an optimistic compare-and-swap transaction
    against :attr:`~repro.vcs.refs.RefStore.version`.  Validation (ancestry
    walks, object presence — the expensive part) runs without any lock
    against a version snapshot; the moves are committed under the ref
    store's lock only if no other writer committed in between, otherwise
    validation restarts against the new tips.  Two pushes racing the same
    branch therefore resolve exactly like sequential pushes: one wins, the
    other re-validates and is accepted (still fast-forward) or rejected
    (diverged) — an *acknowledged* update can never be silently overwritten.
    """
    from repro.vcs.merge import is_ancestor_commit
    from repro.vcs.refs import validate_ref_name

    def checked_name(name: str) -> str:
        # Bundle headers are untrusted input: an illegal name must fail the
        # validation phase as a BundleError, never blow up mid-apply.
        try:
            return validate_ref_name(name)
        except RefError as exc:
            raise BundleError(f"bundle carries an illegal ref name: {name!r}") from exc

    for _attempt in range(_REF_CAS_MAX_ATTEMPTS):
        snapshot = repo.refs.version
        branch_moves: dict[str, str] = {}
        for name, oid in sorted(bundle.branches.items()):
            if branches is not None and name not in branches:
                continue
            checked_name(name)
            if oid not in repo.store:
                raise BundleError(f"bundle names branch {name!r} at {oid}, which was not transferred")
            if repo.refs.has_branch(name):
                current = repo.refs.branch_target(name)
                if current == oid:
                    continue
                if not force and not is_ancestor_commit(repo.store, current, oid):
                    raise RemoteError(
                        f"refusing non-fast-forward update of branch {name!r} "
                        "(fetch and merge first, or force)"
                    )
            branch_moves[name] = oid
        tag_deletes: list[str] = []
        tag_moves: dict[str, str] = {}
        for name, oid in sorted(bundle.tags.items()):
            checked_name(name)
            existing = repo.refs.tags.get(name)
            if existing == oid:
                continue
            if existing is not None:
                if not force:
                    raise RemoteError(f"refusing to move existing tag {name!r}")
                tag_deletes.append(name)
            if oid not in repo.store:
                raise BundleError(f"bundle names tag {name!r} at {oid}, which was not transferred")
            tag_moves[name] = oid

        with repo.refs.lock:
            if repo.refs.version != snapshot:
                continue  # another writer committed; re-validate against the new tips
            updated: dict[str, str] = {}
            for name, oid in branch_moves.items():
                repo.refs.set_branch(name, oid)
                updated[name] = oid
            for name in tag_deletes:
                repo.refs.delete_tag(name)
            for name, oid in tag_moves.items():
                repo.refs.set_tag(name, oid)
                # A tag sharing a moved branch's name must not clobber the
                # branch entry in the report (namespaces are separate).
                updated.setdefault(name, oid)
            # Refresh the working tree only when the checked-out *branch*
            # moved — a tag that merely shares its name must not trigger a
            # checkout (which would silently revert uncommitted edits).
            # Inside the lock: the worktree install must see exactly the
            # tips this transaction committed.
            if repo.current_branch in branch_moves:
                repo.checkout(repo.current_branch)
        return updated
    raise RemoteError(
        "ref update starved: the ref store kept changing during "
        f"{_REF_CAS_MAX_ATTEMPTS} validation attempts"
    )
