"""The bundle format: a self-contained, verifiable transfer byte stream.

A bundle is the wire payload of the sync subsystem and the on-disk artefact
of ``gitcite bundle create``.  Layout::

    b"RBNDL1\\n"
    header lines (ascii, one record each):
      "prerequisite <oid>\\n"       commits the receiver must already have
      "branch <name> <oid>\\n"      the sender's branch tips carried along
      "tag <name> <oid>\\n"
      "head <branch name>\\n"       (optional) the sender's attached HEAD
    "objects <count>\\n"
    repeated object records, exactly the pack-file shape:
      "full <type> <oid> <csize>\\n"           + csize bytes of zlib payload
      "delta <type> <oid> <csize> <base-oid>\\n" + csize bytes of zlib delta
    "checksum <sha1 hex of every preceding byte>\\n"

Similar blobs are delta-compressed against a sliding window of recently
written full blobs using the *existing* pack-backend delta encoder
(:func:`repro.vcs.storage.pack.encode_delta`); a delta's base is always an
earlier full record of the same bundle, so the stream stays self-contained —
no receiver-side object is ever needed to decode it, only to satisfy the
declared prerequisites.

Everything is verified before anything is trusted: the trailing checksum
catches truncation and bit-flips, and :meth:`Bundle.materialize` re-hashes
every decoded object against its declared id, so a forged or corrupted
record can never be installed under a wrong name.  All failures raise
:class:`~repro.errors.BundleError`.
"""

from __future__ import annotations

import hashlib
import zlib
from dataclasses import dataclass
from typing import Iterable

from repro import faults
from repro.errors import BundleChecksumError, BundleError
from repro.utils.hashing import object_id
from repro.vcs.storage.pack import (
    _DELTA_HEADER_EXTRA,
    _DELTA_KEEP_RATIO,
    _DELTA_WINDOW,
    _delta_worth_trying,
    apply_delta,
    encode_delta,
)

__all__ = ["Bundle", "BundleRecord", "BundleWriter", "read_bundle", "write_bundle"]

_BUNDLE_MAGIC = b"RBNDL1\n"


@dataclass(frozen=True)
class BundleRecord:
    """One object record: compressed body plus enough header to place it."""

    kind: str  # "full" | "delta"
    type_name: str
    oid: str
    body: bytes  # zlib-compressed payload (full) or delta opcodes (delta)
    base_oid: str | None = None


@dataclass(frozen=True)
class Bundle:
    """A parsed (checksum-verified) bundle."""

    prerequisites: tuple[str, ...]
    branches: dict
    tags: dict
    head_branch: str | None
    records: tuple[BundleRecord, ...]

    @property
    def object_count(self) -> int:
        return len(self.records)

    def materialize(self) -> dict[str, tuple[str, bytes]]:
        """Decode every record into ``{oid: (type, payload)}``, verifying ids.

        Deltas are applied against earlier full records of the same bundle;
        every reconstructed payload is re-hashed against its declared oid.
        Any decompression failure, dangling in-bundle base or hash mismatch
        raises :class:`BundleError` — nothing partially decoded escapes.
        """
        objects: dict[str, tuple[str, bytes]] = {}
        for record in self.records:
            try:
                data = zlib.decompress(record.body)
            except zlib.error as exc:
                raise BundleError(f"object {record.oid}: corrupt record body: {exc}") from exc
            if record.kind == "delta":
                base = objects.get(record.base_oid or "")
                if base is None:
                    raise BundleError(
                        f"object {record.oid}: delta base {record.base_oid} "
                        "is not an earlier bundle record"
                    )
                try:
                    data = apply_delta(base[1], data)
                except (ValueError, IndexError) as exc:
                    raise BundleError(f"object {record.oid}: malformed delta: {exc}") from exc
            if object_id(record.type_name, data) != record.oid:
                raise BundleError(
                    f"object {record.oid}: payload does not hash to its declared id"
                )
            objects[record.oid] = (record.type_name, data)
        return objects


class BundleWriter:
    """Accumulate objects and serialise them as one delta-compressed bundle.

    The writer orders records the way the pack backend does — non-blobs
    first sorted by oid, blobs by (size, oid) so revisions of the same file
    land inside the delta window — and reuses the pack delta encoder with
    the same acceptance thresholds.  The ordering pass uses the store's
    type/size probes (header-only on disk layouts); payloads are read once,
    while serialising.
    """

    def __init__(
        self,
        store,
        prerequisites: Iterable[str] = (),
        branches: dict | None = None,
        tags: dict | None = None,
        head_branch: str | None = None,
    ) -> None:
        self._store = store
        self.prerequisites = list(dict.fromkeys(prerequisites))
        self.branches = dict(branches or {})
        self.tags = dict(tags or {})
        self.head_branch = head_branch
        self._oids: list[str] = []
        self._seen: set[str] = set()

    def add(self, oids: Iterable[str]) -> "BundleWriter":
        for oid in oids:
            if oid not in self._seen:
                self._seen.add(oid)
                self._oids.append(oid)
        return self

    def _ordered(self) -> list[str]:
        blobs: list[tuple[int, str]] = []
        others: list[str] = []
        for oid in self._oids:
            if self._store.get_type(oid) == "blob":
                blobs.append((self._store.blob_size(oid), oid))
            else:
                others.append(oid)
        return sorted(others) + [oid for _, oid in sorted(blobs)]

    def getvalue(self) -> bytes:
        """Serialise the accumulated objects as a complete bundle stream."""
        chunks: list[bytes] = [_BUNDLE_MAGIC]
        for oid in self.prerequisites:
            chunks.append(f"prerequisite {oid}\n".encode("ascii"))
        for name, oid in sorted(self.branches.items()):
            chunks.append(f"branch {name} {oid}\n".encode("ascii"))
        for name, oid in sorted(self.tags.items()):
            chunks.append(f"tag {name} {oid}\n".encode("ascii"))
        if self.head_branch:
            chunks.append(f"head {self.head_branch}\n".encode("ascii"))
        ordered = self._ordered()
        chunks.append(f"objects {len(ordered)}\n".encode("ascii"))
        #: Sliding window of recently written *full* blob payloads.
        window: list[tuple[str, bytes]] = []
        for oid in ordered:
            type_name, payload = self._store.get_raw(oid)
            full_compressed = zlib.compress(payload)
            best: tuple[str, bytes] | None = None
            if type_name == "blob":
                for base_oid, base_payload in reversed(window):
                    if not _delta_worth_trying(base_payload, payload):
                        continue
                    delta_compressed = zlib.compress(encode_delta(base_payload, payload))
                    if (
                        len(delta_compressed) + _DELTA_HEADER_EXTRA
                        < _DELTA_KEEP_RATIO * len(full_compressed)
                    ):
                        best = (base_oid, delta_compressed)
                        break
            if best is not None:
                base_oid, body = best
                header = f"delta {type_name} {oid} {len(body)} {base_oid}"
            else:
                body = full_compressed
                header = f"full {type_name} {oid} {len(body)}"
                if type_name == "blob":
                    window.append((oid, payload))
                    if len(window) > _DELTA_WINDOW:
                        window.pop(0)
            chunks.append(header.encode("ascii") + b"\n")
            chunks.append(body)
        stream = b"".join(chunks)
        digest = hashlib.sha1(stream).hexdigest()
        return stream + f"checksum {digest}\n".encode("ascii")


def write_bundle(
    store,
    oids: Iterable[str],
    prerequisites: Iterable[str] = (),
    branches: dict | None = None,
    tags: dict | None = None,
    head_branch: str | None = None,
) -> bytes:
    """One-shot convenience over :class:`BundleWriter`."""
    writer = BundleWriter(
        store,
        prerequisites=prerequisites,
        branches=branches,
        tags=tags,
        head_branch=head_branch,
    )
    writer.add(oids)
    return writer.getvalue()


def _read_line(data: bytes, cursor: int) -> tuple[str, int]:
    # No length cap: ref names have no bounded length on the write side, so
    # the reader must accept any line the writer can produce (a corrupt
    # stream costs at worst one scan to the end of the body).
    newline = data.find(b"\n", cursor)
    if newline < 0:
        raise BundleError("truncated bundle: unterminated header line")
    try:
        return data[cursor:newline].decode("ascii"), newline + 1
    except UnicodeDecodeError as exc:
        raise BundleError(f"malformed bundle header line: {exc}") from exc


def read_bundle(data: bytes) -> Bundle:
    """Parse and checksum-verify a bundle stream.

    The checksum is validated *first* (it covers every byte before its own
    line), so truncation, trailing garbage and bit-flips are all rejected
    before any record content is interpreted.  Stream-level damage raises
    :class:`BundleChecksumError` (retryable — the sender holds an intact
    copy); structural violations past the checksum raise plain
    :class:`BundleError`.
    """
    # Fault injection for mid-transfer damage: a truncate/flip armed here
    # mangles the stream exactly as a lossy wire would, and must be caught
    # by the checksum below, never by a parser crash.
    data = faults.corrupt("bundle.read", data)
    if not data.startswith(_BUNDLE_MAGIC):
        raise BundleChecksumError("not a bundle: bad magic")
    # The trailer is fixed-width: "checksum " + 40 hex chars + "\n".
    trailer_length = len("checksum ") + 40 + 1
    if len(data) < len(_BUNDLE_MAGIC) + trailer_length:
        raise BundleChecksumError("truncated bundle: missing checksum trailer")
    trailer = data[-trailer_length:]
    if not trailer.startswith(b"checksum ") or not trailer.endswith(b"\n"):
        raise BundleChecksumError("truncated bundle: missing checksum trailer")
    declared = trailer[len(b"checksum "):-1].decode("ascii", errors="replace")
    actual = hashlib.sha1(data[:-trailer_length]).hexdigest()
    if declared != actual:
        raise BundleChecksumError("bundle checksum mismatch (corrupt or truncated stream)")

    body = data[:-trailer_length]
    cursor = len(_BUNDLE_MAGIC)
    prerequisites: list[str] = []
    branches: dict = {}
    tags: dict = {}
    head_branch: str | None = None
    object_count: int | None = None
    while object_count is None:
        line, cursor = _read_line(body, cursor)
        fields = line.split(" ")
        if fields[0] == "prerequisite" and len(fields) == 2:
            prerequisites.append(fields[1])
        elif fields[0] == "branch" and len(fields) == 3:
            branches[fields[1]] = fields[2]
        elif fields[0] == "tag" and len(fields) == 3:
            tags[fields[1]] = fields[2]
        elif fields[0] == "head" and len(fields) == 2:
            head_branch = fields[1]
        elif fields[0] == "objects" and len(fields) == 2:
            try:
                object_count = int(fields[1])
            except ValueError as exc:
                raise BundleError(f"malformed object count: {line!r}") from exc
            # Each record costs at least one header byte, so a count larger
            # than the remaining body is malformed — rejecting it up front
            # bounds the parse loop by the actual input size instead of an
            # attacker-chosen number.
            if object_count < 0 or object_count > len(body) - cursor:
                raise BundleError(f"implausible object count: {object_count}")
        else:
            raise BundleError(f"unknown bundle header line: {line!r}")

    records: list[BundleRecord] = []
    for _ in range(object_count):
        line, cursor = _read_line(body, cursor)
        fields = line.split(" ")
        if fields[0] == "full" and len(fields) == 4:
            kind, type_name, oid, base_oid = fields[0], fields[1], fields[2], None
        elif fields[0] == "delta" and len(fields) == 5:
            kind, type_name, oid, base_oid = fields[0], fields[1], fields[2], fields[4]
        else:
            raise BundleError(f"malformed object record header: {line!r}")
        try:
            csize = int(fields[3])
        except ValueError as exc:
            raise BundleError(f"malformed object record header: {line!r}") from exc
        if csize < 0:
            # A negative size would make the cursor rewind (an infinite-ish
            # re-parse of the same bytes) and slip past the length check
            # below via negative slicing.
            raise BundleError(f"malformed object record header: {line!r}")
        record_body = body[cursor:cursor + csize]
        if len(record_body) < csize:
            raise BundleError(f"truncated bundle: object {oid} body is incomplete")
        cursor += csize
        records.append(
            BundleRecord(kind=kind, type_name=type_name, oid=oid, body=record_body, base_oid=base_oid)
        )
    if cursor != len(body):
        raise BundleError("malformed bundle: trailing bytes after the last record")
    return Bundle(
        prerequisites=tuple(prerequisites),
        branches=branches,
        tags=tags,
        head_branch=head_branch,
        records=tuple(records),
    )
