"""Have/want negotiation: ref advertisement and the reachability frontier walk.

The seed transferred history by flattening *every* tree of *every* ancestor
commit and offering the full object set on each push/pull/fetch — O(history)
wire planning no matter how little changed.  This module is the O(new) half
of the sync subsystem:

* :func:`advertise_refs` — the ref advertisement a repository publishes
  (branches, tags, HEAD), the "haves" a receiver offers and the "wants" a
  sender resolves against;
* :func:`common_tips` — the multi-round negotiation used between in-process
  repositories: walk back from the receiver's tips until commits the source
  also knows are found, so a receiver that is *ahead* of the source still
  produces useful haves instead of an empty set;
* :func:`negotiate` — the frontier walk itself: starting from the wanted
  commits, descend the commit graph and stop at the common ancestors implied
  by the haves.  The objects of each new commit are collected through
  :func:`~repro.vcs.treeops.tree_closure` with one shared memo cache keyed by
  tree oid, so an unchanged subtree is never re-flattened — planning a push
  of one commit on a deep history touches the changed subtrees plus one
  closure of the boundary tree, not every tree of every ancestor.

The resulting :class:`SyncPlan` is what the bundle writer serialises and what
the benchmarks count: ``plan.objects`` is exactly the transfer offer.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import RemoteError
from repro.vcs.object_store import ObjectStore
from repro.vcs.treeops import tree_closure

__all__ = ["RefAdvertisement", "SyncPlan", "advertise_refs", "common_tips", "negotiate"]


@dataclass(frozen=True)
class RefAdvertisement:
    """What a repository tells the world about its refs (the wire `git/refs`)."""

    branches: dict
    tags: dict
    default_branch: str
    head_branch: str | None
    head_oid: str | None

    def tips(self) -> set[str]:
        """Every advertised commit id (branch tips, tag targets, detached HEAD)."""
        tips = set(self.branches.values()) | set(self.tags.values())
        if self.head_oid:
            tips.add(self.head_oid)
        return tips

    def to_dict(self) -> dict:
        return {
            "default_branch": self.default_branch,
            "head": {"branch": self.head_branch, "sha": self.head_oid},
            "branches": [
                {"name": name, "sha": oid} for name, oid in sorted(self.branches.items())
            ],
            "tags": [{"name": name, "sha": oid} for name, oid in sorted(self.tags.items())],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RefAdvertisement":
        head = payload.get("head") or {}
        return cls(
            branches={entry["name"]: entry["sha"] for entry in payload.get("branches", [])},
            tags={entry["name"]: entry["sha"] for entry in payload.get("tags", [])},
            default_branch=payload.get("default_branch", "main"),
            head_branch=head.get("branch"),
            head_oid=head.get("sha"),
        )


@dataclass(frozen=True)
class SyncPlan:
    """The outcome of a negotiation: what moves and what both sides share."""

    #: The commit ids the receiver asked for.
    wants: tuple[str, ...]
    #: The advertised haves the source actually knows (unknown ones dropped).
    haves: tuple[str, ...]
    #: Commits to transfer, oldest first (parents before children).
    new_commits: tuple[str, ...]
    #: Common commits adjacent to the new range (the thin-bundle prerequisites).
    boundary: tuple[str, ...]
    #: Every object id to transfer: commits, trees and blobs, in send order.
    objects: tuple[str, ...]

    @property
    def objects_offered(self) -> int:
        """How many objects this plan puts on the wire (the benchmark metric)."""
        return len(self.objects)


def advertise_refs(repo) -> RefAdvertisement:
    """Build the ref advertisement of a repository (its ``refs`` snapshot)."""
    refs = repo.refs
    return RefAdvertisement(
        branches=dict(refs.branches),
        tags=dict(refs.tags),
        default_branch=refs.default_branch,
        head_branch=refs.head_branch,
        head_oid=refs.head_commit(),
    )


def common_tips(source_store: ObjectStore, receiver) -> list[str]:
    """The closest receiver commits the source also has (multi-round haves).

    Walks the receiver's commit graph backwards from its advertised tips and
    stops each line of descent at the first commit present in
    ``source_store``.  A receiver that is ahead of the source (local commits
    the source never saw) therefore still advertises the shared base instead
    of tips the source would have to discard — the cost is bounded by the
    receiver-only commits plus one membership probe per boundary commit.
    """
    known: list[str] = []
    seen: set[str] = set()
    frontier = sorted(advertise_refs(receiver).tips())
    store = receiver.store
    while frontier:
        oid = frontier.pop()
        if oid in seen:
            continue
        seen.add(oid)
        if oid in source_store:
            known.append(oid)
            continue
        if oid in store and store.get_type(oid) == "commit":
            frontier.extend(store.get_commit(oid).parent_oids)
    return sorted(known)


def _shared_ancestors(store: ObjectStore, tips: list[str]) -> set[str]:
    """All commit ids reachable from ``tips``, one shared walk (no tree reads)."""
    seen: set[str] = set()
    frontier = list(tips)
    while frontier:
        oid = frontier.pop()
        if oid in seen:
            continue
        seen.add(oid)
        frontier.extend(
            parent for parent in store.get_commit(oid).parent_oids if parent not in seen
        )
    return seen


def _new_commits_topological(
    store: ObjectStore, wants: list[str], common: set[str]
) -> list[str]:
    """Commits reachable from ``wants`` but not common, parents before children."""
    ordered: list[str] = []
    state: dict[str, int] = {}  # 0 = entered, 1 = emitted
    stack = list(wants)
    while stack:
        oid = stack[-1]
        if oid in common or state.get(oid) == 1:
            stack.pop()
            continue
        if state.get(oid) == 0:
            state[oid] = 1
            ordered.append(oid)
            stack.pop()
            continue
        state[oid] = 0
        for parent in store.get_commit(oid).parent_oids:
            if parent not in common and state.get(parent) != 1:
                stack.append(parent)
    return ordered


def negotiate(
    store: ObjectStore,
    wants,
    haves=(),
    closure_cache: dict[str, frozenset[str]] | None = None,
) -> SyncPlan:
    """Plan a transfer: which objects must move for the receiver to own ``wants``.

    ``wants`` must name commits present in ``store`` (a missing want raises
    :class:`RemoteError`); ``haves`` are the receiver's advertised commits and
    may freely include ids the source has never seen — they are dropped, like
    a real ``git fetch`` negotiation does.  The commit walk stops at the
    common ancestors, and each new commit contributes its memoised tree
    closure minus everything the boundary trees (and earlier new commits)
    already cover, so the offer is O(changed) objects.
    """
    cache = {} if closure_cache is None else closure_cache
    want_list: list[str] = []
    for want in wants:
        if want in want_list:
            continue
        if want not in store or store.get_type(want) != "commit":
            raise RemoteError(f"cannot negotiate: unknown want {want!r}")
        want_list.append(want)

    have_list: list[str] = []
    for have in haves:
        if have in have_list:
            continue
        if have in store and store.get_type(have) == "commit":
            have_list.append(have)

    common = _shared_ancestors(store, have_list)
    new_commits = _new_commits_topological(store, want_list, common)

    boundary: list[str] = []
    for oid in new_commits:
        for parent in store.get_commit(oid).parent_oids:
            if parent in common and parent not in boundary:
                boundary.append(parent)

    known: set[str] = set()
    for oid in boundary:
        known |= tree_closure(store, store.get_commit(oid).tree_oid, cache)

    objects: list[str] = []
    sent: set[str] = set()
    for oid in new_commits:
        objects.append(oid)
        closure = tree_closure(store, store.get_commit(oid).tree_oid, cache)
        fresh = closure - known - sent
        objects.extend(sorted(fresh))
        sent |= fresh

    return SyncPlan(
        wants=tuple(want_list),
        haves=tuple(have_list),
        new_commits=tuple(new_commits),
        boundary=tuple(boundary),
        objects=tuple(objects),
    )
