"""Smart incremental sync: have/want negotiation and bundle transfer.

The subsystem behind every repo-to-repo path (push, pull, fetch, clone, the
hub's ``git/refs`` / ``upload-pack`` / ``receive-pack`` wire endpoints and
the ``gitcite bundle`` commands).  Three layers:

* :mod:`~repro.vcs.transfer.frontier` — ref advertisement and the
  reachability frontier walk that plans an O(changed) transfer;
* :mod:`~repro.vcs.transfer.bundle` — the self-contained, checksummed,
  delta-compressed bundle byte format;
* :mod:`~repro.vcs.transfer.session` — negotiate → bundle → verified apply,
  with receiver-side atomicity (a bad bundle changes nothing).
"""

from repro.vcs.transfer.bundle import (
    Bundle,
    BundleRecord,
    BundleWriter,
    read_bundle,
    write_bundle,
)
from repro.vcs.transfer.frontier import (
    RefAdvertisement,
    SyncPlan,
    advertise_refs,
    common_tips,
    negotiate,
)
from repro.vcs.transfer.session import (
    ApplyResult,
    apply_bundle,
    create_bundle,
    plan_bundle,
    update_refs_from_bundle,
    verify_bundle,
)

__all__ = [
    "Bundle",
    "BundleRecord",
    "BundleWriter",
    "read_bundle",
    "write_bundle",
    "RefAdvertisement",
    "SyncPlan",
    "advertise_refs",
    "common_tips",
    "negotiate",
    "ApplyResult",
    "apply_bundle",
    "create_bundle",
    "plan_bundle",
    "update_refs_from_bundle",
    "verify_bundle",
]
