"""Operations on stored trees: flattening, building, lookup and extraction.

Trees are stored as nested objects (a directory's entry points at the subtree
object).  The citation model, the diff machinery and the staging index all
prefer a *flat* view — a mapping from canonical repository path (``"/a/b"``)
to ``(object id, mode)`` — because the citation function itself is keyed by
path.  This module converts between the two representations.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Iterator, Mapping

from repro.errors import VCSError
from repro.utils.paths import ROOT, join_path, normalize_path, split_path
from repro.utils.sortedkeys import descendant_slice
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import MODE_DIRECTORY, MODE_FILE, Tree, TreeEntry

__all__ = [
    "flatten_tree",
    "flatten_files",
    "build_tree",
    "build_tree_incremental",
    "build_tree_from_sorted_index",
    "tree_closure",
    "lookup_path",
    "list_directories",
    "subtree_oid",
    "tree_contains",
    "iter_file_paths",
]


def flatten_tree(store: ObjectStore, tree_oid: str, base: str = ROOT) -> dict[str, tuple[str, str]]:
    """Flatten the tree at ``tree_oid`` into ``{path: (oid, mode)}``.

    Both files and directories appear in the result; the base directory itself
    is included under its own path with mode :data:`MODE_DIRECTORY`.
    """
    base = normalize_path(base)
    result: dict[str, tuple[str, str]] = {base: (tree_oid, MODE_DIRECTORY)}
    tree = store.get_tree(tree_oid)
    for entry in tree.entries:
        path = join_path(base, entry.name)
        if entry.is_directory:
            result.update(flatten_tree(store, entry.oid, base=path))
        else:
            result[path] = (entry.oid, entry.mode)
    return result


def flatten_files(store: ObjectStore, tree_oid: str, base: str = ROOT) -> dict[str, tuple[str, str]]:
    """Like :func:`flatten_tree` but restricted to file (blob) entries."""
    return {
        path: (oid, mode)
        for path, (oid, mode) in flatten_tree(store, tree_oid, base=base).items()
        if mode != MODE_DIRECTORY
    }


def iter_file_paths(store: ObjectStore, tree_oid: str) -> Iterator[str]:
    """Yield the canonical paths of every file reachable from ``tree_oid``."""
    yield from sorted(flatten_files(store, tree_oid))


def list_directories(store: ObjectStore, tree_oid: str) -> list[str]:
    """Return the canonical paths of every directory reachable from ``tree_oid``."""
    return sorted(
        path
        for path, (_, mode) in flatten_tree(store, tree_oid).items()
        if mode == MODE_DIRECTORY
    )


def build_tree(store: ObjectStore, files: Mapping[str, tuple[str, str]]) -> str:
    """Build nested tree objects from a flat ``{path: (blob oid, mode)}`` map.

    Only file entries may be supplied; directories are created implicitly.
    Returns the id of the root tree (an empty map produces an empty tree).
    Paths may be in any of the accepted loose forms; canonicalisation and
    the actual materialisation are delegated to
    :func:`build_tree_incremental` with an empty cache.
    """
    canonical = {normalize_path(path): value for path, value in files.items()}
    root_oid, _, _ = build_tree_incremental(store, canonical, {}, set())
    return root_oid


#: Sentinel marking a nested-dict child as "reuse the cached subtree oid".
_REUSED_SUBTREE = object()


def build_tree_incremental(
    store: ObjectStore,
    files: Mapping[str, tuple[str, str]],
    cached_subtrees: Mapping[str, str],
    dirty_directories: set[str],
) -> tuple[str, dict[str, str], dict[str, int]]:
    """Build nested trees, reusing cached oids for unchanged subtrees.

    ``cached_subtrees`` maps directory path → tree oid as of an earlier
    build of the *same store*; ``dirty_directories`` must contain every
    directory with a changed, added or removed file anywhere beneath it.  A
    directory that is cached and not dirty is emitted by oid without being
    re-serialised, re-hashed or re-stored — files beneath it are not even
    visited while nesting.

    Unlike :func:`build_tree`, paths are assumed canonical (the staging
    index guarantees it); file/directory conflicts still raise
    :class:`VCSError`.

    Returns ``(root oid, new directory → oid map, {"built": n, "reused": m})``.
    """
    nested: dict = {}
    stats = {"built": 0, "reused": 0}
    for path, value in files.items():
        if value[1] == MODE_DIRECTORY:
            raise VCSError(f"build_tree expects file entries only, got directory {path!r}")
        if path == ROOT:
            raise VCSError("cannot store a file at the repository root path '/'")
        parts = path[1:].split("/")
        cursor = nested
        dir_path = ""
        pruned = False
        for component in parts[:-1]:
            dir_path = f"{dir_path}/{component}"
            if dir_path not in dirty_directories and dir_path in cached_subtrees:
                # The whole subtree is unchanged: mark it once and stop
                # descending into this file's path.
                cursor[component] = _REUSED_SUBTREE
                pruned = True
                break
            existing = cursor.get(component)
            if existing is _REUSED_SUBTREE or existing is None:
                existing = cursor[component] = {}
            elif not isinstance(existing, dict):
                raise VCSError(
                    f"path conflict: {component!r} is both a file and a directory under {path!r}"
                )
            cursor = existing
        if not pruned:
            if parts[-1] in cursor:
                raise VCSError(f"path conflict: {path!r} is both a file and a directory")
            cursor[parts[-1]] = value

    new_cache = {
        path: oid for path, oid in cached_subtrees.items() if path not in dirty_directories
    }

    def _build(node: dict, dir_path: str) -> str:
        entries: list[TreeEntry] = []
        for name, value in node.items():
            child_path = dir_path + name if dir_path == ROOT else f"{dir_path}/{name}"
            if value is _REUSED_SUBTREE:
                stats["reused"] += 1
                entries.append(
                    TreeEntry(name=name, oid=cached_subtrees[child_path], mode=MODE_DIRECTORY)
                )
            elif isinstance(value, dict):
                child_oid = _build(value, child_path)
                entries.append(TreeEntry(name=name, oid=child_oid, mode=MODE_DIRECTORY))
            else:
                blob_oid, mode = value
                entries.append(TreeEntry(name=name, oid=blob_oid, mode=mode))
        tree = Tree(entries=tuple(entries))
        oid = store.put(tree)
        new_cache[dir_path] = oid
        stats["built"] += 1
        return oid

    root_oid = _build(nested, ROOT)
    return root_oid, new_cache, stats


def build_tree_from_sorted_index(
    store: ObjectStore,
    sorted_paths: list[str],
    entries: Mapping[str, tuple[str, str]],
    cached_subtrees: Mapping[str, str],
    dirty_directories: set[str],
) -> tuple[str, dict[str, str], dict[str, int]]:
    """Build nested trees from a *sorted* path list, touching only dirty work.

    The O(n) half of :func:`build_tree_incremental` is its pass over every
    file entry to nest them, even when almost every subtree is pruned.  Here
    a directory's direct children are enumerated by bisect jumps over the
    sorted path list (each child costs one bisect to skip its subtree), and
    only dirty directories are descended into — clean ones are emitted from
    ``cached_subtrees`` without their ranges ever being visited.  For a
    commit that touched one file this is O(changed · depth · branching ·
    log n) instead of O(n).

    ``sorted_paths`` must be the sorted keys of ``entries`` (the staging
    index maintains exactly that), all canonical, satisfying the worktree
    invariant.  Return value and stats match :func:`build_tree_incremental`.
    """
    new_cache = {
        path: oid for path, oid in cached_subtrees.items() if path not in dirty_directories
    }
    stats = {"built": 0, "reused": 0}

    def build(dir_path: str) -> str:
        if dir_path == ROOT:
            low, high = 0, len(sorted_paths)
            prefix = "/"
        else:
            low, high = descendant_slice(sorted_paths, dir_path)
            prefix = dir_path + "/"
        tree_entries: list[TreeEntry] = []
        position = low
        while position < high:
            path = sorted_paths[position]
            remainder = path[len(prefix):]
            cut = remainder.find("/")
            if cut < 0:
                blob_oid, mode = entries[path]
                tree_entries.append(TreeEntry(name=remainder, oid=blob_oid, mode=mode))
                position += 1
                continue
            name = remainder[:cut]
            child_path = prefix + name
            if child_path in dirty_directories or child_path not in cached_subtrees:
                child_oid = build(child_path)
            else:
                child_oid = cached_subtrees[child_path]
                stats["reused"] += 1
            tree_entries.append(TreeEntry(name=name, oid=child_oid, mode=MODE_DIRECTORY))
            # Skip the whole child subtree: "0" is the successor of "/".
            position = bisect_left(sorted_paths, child_path + "0", position, high)
        oid = store.put(Tree(entries=tuple(tree_entries)))
        new_cache[dir_path] = oid
        stats["built"] += 1
        return oid

    root_oid = build(ROOT)
    return root_oid, new_cache, stats


def tree_closure(
    store: ObjectStore, tree_oid: str, cache: dict[str, frozenset[str]] | None = None
) -> frozenset[str]:
    """Every object id reachable from the tree at ``tree_oid`` (itself included).

    ``cache`` memoises the closure per *tree oid*: trees are content-addressed,
    so two commits sharing an unchanged subtree share its closure, and a walk
    over many commits of the same history flattens each distinct subtree
    exactly once instead of once per commit.  The sync subsystem's frontier
    walker passes one cache across the whole negotiation, which is what makes
    collecting the objects of a new commit O(changed subtrees), not O(tree).
    """
    if cache is None:
        cache = {}
    cached = cache.get(tree_oid)
    if cached is not None:
        return cached
    members: set[str] = {tree_oid}
    for entry in store.get_tree(tree_oid).entries:
        if entry.is_directory:
            members |= tree_closure(store, entry.oid, cache)
        else:
            members.add(entry.oid)
    closure = frozenset(members)
    cache[tree_oid] = closure
    return closure


def lookup_path(store: ObjectStore, tree_oid: str, path: str) -> tuple[str, str] | None:
    """Resolve ``path`` inside the tree at ``tree_oid``.

    Returns ``(object id, mode)`` for the file or directory at that path, or
    ``None`` when the path does not exist in this version.
    """
    parts = split_path(path)
    current_oid = tree_oid
    current_mode = MODE_DIRECTORY
    for component in parts:
        if current_mode != MODE_DIRECTORY:
            return None
        tree = store.get_tree(current_oid)
        entry = tree.entry(component)
        if entry is None:
            return None
        current_oid = entry.oid
        current_mode = entry.mode
    return current_oid, current_mode


def tree_contains(store: ObjectStore, tree_oid: str, path: str) -> bool:
    """Return whether ``path`` (file or directory) exists in the tree."""
    return lookup_path(store, tree_oid, path) is not None


def subtree_oid(store: ObjectStore, tree_oid: str, path: str) -> str:
    """Return the tree id of the directory at ``path``.

    Raises
    ------
    VCSError
        If the path does not exist or is a file.
    """
    resolved = lookup_path(store, tree_oid, path)
    if resolved is None:
        raise VCSError(f"no such directory in this version: {path!r}")
    oid, mode = resolved
    if mode != MODE_DIRECTORY:
        raise VCSError(f"path is a file, not a directory: {path!r}")
    return oid


def file_mode_for(data: bytes, executable: bool = False) -> str:
    """Return the tree-entry mode for a new file (helper for the index)."""
    del data  # content does not influence the mode in this substrate
    return "100755" if executable else MODE_FILE
