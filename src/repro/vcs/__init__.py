"""A pure-Python version-control substrate with Git semantics.

The paper builds GitCite on top of Git and GitHub.  Neither a ``git`` binary
nor GitPython is available in this offline environment, so this package
implements the subset of Git semantics that the citation model depends on,
from scratch:

* a content-addressable object store of blobs, trees, commits and tags
  (``objects``, ``object_store``);
* branches, tags and ``HEAD`` (``refs``);
* a staging index and an in-memory working tree (``index``,
  ``repository``), with helpers to materialise snapshots on disk
  (``worktree``);
* tree diffs with rename detection (``diff``);
* merge-base computation and three-way merges with conflict detection
  (``merge``);
* clone / fork / push / pull between repositories (``remote``).

Everything is deterministic: object ids depend only on content and the
timestamps/authors supplied by the caller, never on wall-clock time, which is
what makes the paper's Listing 1 reproducible byte-for-byte.
"""

from repro.vcs.objects import Blob, Commit, Signature, Tag, Tree, TreeEntry
from repro.vcs.object_store import ObjectStore
from repro.vcs.storage import (
    LooseFileBackend,
    MemoryBackend,
    ObjectBackend,
    PackBackend,
    make_backend,
)
from repro.vcs.refs import RefStore
from repro.vcs.index import StagingIndex
from repro.vcs.diff import DiffEntry, TreeDiff, diff_trees
from repro.vcs.merge import MergeResult, find_merge_base, merge_blobs, merge_trees
from repro.vcs.repository import Repository
from repro.vcs.remote import clone_repository, fork_repository, pull, push

__all__ = [
    "Blob",
    "Commit",
    "Signature",
    "Tag",
    "Tree",
    "TreeEntry",
    "ObjectStore",
    "ObjectBackend",
    "MemoryBackend",
    "LooseFileBackend",
    "PackBackend",
    "make_backend",
    "RefStore",
    "StagingIndex",
    "DiffEntry",
    "TreeDiff",
    "diff_trees",
    "MergeResult",
    "find_merge_base",
    "merge_blobs",
    "merge_trees",
    "Repository",
    "clone_repository",
    "fork_repository",
    "pull",
    "push",
]
