"""Branches, tags and ``HEAD``.

A :class:`RefStore` maps branch and tag names to commit ids and tracks
``HEAD``, which is either *symbolic* (attached to a branch, the normal state)
or *detached* (pointing directly at a commit id, used when checking out a
historical version — exactly what the citation model does when it needs the
citation function "of version V").

Thread-safety contract
----------------------
Every mutation happens under the store's re-entrant :attr:`RefStore.lock`
and bumps the monotonic :attr:`RefStore.version` counter.  Readers never
take the lock — single name lookups are atomic dict operations and the
``branches`` / ``tags`` properties return copies — which is what lets a
hosted repository keep serving ref advertisements while a push is being
applied.  Writers that need *compare-and-swap* semantics (concurrent pushes
racing to move the same branch) either call
:meth:`RefStore.compare_and_swap_branch` or run an optimistic loop: read
:attr:`version`, validate against a snapshot, then re-check the version
under the lock before committing (see
:func:`repro.vcs.transfer.session.update_refs_from_bundle`).
"""

from __future__ import annotations

import re
import threading
from typing import Optional

from repro.errors import RefError

__all__ = ["RefStore", "DEFAULT_BRANCH", "validate_ref_name"]

DEFAULT_BRANCH = "main"

_REF_NAME_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._/-]*$")


def validate_ref_name(name: str) -> str:
    """Check a branch/tag name; raises :class:`RefError` when illegal.

    Public so untrusted ref names arriving from outside (bundle headers, wire
    payloads) can be vetted *before* any ref store is touched.
    """
    if not _REF_NAME_PATTERN.match(name) or name.endswith("/") or ".." in name:
        raise RefError(f"illegal reference name: {name!r}")
    return name


class RefStore:
    """Branch/tag/HEAD bookkeeping for a single repository."""

    def __init__(self, default_branch: str = DEFAULT_BRANCH) -> None:
        validate_ref_name(default_branch)
        self._branches: dict[str, str] = {}  # guarded-by: lock
        self._tags: dict[str, str] = {}  # guarded-by: lock
        self._head_branch: Optional[str] = default_branch  # guarded-by: lock
        self._head_oid: Optional[str] = None  # guarded-by: lock
        self.default_branch = default_branch
        #: Guards every mutation (re-entrant: mutators may nest).  Readers
        #: do not take it — see the module docstring.
        self.lock = threading.RLock()
        self._version = 0  # guarded-by: lock

    @property
    def version(self) -> int:
        """Monotonic counter bumped by every mutation (the CAS snapshot token).

        Read it before validating a batch of ref moves; if it is unchanged
        once :attr:`lock` is held, no ref moved in between and the
        validated batch can be committed atomically.
        """
        return self._version

    def _bump(self) -> None:  # lint: holds-lock(lock)
        self._version += 1

    # -- branches ----------------------------------------------------------

    @property
    def branches(self) -> dict[str, str]:
        """A copy of the branch → commit-id map."""
        return dict(self._branches)

    def has_branch(self, name: str) -> bool:
        return name in self._branches

    def branch_target(self, name: str) -> str:
        try:
            return self._branches[name]
        except KeyError:
            raise RefError(f"unknown branch: {name!r}") from None

    def set_branch(self, name: str, oid: str) -> None:
        """Create or move a branch to ``oid``."""
        validate_ref_name(name)
        with self.lock:
            self._branches[name] = oid
            self._bump()

    def compare_and_swap_branch(self, name: str, expected: Optional[str], oid: str) -> bool:
        """Move ``name`` to ``oid`` only if it currently points at ``expected``.

        ``expected=None`` means "the branch must not exist yet".  Returns
        ``False`` — moving nothing — when another writer got there first;
        the caller re-reads, re-validates (fast-forward checks and all) and
        retries.  This is the primitive that makes concurrent pushes safe
        without serialising them: the expensive bundle verification happens
        outside any lock, only the ref move itself is atomic.
        """
        validate_ref_name(name)
        with self.lock:
            current = self._branches.get(name)
            if current != expected:
                return False
            self._branches[name] = oid
            self._bump()
            return True

    def delete_branch(self, name: str) -> None:
        with self.lock:
            if name == self._head_branch:
                raise RefError(f"cannot delete the currently checked-out branch {name!r}")
            if name not in self._branches:
                raise RefError(f"unknown branch: {name!r}")
            del self._branches[name]
            self._bump()

    def rename_branch(self, old: str, new: str) -> None:
        validate_ref_name(new)
        with self.lock:
            if new in self._branches:
                raise RefError(f"branch already exists: {new!r}")
            self._branches[new] = self.branch_target(old)
            del self._branches[old]
            if self._head_branch == old:
                self._head_branch = new
            if self.default_branch == old:
                self.default_branch = new
            self._bump()

    # -- tags --------------------------------------------------------------

    @property
    def tags(self) -> dict[str, str]:
        return dict(self._tags)

    def set_tag(self, name: str, oid: str) -> None:
        validate_ref_name(name)
        with self.lock:
            if name in self._tags:
                raise RefError(f"tag already exists: {name!r}")
            self._tags[name] = oid
            self._bump()

    def tag_target(self, name: str) -> str:
        try:
            return self._tags[name]
        except KeyError:
            raise RefError(f"unknown tag: {name!r}") from None

    def delete_tag(self, name: str) -> None:
        with self.lock:
            if name not in self._tags:
                raise RefError(f"unknown tag: {name!r}")
            del self._tags[name]
            self._bump()

    # -- HEAD --------------------------------------------------------------

    @property
    def head_branch(self) -> Optional[str]:
        """The branch HEAD is attached to, or ``None`` when detached."""
        return self._head_branch

    @property
    def is_detached(self) -> bool:
        return self._head_branch is None

    def head_commit(self) -> Optional[str]:
        """The commit id HEAD ultimately points at (``None`` before the first commit)."""
        if self._head_branch is not None:
            return self._branches.get(self._head_branch)
        return self._head_oid

    def attach_head(self, branch: str) -> None:
        """Point HEAD at ``branch`` (which must exist unless the repo is empty)."""
        validate_ref_name(branch)
        with self.lock:
            if self._branches and branch not in self._branches:
                raise RefError(f"cannot attach HEAD to unknown branch {branch!r}")
            self._head_branch = branch
            self._head_oid = None
            self._bump()

    def detach_head(self, oid: str) -> None:
        """Point HEAD directly at a commit id."""
        with self.lock:
            self._head_branch = None
            self._head_oid = oid
            self._bump()

    def advance_head(self, oid: str) -> None:
        """Move HEAD (and its branch, if attached) to a new commit id."""
        with self.lock:
            if self._head_branch is not None:
                self._branches[self._head_branch] = oid
            else:
                self._head_oid = oid
            self._bump()

    # -- resolution ---------------------------------------------------------

    def resolve(self, name: str) -> str:
        """Resolve a branch name, tag name or ``"HEAD"`` to a commit id."""
        if name == "HEAD":
            oid = self.head_commit()
            if oid is None:
                raise RefError("HEAD does not point at any commit yet")
            return oid
        if name in self._branches:
            return self._branches[name]
        if name in self._tags:
            return self._tags[name]
        raise RefError(f"unknown reference: {name!r}")

    def clone(self) -> "RefStore":
        """Return an independent copy (used by repository clone/fork).

        Taken under the source's lock so a concurrent push cannot be caught
        half-applied; the copy gets its own fresh lock and version counter.
        """
        with self.lock:
            duplicate = RefStore(default_branch=self.default_branch)
            duplicate._branches = dict(self._branches)
            duplicate._tags = dict(self._tags)
            duplicate._head_branch = self._head_branch
            duplicate._head_oid = self._head_oid
            return duplicate
