"""The staging index.

The index is the flat set of ``path → (blob id, mode)`` entries that the next
commit will snapshot.  ``Repository.add`` copies working-tree content into
blobs and records them here; ``Repository.commit`` turns the index into nested
tree objects via :func:`repro.vcs.treeops.build_tree_incremental`.

Two structures make the hot paths cheap:

* a sorted list of staged paths, so the file/directory conflict check in
  :meth:`StagingIndex.stage` is an O(depth + log n) probe instead of a scan
  over every staged entry (staging a whole worktree used to be quadratic);
* a subtree-oid cache from the last materialised tree, so
  :meth:`StagingIndex.write_tree` only re-serialises and re-hashes the
  directories whose entries actually changed since the previous
  ``write_tree``/``read_tree`` — unchanged subtrees reuse their oids.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import IndexError_
from repro.utils.paths import ROOT, ancestors, normalize_path
from repro.utils.sortedkeys import descendant_slice, sorted_insert, sorted_remove
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import MODE_DIRECTORY, MODE_FILE
from repro.vcs.treeops import build_tree_from_sorted_index, flatten_tree

__all__ = ["StagingIndex"]


class StagingIndex:
    """A flat map of staged file entries."""

    def __init__(self) -> None:
        self._entries: dict[str, tuple[str, str]] = {}
        self._sorted_paths: list[str] = []
        # State of the last write_tree/read_tree sync: the flat entries it
        # covered, the directory → tree-oid map it produced, and the store
        # those oids live in.  write_tree diffs against this to find dirty
        # directories; everything else is reused by oid.
        self._synced_entries: dict[str, tuple[str, str]] = {}
        self._tree_cache: dict[str, str] = {}
        # Strong reference, compared with `is`: an id() key could be reused
        # by a different store after garbage collection.
        self._tree_cache_store: ObjectStore | None = None
        #: ``{"built": n, "reused": m}`` for the last :meth:`write_tree` call
        #: (deterministic instrumentation for the perf smoke tests).
        self.last_write_tree_stats: dict[str, int] = {"built": 0, "reused": 0}

    # -- sorted-path bookkeeping -------------------------------------------

    def _paths_add(self, path: str) -> None:
        sorted_insert(self._sorted_paths, path)

    def _paths_remove(self, path: str) -> None:
        sorted_remove(self._sorted_paths, path)

    def _first_descendant(self, path: str) -> str | None:
        """A staged path strictly beneath ``path``, or ``None``."""
        lower, upper = descendant_slice(self._sorted_paths, path)
        return self._sorted_paths[lower] if lower < upper else None

    # -- mutation ----------------------------------------------------------

    def stage(self, path: str, blob_oid: str, mode: str = MODE_FILE) -> None:
        """Stage a file at ``path`` pointing at ``blob_oid``."""
        canonical = normalize_path(path)
        if canonical == "/":
            raise IndexError_("cannot stage the repository root as a file")
        if mode == MODE_DIRECTORY:
            raise IndexError_("directories are created implicitly; stage files only")
        if canonical not in self._entries:
            descendant = self._first_descendant(canonical)
            if descendant is not None:
                raise IndexError_(
                    f"staging {canonical!r} conflicts with already-staged path {descendant!r}"
                )
            for ancestor in ancestors(canonical):
                if ancestor in self._entries:
                    raise IndexError_(
                        f"staging {canonical!r} conflicts with already-staged path {ancestor!r}"
                    )
            self._paths_add(canonical)
        self._entries[canonical] = (blob_oid, mode)

    def unstage(self, path: str) -> None:
        """Remove a staged entry (missing paths are an error)."""
        canonical = normalize_path(path)
        if canonical not in self._entries:
            raise IndexError_(f"path is not staged: {canonical!r}")
        del self._entries[canonical]
        self._paths_remove(canonical)

    def discard(self, path: str) -> None:
        """Remove a staged entry if present (no error when absent)."""
        canonical = normalize_path(path)
        if self._entries.pop(canonical, None) is not None:
            self._paths_remove(canonical)

    def clear(self) -> None:
        self._entries.clear()
        self._sorted_paths.clear()

    def replace(
        self, entries: Mapping[str, tuple[str, str]], assume_canonical: bool = False
    ) -> None:
        """Replace the whole index content (used when reading a commit's tree).

        ``assume_canonical`` skips per-path normalisation for callers that
        guarantee canonical keys (the worktree and tree flattening do) — on
        the commit hot path that is O(n) string processing saved.
        """
        if assume_canonical:
            self._entries = dict(entries)
        else:
            self._entries = {normalize_path(path): value for path, value in entries.items()}
        self._sorted_paths = sorted(self._entries)

    # -- queries -----------------------------------------------------------

    def __contains__(self, path: str) -> bool:
        return normalize_path(path) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(list(self._sorted_paths))

    def get(self, path: str) -> tuple[str, str] | None:
        return self._entries.get(normalize_path(path))

    def entries(self) -> dict[str, tuple[str, str]]:
        """A copy of the staged ``path → (blob id, mode)`` map."""
        return dict(self._entries)

    def paths(self) -> list[str]:
        return list(self._sorted_paths)

    def paths_under(self, base: str) -> list[str]:
        """The staged paths at or beneath canonical ``base`` (range probe).

        Lets ``Repository.add(["dir"])`` find tracked entries whose files
        vanished from the working tree without scanning the whole index.
        """
        canonical = normalize_path(base)
        if canonical == ROOT:
            return list(self._sorted_paths)
        lower, upper = descendant_slice(self._sorted_paths, canonical)
        selected = self._sorted_paths[lower:upper]
        if canonical in self._entries:
            selected.insert(0, canonical)
        return selected

    @property
    def is_empty(self) -> bool:
        return not self._entries

    # -- conversion --------------------------------------------------------

    def _dirty_directories(self) -> set[str] | None:
        """Directories whose subtree changed since the last sync.

        ``None`` means nothing changed at all (the cached root oid is still
        valid).  An empty sync state marks everything dirty implicitly —
        directories absent from the cache are always rebuilt.
        """
        changed: set[str] = set()
        for path, value in self._entries.items():
            if self._synced_entries.get(path) != value:
                changed.add(path)
        for path in self._synced_entries:
            if path not in self._entries:
                changed.add(path)
        if not changed:
            return None
        dirty: set[str] = set()
        for path in changed:
            # The changed path itself is marked too: if it shadows a clean
            # cached *directory* of the same name (file/dir conflict), the
            # prune must not fire for that directory.
            dirty.add(path)
            for ancestor in ancestors(path):
                if ancestor in dirty:
                    break
                dirty.add(ancestor)
        return dirty

    def write_tree(self, store: ObjectStore) -> str:
        """Materialise the staged entries as nested tree objects.

        Returns the root tree id (an empty index yields the empty tree).
        Unchanged subtrees since the previous ``write_tree``/``read_tree``
        are emitted by their cached oids without being rebuilt.
        """
        if self._tree_cache_store is not store:
            # Cached oids belong to a different store; start from scratch.
            self._tree_cache = {}
            self._synced_entries = {}
        dirty = self._dirty_directories()
        if dirty is None and ROOT in self._tree_cache:
            self.last_write_tree_stats = {"built": 0, "reused": 1}
            return self._tree_cache[ROOT]
        root_oid, new_cache, stats = build_tree_from_sorted_index(
            store,
            self._sorted_paths,
            self._entries,
            self._tree_cache,
            dirty if dirty is not None else {ROOT},
        )
        self._tree_cache = new_cache
        self._tree_cache_store = store
        self._synced_entries = dict(self._entries)
        self.last_write_tree_stats = stats
        return root_oid

    def read_tree(self, store: ObjectStore, tree_oid: str) -> None:
        """Reset the index to the file entries of an existing tree.

        The tree's own subtree oids prime the write cache, so the first
        commit after a checkout only rebuilds what actually changed.
        """
        self.read_flat(store, flatten_tree(store, tree_oid))

    def read_flat(self, store: ObjectStore, flat: Mapping[str, tuple[str, str]]) -> None:
        """:meth:`read_tree` from an already-flattened tree map.

        Callers that flatten the tree for their own purposes (the lazy
        checkout primes the worktree from the same walk) share it instead of
        walking the tree twice.  ``flat`` must be a full
        :func:`~repro.vcs.treeops.flatten_tree` result for a tree stored in
        ``store`` — directory entries prime the write cache.
        """
        self.replace(
            {path: value for path, value in flat.items() if value[1] != MODE_DIRECTORY},
            assume_canonical=True,
        )
        self._tree_cache = {
            path: oid for path, (oid, mode) in flat.items() if mode == MODE_DIRECTORY
        }
        self._tree_cache_store = store
        self._synced_entries = dict(self._entries)
