"""The staging index.

The index is the flat set of ``path → (blob id, mode)`` entries that the next
commit will snapshot.  ``Repository.add`` copies working-tree content into
blobs and records them here; ``Repository.commit`` turns the index into nested
tree objects via :func:`repro.vcs.treeops.build_tree`.
"""

from __future__ import annotations

from typing import Iterator, Mapping

from repro.errors import IndexError_
from repro.utils.paths import is_ancestor, normalize_path
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import MODE_DIRECTORY, MODE_FILE
from repro.vcs.treeops import build_tree, flatten_files

__all__ = ["StagingIndex"]


class StagingIndex:
    """A flat map of staged file entries."""

    def __init__(self) -> None:
        self._entries: dict[str, tuple[str, str]] = {}

    # -- mutation ----------------------------------------------------------

    def stage(self, path: str, blob_oid: str, mode: str = MODE_FILE) -> None:
        """Stage a file at ``path`` pointing at ``blob_oid``."""
        canonical = normalize_path(path)
        if canonical == "/":
            raise IndexError_("cannot stage the repository root as a file")
        if mode == MODE_DIRECTORY:
            raise IndexError_("directories are created implicitly; stage files only")
        for existing in self._entries:
            if is_ancestor(canonical, existing) or is_ancestor(existing, canonical):
                raise IndexError_(
                    f"staging {canonical!r} conflicts with already-staged path {existing!r}"
                )
        self._entries[canonical] = (blob_oid, mode)

    def unstage(self, path: str) -> None:
        """Remove a staged entry (missing paths are an error)."""
        canonical = normalize_path(path)
        if canonical not in self._entries:
            raise IndexError_(f"path is not staged: {canonical!r}")
        del self._entries[canonical]

    def discard(self, path: str) -> None:
        """Remove a staged entry if present (no error when absent)."""
        self._entries.pop(normalize_path(path), None)

    def clear(self) -> None:
        self._entries.clear()

    def replace(self, entries: Mapping[str, tuple[str, str]]) -> None:
        """Replace the whole index content (used when reading a commit's tree)."""
        self._entries = {normalize_path(path): value for path, value in entries.items()}

    # -- queries -----------------------------------------------------------

    def __contains__(self, path: str) -> bool:
        return normalize_path(path) in self._entries

    def __len__(self) -> int:
        return len(self._entries)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._entries))

    def get(self, path: str) -> tuple[str, str] | None:
        return self._entries.get(normalize_path(path))

    def entries(self) -> dict[str, tuple[str, str]]:
        """A copy of the staged ``path → (blob id, mode)`` map."""
        return dict(self._entries)

    def paths(self) -> list[str]:
        return sorted(self._entries)

    @property
    def is_empty(self) -> bool:
        return not self._entries

    # -- conversion --------------------------------------------------------

    def write_tree(self, store: ObjectStore) -> str:
        """Materialise the staged entries as nested tree objects.

        Returns the root tree id (an empty index yields the empty tree).
        """
        return build_tree(store, self._entries)

    def read_tree(self, store: ObjectStore, tree_oid: str) -> None:
        """Reset the index to the file entries of an existing tree."""
        self.replace(flatten_files(store, tree_oid))
