"""The immutable object model of the version-control substrate.

Four object kinds exist, mirroring Git:

* :class:`Blob` — raw file content;
* :class:`Tree` — a directory: an ordered list of named entries pointing to
  blobs (files) or other trees (subdirectories);
* :class:`Commit` — a snapshot: a tree id, zero or more parent commit ids, an
  author, a committer and a message;
* :class:`Tag` — an annotated, named pointer to another object.

Each object serialises to a deterministic byte payload; its id is the SHA-1 of
``"<type> <size>\\0" + payload`` (see :mod:`repro.utils.hashing`).  Blob ids
are byte-compatible with Git; tree and commit payloads use a simpler textual
encoding (we never need to interoperate with a real Git on disk, only to keep
the same semantics).
"""

from __future__ import annotations

from dataclasses import dataclass
from datetime import datetime
from typing import Union

from repro.errors import InvalidObjectError, VCSError
from repro.utils.hashing import object_id
from repro.utils.timeutil import format_timestamp, parse_timestamp

__all__ = [
    "Blob",
    "Tree",
    "TreeEntry",
    "Commit",
    "Tag",
    "Signature",
    "VCSObject",
    "MODE_FILE",
    "MODE_EXECUTABLE",
    "MODE_DIRECTORY",
]

#: Entry modes.  The numeric values follow Git's convention so that dumps of
#: tree objects read familiarly, but only the file/directory distinction is
#: semantically meaningful to the citation model.
MODE_FILE = "100644"
MODE_EXECUTABLE = "100755"
MODE_DIRECTORY = "040000"

_VALID_MODES = {MODE_FILE, MODE_EXECUTABLE, MODE_DIRECTORY}


@dataclass(frozen=True)
class Signature:
    """An author or committer identity with a timestamp."""

    name: str
    email: str
    timestamp: datetime

    def serialize(self) -> str:
        return f"{self.name} <{self.email}> {format_timestamp(self.timestamp)}"

    @classmethod
    def parse(cls, text: str) -> "Signature":
        try:
            name_part, rest = text.split(" <", 1)
            email, stamp = rest.split("> ", 1)
        except ValueError as exc:
            raise InvalidObjectError(f"malformed signature: {text!r}") from exc
        return cls(name=name_part, email=email, timestamp=parse_timestamp(stamp))


@dataclass(frozen=True)
class Blob:
    """Raw file content."""

    data: bytes

    type_name = "blob"

    def serialize(self) -> bytes:
        return self.data

    @classmethod
    def deserialize(cls, payload: bytes) -> "Blob":
        return cls(data=payload)

    @property
    def oid(self) -> str:
        return object_id(self.type_name, self.serialize())

    def text(self, encoding: str = "utf-8") -> str:
        """Decode the blob as text (convenience for citation-file handling)."""
        return self.data.decode(encoding)

    @property
    def is_binary(self) -> bool:
        """Heuristic binary detection (NUL byte within the first 8000 bytes)."""
        return b"\0" in self.data[:8000]


@dataclass(frozen=True, order=True)
class TreeEntry:
    """A single named entry inside a :class:`Tree`."""

    name: str
    oid: str
    mode: str = MODE_FILE

    def __post_init__(self) -> None:
        if "/" in self.name or self.name in ("", ".", ".."):
            raise InvalidObjectError(f"illegal tree entry name: {self.name!r}")
        if self.mode not in _VALID_MODES:
            raise InvalidObjectError(f"illegal tree entry mode: {self.mode!r}")

    @property
    def is_directory(self) -> bool:
        return self.mode == MODE_DIRECTORY


@dataclass(frozen=True)
class Tree:
    """A directory object: a sorted tuple of :class:`TreeEntry`."""

    entries: tuple[TreeEntry, ...] = ()

    type_name = "tree"

    def __post_init__(self) -> None:
        names = [entry.name for entry in self.entries]
        if len(names) != len(set(names)):
            raise InvalidObjectError("tree contains duplicate entry names")
        ordered = tuple(sorted(self.entries, key=lambda entry: entry.name))
        object.__setattr__(self, "entries", ordered)

    def serialize(self) -> bytes:
        lines = [f"{entry.mode} {entry.oid} {entry.name}" for entry in self.entries]
        return ("\n".join(lines) + ("\n" if lines else "")).encode("utf-8")

    @classmethod
    def deserialize(cls, payload: bytes) -> "Tree":
        entries: list[TreeEntry] = []
        for line in payload.decode("utf-8").splitlines():
            if not line.strip():
                continue
            try:
                mode, oid, name = line.split(" ", 2)
            except ValueError as exc:
                raise InvalidObjectError(f"malformed tree entry line: {line!r}") from exc
            entries.append(TreeEntry(name=name, oid=oid, mode=mode))
        return cls(entries=tuple(entries))

    @property
    def oid(self) -> str:
        return object_id(self.type_name, self.serialize())

    def entry(self, name: str) -> TreeEntry | None:
        """Look up a direct child by name (``None`` if absent)."""
        for candidate in self.entries:
            if candidate.name == name:
                return candidate
        return None

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(entry.name for entry in self.entries)

    def with_entry(self, entry: TreeEntry) -> "Tree":
        """Return a new tree with ``entry`` added or replaced."""
        remaining = tuple(e for e in self.entries if e.name != entry.name)
        return Tree(entries=remaining + (entry,))

    def without_entry(self, name: str) -> "Tree":
        """Return a new tree with the entry called ``name`` removed."""
        return Tree(entries=tuple(e for e in self.entries if e.name != name))


@dataclass(frozen=True)
class Commit:
    """A snapshot of the project tree plus history metadata."""

    tree_oid: str
    parent_oids: tuple[str, ...]
    author: Signature
    committer: Signature
    message: str

    type_name = "commit"

    def serialize(self) -> bytes:
        lines = [f"tree {self.tree_oid}"]
        for parent in self.parent_oids:
            lines.append(f"parent {parent}")
        lines.append(f"author {self.author.serialize()}")
        lines.append(f"committer {self.committer.serialize()}")
        lines.append("")
        lines.append(self.message)
        return ("\n".join(lines) + "\n").encode("utf-8")

    @classmethod
    def deserialize(cls, payload: bytes) -> "Commit":
        text = payload.decode("utf-8")
        try:
            header, message = text.split("\n\n", 1)
        except ValueError as exc:
            raise InvalidObjectError("malformed commit payload (missing message)") from exc
        tree_oid: str | None = None
        parents: list[str] = []
        author: Signature | None = None
        committer: Signature | None = None
        for line in header.splitlines():
            if line.startswith("tree "):
                tree_oid = line[len("tree "):]
            elif line.startswith("parent "):
                parents.append(line[len("parent "):])
            elif line.startswith("author "):
                author = Signature.parse(line[len("author "):])
            elif line.startswith("committer "):
                committer = Signature.parse(line[len("committer "):])
            else:
                raise InvalidObjectError(f"unknown commit header line: {line!r}")
        if tree_oid is None or author is None or committer is None:
            raise InvalidObjectError("commit payload missing required headers")
        return cls(
            tree_oid=tree_oid,
            parent_oids=tuple(parents),
            author=author,
            committer=committer,
            message=message.rstrip("\n"),
        )

    @property
    def oid(self) -> str:
        return object_id(self.type_name, self.serialize())

    @property
    def is_merge(self) -> bool:
        return len(self.parent_oids) > 1

    @property
    def is_root(self) -> bool:
        return not self.parent_oids

    @property
    def summary(self) -> str:
        """The first line of the commit message."""
        return self.message.splitlines()[0] if self.message else ""


@dataclass(frozen=True)
class Tag:
    """An annotated tag pointing at another object (usually a commit)."""

    object_oid: str
    object_type: str
    name: str
    tagger: Signature
    message: str = ""

    type_name = "tag"

    def serialize(self) -> bytes:
        lines = [
            f"object {self.object_oid}",
            f"type {self.object_type}",
            f"tag {self.name}",
            f"tagger {self.tagger.serialize()}",
            "",
            self.message,
        ]
        return ("\n".join(lines) + "\n").encode("utf-8")

    @classmethod
    def deserialize(cls, payload: bytes) -> "Tag":
        text = payload.decode("utf-8")
        try:
            header, message = text.split("\n\n", 1)
        except ValueError as exc:
            raise InvalidObjectError("malformed tag payload (missing message)") from exc
        fields: dict[str, str] = {}
        for line in header.splitlines():
            key, _, value = line.partition(" ")
            fields[key] = value
        try:
            return cls(
                object_oid=fields["object"],
                object_type=fields["type"],
                name=fields["tag"],
                tagger=Signature.parse(fields["tagger"]),
                message=message.rstrip("\n"),
            )
        except KeyError as exc:
            raise InvalidObjectError(f"tag payload missing header: {exc}") from exc

    @property
    def oid(self) -> str:
        return object_id(self.type_name, self.serialize())


VCSObject = Union[Blob, Tree, Commit, Tag]

_TYPE_REGISTRY: dict[str, type] = {
    Blob.type_name: Blob,
    Tree.type_name: Tree,
    Commit.type_name: Commit,
    Tag.type_name: Tag,
}


def deserialize_object(object_type: str, payload: bytes) -> VCSObject:
    """Reconstruct an object of the given type from its serialised payload.

    Any malformed payload — truncated, mis-encoded, structurally wrong —
    surfaces as :class:`InvalidObjectError`, so callers feeding untrusted
    bytes through here (fsck auditing reachable objects, the wire layer
    applying a bundle) can catch one typed error instead of guessing which
    ``ValueError``/``KeyError``/``UnicodeDecodeError`` a parser might leak.
    """
    try:
        cls = _TYPE_REGISTRY[object_type]
    except KeyError as exc:
        raise InvalidObjectError(f"unknown object type: {object_type!r}") from exc
    try:
        return cls.deserialize(payload)
    except VCSError:
        raise  # already typed (InvalidObjectError and friends)
    except Exception as exc:  # lint: broad-except-ok(normalises arbitrary parser failures into the typed InvalidObjectError; VCSError re-raised above)
        raise InvalidObjectError(
            f"malformed {object_type} payload: {exc.__class__.__name__}: {exc}"
        ) from exc
