"""Materialising repositories on disk and reading them back.

The local executable tool of the paper operates on a checked-out copy of the
project on the user's machine.  These helpers bridge the in-memory
:class:`~repro.vcs.repository.Repository` working tree and a real directory:

* :func:`export_worktree` writes the current working tree to a directory;
* :func:`import_worktree` replaces the working tree with a directory's
  content (honouring ignore rules);
* :func:`export_snapshot` writes an arbitrary committed version to a
  directory without touching the working tree.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.errors import VCSError
from repro.utils.paths import normalize_path
from repro.vcs.ignore import IgnoreRules
from repro.vcs.repository import Repository

__all__ = ["export_worktree", "import_worktree", "export_snapshot"]


def _target_path(root: Path, repo_path: str) -> Path:
    relative = normalize_path(repo_path)[1:]
    return root / Path(relative)


def export_worktree(repo: Repository, destination: str | os.PathLike[str]) -> list[str]:
    """Write the repository's working tree under ``destination``.

    Returns the list of repository paths written.  Existing files are
    overwritten; files present on disk but absent from the working tree are
    left alone (use a fresh directory for a clean export).
    """
    root = Path(destination)
    root.mkdir(parents=True, exist_ok=True)
    written: list[str] = []
    # The indexed worktree iterates in sorted path order already.
    for repo_path, data in repo.worktree.items():
        target = _target_path(root, repo_path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(data)
        written.append(repo_path)
    return written


def export_snapshot(
    repo: Repository, ref: str, destination: str | os.PathLike[str]
) -> list[str]:
    """Write the files of version ``ref`` under ``destination``."""
    root = Path(destination)
    root.mkdir(parents=True, exist_ok=True)
    written: list[str] = []
    for repo_path, data in sorted(repo.snapshot(ref).items()):
        target = _target_path(root, repo_path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(data)
        written.append(repo_path)
    return written


def import_worktree(
    repo: Repository,
    source: str | os.PathLike[str],
    ignore: IgnoreRules | None = None,
    replace: bool = True,
) -> list[str]:
    """Load a directory tree from disk into the repository's working tree.

    With ``replace=True`` (the default) the working tree is cleared first so
    files deleted on disk disappear from the next commit.  Returns the list of
    repository paths imported.
    """
    root = Path(source)
    if not root.is_dir():
        raise VCSError(f"not a directory: {root}")
    rules = ignore or IgnoreRules()
    if replace:
        repo.worktree.clear()
        repo.index.clear()
        # A wholesale replacement, exactly like a checkout: holders of
        # deferred worktree-derived state must discard it, not flush it.
        repo._notify_worktree_reload()
    collected: dict[str, bytes] = {}
    for dirpath, dirnames, filenames in os.walk(root):
        current = Path(dirpath)
        relative_dir = "/" + current.relative_to(root).as_posix() if current != root else "/"
        if relative_dir == "/.":
            relative_dir = "/"
        # Prune ignored directories in place so os.walk skips them.
        dirnames[:] = [
            d
            for d in sorted(dirnames)
            if not rules.matches(
                relative_dir.rstrip("/") + "/" + d if relative_dir != "/" else "/" + d,
                is_directory=True,
            )
        ]
        for filename in sorted(filenames):
            repo_path = (
                relative_dir.rstrip("/") + "/" + filename if relative_dir != "/" else "/" + filename
            )
            if rules.matches(repo_path):
                continue
            collected[repo_path] = (current / filename).read_bytes()
    # One batched write: the filesystem already guarantees the imported set
    # is conflict-free among itself, and write_files() checks it against any
    # surviving in-memory paths in a single sorted pass.
    return repo.write_files(collected)
