"""APA-style textual rendering of citations."""

from __future__ import annotations

from repro.citation.record import Citation

__all__ = ["render_apa", "format_author_list"]


def _apa_author(full_name: str) -> str:
    """Convert ``"Susan B. Davidson"`` to ``"Davidson, S. B."``."""
    parts = full_name.strip().split()
    if not parts:
        return full_name
    if len(parts) == 1:
        return parts[0]
    family = parts[-1]
    initials = " ".join(f"{p[0]}." for p in parts[:-1] if p)
    return f"{family}, {initials}"


def format_author_list(authors: tuple[str, ...] | list[str]) -> str:
    """Join authors the APA way (ampersand before the last author)."""
    formatted = [_apa_author(author) for author in authors]
    if not formatted:
        return ""
    if len(formatted) == 1:
        return formatted[0]
    return ", ".join(formatted[:-1]) + ", & " + formatted[-1]


def render_apa(citation: Citation, cited_path: str | None = None) -> str:
    """Render a citation as an APA-style reference line."""
    authors = format_author_list(citation.authors or (citation.owner,))
    date = citation.committed_date
    title = citation.title or citation.repo_name
    version = citation.version or f"commit {citation.commit_id}"
    pieces = [
        f"{authors} ({date.year}, {date.strftime('%B')} {date.day}).",
        f"{title} ({version}) [Computer software].",
    ]
    if cited_path and cited_path != "/":
        pieces.append(f"Path: {cited_path}.")
    pieces.append(f"{citation.owner}.")
    pieces.append(citation.doi and f"https://doi.org/{citation.doi}" or citation.url)
    return " ".join(pieces) + "\n"
