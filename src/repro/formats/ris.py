"""RIS (EndNote/Reference Manager) rendering of citations."""

from __future__ import annotations

from repro.citation.record import Citation

__all__ = ["render_ris"]


def render_ris(citation: Citation, cited_path: str | None = None) -> str:
    """Render a citation as an RIS record (type ``COMP`` — computer program)."""
    lines: list[str] = ["TY  - COMP"]
    for author in citation.authors or (citation.owner,):
        lines.append(f"AU  - {author}")
    lines.append(f"TI  - {citation.title or citation.repo_name}")
    lines.append(f"PY  - {citation.year}")
    date = citation.committed_date
    lines.append(f"DA  - {date.year}/{date.month:02d}/{date.day:02d}")
    lines.append(f"PB  - {citation.owner}")
    lines.append(f"UR  - {citation.url}")
    lines.append(f"ET  - {citation.version or citation.commit_id}")
    if citation.doi:
        lines.append(f"DO  - {citation.doi}")
    notes = [f"Commit {citation.commit_id}"]
    if cited_path and cited_path != "/":
        notes.append(f"cited path {cited_path}")
    if citation.swhid:
        notes.append(f"SWHID {citation.swhid}")
    lines.append(f"N1  - {'; '.join(notes)}")
    lines.append("ER  - ")
    return "\n".join(lines) + "\n"
