"""Format registry: dispatch citation rendering by format name."""

from __future__ import annotations

from typing import Callable

from repro.errors import FormatError
from repro.citation.record import Citation
from repro.formats.apa import render_apa
from repro.formats.bibtex import render_bibtex
from repro.formats.cff import render_cff
from repro.formats.datacite import render_datacite
from repro.formats.ris import render_ris

__all__ = ["available_formats", "get_formatter", "render"]

Formatter = Callable[..., str]

_FORMATTERS: dict[str, Formatter] = {
    "bibtex": render_bibtex,
    "cff": render_cff,
    "ris": render_ris,
    "apa": render_apa,
    "datacite": render_datacite,
    "text": lambda citation, cited_path=None: str(citation) + "\n",
    "json": lambda citation, cited_path=None: __import__("json").dumps(
        citation.to_dict(), indent=2, sort_keys=True
    )
    + "\n",
}


def available_formats() -> list[str]:
    """The format names accepted by :func:`render` and the CLI's ``export``."""
    return sorted(_FORMATTERS)


def get_formatter(name: str) -> Formatter:
    """Return the renderer registered under ``name``."""
    try:
        return _FORMATTERS[name.lower()]
    except KeyError:
        raise FormatError(
            f"unknown citation format {name!r}; choose from {available_formats()}"
        ) from None


def render(citation: Citation, format_name: str, cited_path: str | None = None) -> str:
    """Render ``citation`` in the named format."""
    formatter = get_formatter(format_name)
    return formatter(citation, cited_path=cited_path)
