"""Bibliographic renderings of citations.

The motivation of the paper is that community standards for software citation
(FORCE11, the Software Sustainability Institute recommendations, the Citation
File Format) exist but are tedious to produce by hand.  The GitCite model
produces a :class:`~repro.citation.record.Citation` value; this package
renders that value in the formats a bibliography manager or an archive
expects:

* ``bibtex`` — a BibTeX ``@software`` entry;
* ``cff`` — a ``CITATION.cff`` (Citation File Format) document;
* ``ris`` — an RIS/EndNote record;
* ``apa`` — an APA-style textual citation;
* ``datacite`` — DataCite-style JSON metadata (what a Zenodo deposit needs).

:func:`render` dispatches by format name; :func:`available_formats` lists the
registry (which the CLI's ``export`` command exposes).
"""

from repro.formats.registry import available_formats, get_formatter, render
from repro.formats.bibtex import render_bibtex
from repro.formats.cff import render_cff
from repro.formats.ris import render_ris
from repro.formats.apa import render_apa
from repro.formats.datacite import render_datacite

__all__ = [
    "available_formats",
    "get_formatter",
    "render",
    "render_bibtex",
    "render_cff",
    "render_ris",
    "render_apa",
    "render_datacite",
]
