"""BibTeX rendering of citations (``@software`` entries)."""

from __future__ import annotations

import re

from repro.citation.record import Citation

__all__ = ["render_bibtex", "bibtex_key"]

_KEY_SANITIZER = re.compile(r"[^A-Za-z0-9]+")


def bibtex_key(citation: Citation, suffix: str | None = None) -> str:
    """Build a stable BibTeX key such as ``wu_data_citation_demo_2018``."""
    author = citation.primary_author.split()[-1] if citation.primary_author else citation.owner
    parts = [author, citation.repo_name, str(citation.year)]
    if suffix:
        parts.append(suffix)
    key = "_".join(_KEY_SANITIZER.sub("_", part).strip("_").lower() for part in parts if part)
    return key or "software"


def _escape(value: str) -> str:
    return value.replace("{", r"\{").replace("}", r"\}").replace("&", r"\&").replace("%", r"\%")


def render_bibtex(citation: Citation, cited_path: str | None = None) -> str:
    """Render a citation as a BibTeX ``@software`` entry.

    ``cited_path`` (the node the citation was generated for) is recorded in a
    ``note`` field when it is not the project root, so fine-grained citations
    remain distinguishable in the bibliography.
    """
    fields: list[tuple[str, str]] = []
    authors = " and ".join(citation.authors) if citation.authors else citation.owner
    fields.append(("author", _escape(authors)))
    fields.append(("title", _escape(citation.title or citation.repo_name)))
    fields.append(("year", str(citation.year)))
    fields.append(("month", str(citation.committed_date.month)))
    fields.append(("url", citation.url))
    fields.append(("version", citation.version or citation.commit_id))
    if citation.doi:
        fields.append(("doi", citation.doi))
    if citation.license:
        fields.append(("license", _escape(str(citation.license))))
    organization = citation.owner
    fields.append(("organization", _escape(organization)))
    note_parts = [f"Commit {citation.commit_id}", f"committed {citation.committed_date_string}"]
    if cited_path and cited_path != "/":
        note_parts.append(f"cited path {cited_path}")
    if citation.swhid:
        note_parts.append(f"SWHID {citation.swhid}")
    fields.append(("note", _escape("; ".join(note_parts))))

    body = ",\n".join(f"  {name} = {{{value}}}" for name, value in fields)
    return f"@software{{{bibtex_key(citation)},\n{body}\n}}\n"
