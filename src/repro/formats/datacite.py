"""DataCite-style JSON metadata rendering.

Zenodo mints DOIs by registering DataCite metadata; the archive simulator
(:mod:`repro.archive.zenodo`) stores exactly this payload with every deposit,
so a GitCite citation can round-trip through "upload a release to Zenodo,
get a DOI, put the DOI back into the root citation".
"""

from __future__ import annotations

from typing import Any

from repro.citation.record import Citation
from repro.formats.cff import parse_author_name

__all__ = ["render_datacite", "datacite_payload"]


def datacite_payload(citation: Citation, cited_path: str | None = None) -> dict[str, Any]:
    """Build the DataCite metadata dictionary for a citation."""
    creators = []
    for author in citation.authors or (citation.owner,):
        given, family = parse_author_name(author)
        creators.append(
            {
                "name": f"{family}, {given}".strip(", "),
                "givenName": given,
                "familyName": family,
            }
        )
    payload: dict[str, Any] = {
        "titles": [{"title": citation.title or citation.repo_name}],
        "creators": creators,
        "publisher": citation.owner,
        "publicationYear": citation.year,
        "dates": [{"date": citation.committed_date.date().isoformat(), "dateType": "Issued"}],
        "types": {"resourceTypeGeneral": "Software", "resourceType": "Software repository"},
        "version": citation.version or citation.commit_id,
        "url": citation.url,
        "relatedIdentifiers": [
            {
                "relatedIdentifier": citation.url,
                "relatedIdentifierType": "URL",
                "relationType": "IsSupplementTo",
            }
        ],
    }
    if citation.doi:
        payload["identifiers"] = [{"identifier": citation.doi, "identifierType": "DOI"}]
    if citation.license:
        payload["rightsList"] = [{"rights": str(citation.license)}]
    if citation.description:
        payload["descriptions"] = [
            {"description": citation.description, "descriptionType": "Abstract"}
        ]
    if citation.swhid:
        payload.setdefault("identifiers", []).append(
            {"identifier": citation.swhid, "identifierType": "SWHID"}
        )
    if cited_path and cited_path != "/":
        payload.setdefault("descriptions", []).append(
            {"description": f"Citation generated for path {cited_path}", "descriptionType": "Other"}
        )
    return payload


def render_datacite(citation: Citation, cited_path: str | None = None) -> str:
    """Render the DataCite metadata as pretty-printed JSON."""
    import json

    return json.dumps(datacite_payload(citation, cited_path), indent=2, sort_keys=True) + "\n"
