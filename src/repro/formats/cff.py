"""Citation File Format (``CITATION.cff``) rendering.

The paper cites the CFF standard [9, 10] as one of the recommendation efforts
GitCite automates.  CFF is YAML; to stay dependency-free the renderer emits
the small, flat subset of YAML the format needs (block sequences of mappings
for authors, plain scalars elsewhere), which standard CFF tooling parses.
"""

from __future__ import annotations

from repro.citation.record import Citation

__all__ = ["render_cff", "parse_author_name"]

CFF_VERSION = "1.2.0"


def parse_author_name(full_name: str) -> tuple[str, str]:
    """Split a display name into (given names, family name).

    CFF represents people as given/family pairs; a single-word name is
    treated as a family name (matching cffinit's behaviour).
    """
    parts = full_name.strip().split()
    if not parts:
        return "", ""
    if len(parts) == 1:
        return "", parts[0]
    return " ".join(parts[:-1]), parts[-1]


def _quote(value: str) -> str:
    escaped = str(value).replace('"', '\\"')
    return f'"{escaped}"'


def render_cff(citation: Citation, cited_path: str | None = None) -> str:
    """Render a citation as a ``CITATION.cff`` document."""
    lines: list[str] = []
    lines.append(f"cff-version: {CFF_VERSION}")
    lines.append("message: " + _quote("If you use this software, please cite it as below."))
    lines.append("type: software")
    lines.append("title: " + _quote(citation.title or citation.repo_name))
    authors = citation.authors or (citation.owner,)
    lines.append("authors:")
    for author in authors:
        given, family = parse_author_name(author)
        lines.append(f"  - family-names: {_quote(family)}")
        if given:
            lines.append(f"    given-names: {_quote(given)}")
    lines.append(f"version: {_quote(citation.version or citation.commit_id)}")
    lines.append(f"commit: {_quote(citation.commit_id)}")
    lines.append(f"date-released: {_quote(citation.committed_date.date().isoformat())}")
    lines.append(f"repository-code: {_quote(citation.url)}")
    lines.append(f"url: {_quote(citation.url)}")
    if citation.doi:
        lines.append(f"doi: {_quote(citation.doi)}")
    if citation.license:
        lines.append(f"license: {_quote(str(citation.license))}")
    if citation.swhid:
        lines.append("identifiers:")
        lines.append("  - type: swh")
        lines.append(f"    value: {_quote(citation.swhid)}")
    if cited_path and cited_path != "/":
        lines.append("notes: " + _quote(f"Citation generated for path {cited_path}"))
    elif citation.description:
        lines.append("abstract: " + _quote(citation.description))
    return "\n".join(lines) + "\n"
