"""Archival and persistent-identifier simulators.

The paper points at two persistence backends for cited software:

* Zenodo, where "a released version of a software project may be treated as
  open-access data and uploaded ... which provides a DOI" (Section 1);
* the Software Heritage archive, named in Section 5 as the integration target
  for future work.

Neither service is reachable offline, so this package provides local
equivalents with the same observable behaviour:

* :mod:`zenodo` — deposits, versioned DOI minting, publishing a repository
  release and feeding the DOI back into its root citation;
* :mod:`swhid` — intrinsic Software Heritage identifiers (SWHIDs) computed
  from our content-addressed objects, for contents, directories and
  revisions.
"""

from repro.archive.swhid import directory_swhid, content_swhid, revision_swhid, snapshot_swhid
from repro.archive.zenodo import Deposit, ZenodoSimulator

__all__ = [
    "Deposit",
    "ZenodoSimulator",
    "content_swhid",
    "directory_swhid",
    "revision_swhid",
    "snapshot_swhid",
]
