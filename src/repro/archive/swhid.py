"""Software Heritage identifiers (SWHIDs) over the local object store.

Section 5 of the paper lists integration with the Software Heritage archive
as future work.  Software Heritage identifies artifacts *intrinsically*: a
SWHID is ``swh:1:<type>:<40-hex-digest>`` where the digest is computed from
the artifact's content — which is exactly what our content-addressed object
store already provides.  The identifiers produced here are therefore stable
across runs and across repositories containing the same content, which is the
property the citation model cares about (two forks of the same version cite
the same directory identifier).

Note: real SWHIDs for directories/revisions are computed over Git's binary
object encoding; our substrate uses a simpler textual tree/commit encoding,
so digests differ from softwareheritage.org's for the same content, but the
identifier *structure* and intrinsic-ness are preserved (see DESIGN.md's
substitution table).
"""

from __future__ import annotations

from repro.errors import ArchiveError
from repro.vcs.object_store import ObjectStore
from repro.vcs.repository import Repository

__all__ = [
    "SWHID_SCHEME_VERSION",
    "content_swhid",
    "directory_swhid",
    "revision_swhid",
    "snapshot_swhid",
    "swhid_for_path",
]

SWHID_SCHEME_VERSION = 1


def _swhid(object_type: str, digest: str) -> str:
    if len(digest) != 40:
        raise ArchiveError(f"SWHIDs require a 40-character digest, got {digest!r}")
    return f"swh:{SWHID_SCHEME_VERSION}:{object_type}:{digest}"


def content_swhid(store: ObjectStore, blob_oid: str) -> str:
    """The SWHID of a file content (``cnt``)."""
    store.get_blob(blob_oid)  # validates existence and type
    return _swhid("cnt", blob_oid)


def directory_swhid(store: ObjectStore, tree_oid: str) -> str:
    """The SWHID of a directory (``dir``)."""
    store.get_tree(tree_oid)
    return _swhid("dir", tree_oid)


def revision_swhid(store: ObjectStore, commit_oid: str) -> str:
    """The SWHID of a revision/commit (``rev``)."""
    store.get_commit(commit_oid)
    return _swhid("rev", commit_oid)


def snapshot_swhid(repo: Repository) -> str:
    """A snapshot identifier covering all branches of a repository (``snp``).

    Computed from the sorted (branch, tip) pairs, mirroring how Software
    Heritage hashes the set of branches of an origin visit.
    """
    from repro.utils.hashing import sha1_hex

    description = "\n".join(
        f"{name} {oid}" for name, oid in sorted(repo.branches().items())
    ).encode("utf-8")
    return _swhid("snp", sha1_hex(description))


def swhid_for_path(repo: Repository, ref: str, path: str) -> str:
    """The SWHID of the file or directory at ``path`` in version ``ref``.

    Directories get ``dir`` identifiers, files get ``cnt`` identifiers — the
    right identifier to embed in a fine-grained citation for that node.
    """
    from repro.utils.paths import ROOT, normalize_path
    from repro.vcs.treeops import lookup_path

    tree_oid = repo.tree_oid_of(ref)
    canonical = normalize_path(path)
    if canonical == ROOT:
        return directory_swhid(repo.store, tree_oid)
    resolved = lookup_path(repo.store, tree_oid, canonical)
    if resolved is None:
        raise ArchiveError(f"no such path in {ref!r}: {canonical!r}")
    oid, mode = resolved
    if mode == "040000":
        return directory_swhid(repo.store, oid)
    return content_swhid(repo.store, oid)
