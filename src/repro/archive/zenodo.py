"""A Zenodo-style deposit and DOI-minting simulator.

Section 1 of the paper: *"A released version of a software project may be
treated as open-access data and uploaded to public hosting platform like
Zenodo which provides a DOI, thus enabling more traditional citations and
ensuring persistence."*

The simulator reproduces the workflow that matters to GitCite:

1. create a *deposit* for a repository release (a specific version);
2. attach DataCite metadata generated from the release's root citation;
3. *publish* the deposit, which mints a DOI — plus a *concept DOI* shared by
   all versions of the same software, as Zenodo does;
4. feed the DOI back into the repository's root citation so subsequently
   generated citations carry it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from datetime import datetime
from typing import Any, Optional

from repro.errors import DepositError
from repro.citation.record import Citation
from repro.formats.datacite import datacite_payload
from repro.utils.timeutil import now_utc

__all__ = ["Deposit", "ZenodoSimulator"]

DOI_PREFIX = "10.5281"


@dataclass
class Deposit:
    """One deposit (a version of a software record) on the archive."""

    deposit_id: int
    concept_id: int
    title: str
    version_label: str
    metadata: dict[str, Any] = field(default_factory=dict)
    files: dict[str, bytes] = field(default_factory=dict)
    published: bool = False
    doi: Optional[str] = None
    concept_doi: Optional[str] = None
    created_at: Optional[datetime] = None
    published_at: Optional[datetime] = None

    @property
    def total_size(self) -> int:
        return sum(len(data) for data in self.files.values())


class ZenodoSimulator:
    """An in-process stand-in for the Zenodo deposit/DOI API."""

    def __init__(self, doi_prefix: str = DOI_PREFIX) -> None:
        self.doi_prefix = doi_prefix
        self._deposits: dict[int, Deposit] = {}
        self._concepts: dict[str, int] = {}
        self._next_id = 1000000

    # ------------------------------------------------------------------

    def _allocate_id(self) -> int:
        allocated = self._next_id
        self._next_id += 1
        return allocated

    def create_deposit(
        self,
        citation: Citation,
        files: dict[str, bytes] | None = None,
        version_label: Optional[str] = None,
        created_at: Optional[datetime] = None,
    ) -> Deposit:
        """Create an unpublished deposit for a release described by ``citation``.

        Deposits of the same software (same owner/repository) share a concept
        id, so publishing successive releases produces version DOIs under one
        concept DOI — Zenodo's versioning model.
        """
        concept_key = f"{citation.owner}/{citation.repo_name}"
        concept_id = self._concepts.get(concept_key)
        if concept_id is None:
            concept_id = self._allocate_id()
            self._concepts[concept_key] = concept_id
        deposit = Deposit(
            deposit_id=self._allocate_id(),
            concept_id=concept_id,
            title=citation.title or citation.repo_name,
            version_label=version_label or citation.version or citation.commit_id,
            metadata=datacite_payload(citation),
            files=dict(files or {}),
            created_at=created_at or now_utc(),
        )
        self._deposits[deposit.deposit_id] = deposit
        return deposit

    def upload_file(self, deposit_id: int, name: str, data: bytes) -> None:
        """Attach a file to an unpublished deposit."""
        deposit = self.get_deposit(deposit_id)
        if deposit.published:
            raise DepositError("cannot add files to a published deposit")
        deposit.files[name] = data

    def publish(self, deposit_id: int, published_at: Optional[datetime] = None) -> Deposit:
        """Publish a deposit, minting its version DOI and concept DOI."""
        deposit = self.get_deposit(deposit_id)
        if deposit.published:
            raise DepositError(f"deposit {deposit_id} is already published")
        if not deposit.files:
            raise DepositError("a deposit must contain at least one file before publishing")
        deposit.published = True
        deposit.published_at = published_at or now_utc()
        deposit.doi = f"{self.doi_prefix}/zenodo.{deposit.deposit_id}"
        deposit.concept_doi = f"{self.doi_prefix}/zenodo.{deposit.concept_id}"
        return deposit

    # ------------------------------------------------------------------

    def get_deposit(self, deposit_id: int) -> Deposit:
        try:
            return self._deposits[deposit_id]
        except KeyError:
            raise DepositError(f"no such deposit: {deposit_id}") from None

    def resolve_doi(self, doi: str) -> Deposit:
        """Look up a published deposit by its DOI."""
        for deposit in self._deposits.values():
            if deposit.published and deposit.doi == doi:
                return deposit
        raise DepositError(f"DOI does not resolve: {doi!r}")

    def versions_of(self, concept_doi: str) -> list[Deposit]:
        """All published versions under a concept DOI, oldest first."""
        versions = [
            deposit
            for deposit in self._deposits.values()
            if deposit.published and deposit.concept_doi == concept_doi
        ]
        return sorted(versions, key=lambda deposit: deposit.deposit_id)

    # ------------------------------------------------------------------
    # End-to-end helper used by examples and benches
    # ------------------------------------------------------------------

    def publish_release(
        self,
        manager,
        version_label: str,
        ref: str = "HEAD",
        published_at: Optional[datetime] = None,
    ) -> tuple[Deposit, Citation]:
        """Deposit a repository version and write its DOI into the root citation.

        ``manager`` is a :class:`~repro.citation.manager.CitationManager`.
        Returns the published deposit and the updated root citation (the DOI
        is stored in the working tree's ``citation.cite``; committing it is
        left to the caller).
        """
        root = manager.citation_function_at(ref).root_citation()
        archive_files = {
            f"{manager.repo.name}-{version_label}{path}": data
            for path, data in manager.repo.snapshot(ref).items()
        }
        deposit = self.create_deposit(
            root.with_changes(version=version_label), files=archive_files
        )
        published = self.publish(deposit.deposit_id, published_at=published_at)
        function = manager.citation_function()
        updated_root = function.root_citation().with_changes(
            doi=published.doi, version=version_label
        )
        function.put("/", updated_root, is_directory=True)
        manager._save()
        return published, updated_root
