"""Fault injection: a process-global registry of named failpoints.

Durable-write sites, the transfer stream and the wire layer are instrumented
with *failpoints* — named hooks that are no-ops in production but that a test
(or a fleet fault schedule) can **arm** with a deterministic action:

* ``crash``    — raise :class:`SimulatedCrash` *before* the protected effect,
  modelling a process death at that instant;
* ``truncate`` — let the caller write only the first ``keep`` bytes, then
  raise :class:`SimulatedCrash`, modelling a crash mid-write (the classic
  torn temp file);
* ``flip``     — XOR one byte of the payload and let the operation complete,
  modelling silent on-disk / in-flight corruption that only an integrity
  scan can catch;
* ``error``    — raise a caller-supplied exception (connection reset, disk
  full, …) without crashing the process.

Every site calls :func:`fire` (control points) or :func:`corrupt` /
:func:`consume` (data points) with its failpoint name.  Hits are counted per
name whether or not anything is armed, so a sweep harness can dry-run an
operation sequence, read :func:`hits`, and then re-run it once per
``(failpoint, hit index)`` pair with a crash armed — the exhaustive
crash-point sweep the durability tests perform.

Arming is keyed by a 1-based hit index (``at``) and an optional repeat count
(``times``; ``None`` repeats forever), so a schedule like "crash the third
pack flush" or "drop every wire response twice" is a single :func:`arm`
call.  :class:`SimulatedCrash` deliberately derives from ``BaseException``:
blanket ``except Exception`` recovery code must *not* swallow a simulated
process death, exactly as it could not swallow a real one.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional

__all__ = [
    "SimulatedCrash",
    "FaultAction",
    "register",
    "registered_failpoints",
    "arm",
    "disarm",
    "reset",
    "hits",
    "all_hits",
    "fire",
    "consume",
    "corrupt",
    "armed",
]


class SimulatedCrash(BaseException):
    """An injected process death at a named failpoint.

    Derives from ``BaseException`` so ordinary ``except Exception`` error
    handling cannot absorb it — recovery from a simulated crash must happen
    the way it would for a real one: by reopening the store from disk.
    """

    def __init__(self, failpoint: str, detail: str = "") -> None:
        message = f"simulated crash at failpoint {failpoint!r}"
        if detail:
            message += f" ({detail})"
        super().__init__(message)
        self.failpoint = failpoint


@dataclass
class FaultAction:
    """What an armed failpoint does when its hit index comes up."""

    kind: str = "crash"  # "crash" | "truncate" | "flip" | "error"
    #: 1-based hit index at which the action first triggers.
    at: int = 1
    #: How many consecutive hits trigger (``None`` = every hit from ``at``).
    times: Optional[int] = 1
    #: ``truncate``: number of payload bytes the caller gets to write.
    keep: int = 0
    #: ``flip``: byte offset to corrupt (clamped into the payload).
    offset: int = 0
    #: ``flip``: XOR mask applied to the corrupted byte.
    xor: int = 0xFF
    #: ``error``: exception instance, class or zero-arg factory to raise.
    error: Optional[Callable[[], BaseException]] = None
    #: How many times this action has actually triggered.
    triggered: int = field(default=0, compare=False)

    def matches(self, hit: int) -> bool:
        if hit < self.at:
            return False
        return self.times is None or hit < self.at + self.times

    def make_error(self, failpoint: str) -> BaseException:
        if self.error is None:
            return SimulatedCrash(failpoint, "error action without an exception")
        made = self.error() if callable(self.error) else self.error
        if isinstance(made, BaseException):
            return made
        return SimulatedCrash(failpoint, f"error factory returned {made!r}")


#: The canonical failpoints the instrumented modules fire.  ``register`` may
#: add more at runtime; these exist up front so sweep harnesses can enumerate
#: the full crash-point space without importing every instrumented module.
_CANONICAL = (
    "storage.write",   # loose-object durable write
    "storage.flush",   # pack backend flush (new pack file)
    "pack.idx",        # per-pack fanout index write
    "pack.midx",       # multi-pack index write
    "pack.repack",     # repack/gc replacement pack write
    "state.save",      # working-copy state.json write
    "bundle.read",     # transfer stream entering the bundle parser
    "bundle.apply",    # verified objects about to land in the store
    "wire.request",    # REST request leaving the client
    "wire.response",   # REST response returning to the client
    "journal.append",  # write-ahead push journal append (serve durability)
    "serve.recover",   # per-record journal replay during serve startup
)

_hits: dict[str, int] = {name: 0 for name in _CANONICAL}
_arms: dict[str, list[FaultAction]] = {}


def register(name: str) -> str:
    """Declare a failpoint name (idempotent); returns the name."""
    _hits.setdefault(name, 0)
    return name


def registered_failpoints() -> tuple[str, ...]:
    """Every known failpoint name, sorted."""
    return tuple(sorted(_hits))


def hits(name: str) -> int:
    """How many times ``name`` has fired since the last :func:`reset`."""
    return _hits.get(name, 0)


def all_hits() -> dict[str, int]:
    """Snapshot of every failpoint's hit count."""
    return dict(_hits)


def arm(name: str, action: str | FaultAction = "crash", **kwargs) -> FaultAction:
    """Arm ``name`` with an action (kind string plus keyword options)."""
    register(name)
    armed_action = action if isinstance(action, FaultAction) else FaultAction(kind=action, **kwargs)
    if armed_action.kind not in ("crash", "truncate", "flip", "error"):
        raise ValueError(f"unknown fault action kind {armed_action.kind!r}")
    _arms.setdefault(name, []).append(armed_action)
    return armed_action


def disarm(name: str | None = None) -> None:
    """Remove the arms of one failpoint, or all of them."""
    if name is None:
        _arms.clear()
    else:
        _arms.pop(name, None)


def reset() -> None:
    """Disarm everything and zero every hit counter."""
    _arms.clear()
    for name in _hits:
        _hits[name] = 0


@contextmanager
def armed(name: str, action: str | FaultAction = "crash", **kwargs) -> Iterator[FaultAction]:
    """Context manager: arm for the duration of the block, then disarm it."""
    armed_action = arm(name, action, **kwargs)
    try:
        yield armed_action
    finally:
        actions = _arms.get(name)
        if actions is not None:
            try:
                actions.remove(armed_action)
            except ValueError:
                pass
            if not actions:
                _arms.pop(name, None)


def consume(name: str | None) -> FaultAction | None:
    """Record one hit of ``name`` and return the triggering action, if any.

    This is the primitive the durable-write helper uses to get the full
    action semantics (truncate-then-crash needs the caller's cooperation);
    most sites use :func:`fire` or :func:`corrupt` instead.  ``None`` names
    are accepted and ignored so call sites can thread an optional failpoint.
    """
    if name is None:
        return None
    hit = _hits.get(name, 0) + 1
    _hits[name] = hit
    for action in _arms.get(name, ()):
        if action.matches(hit):
            action.triggered += 1
            return action
    return None


def fire(name: str | None) -> None:
    """A pure control point: crash or raise if armed, otherwise a no-op.

    ``truncate``/``flip`` actions have no payload to act on here and behave
    like ``crash`` — arming them at a control point still denotes "die at
    this site".
    """
    action = consume(name)
    if action is None:
        return
    if action.kind == "error":
        raise action.make_error(name or "?")
    raise SimulatedCrash(name or "?")


def corrupt(name: str | None, data: bytes) -> bytes:
    """A data point for in-flight payloads: mangle, crash or pass through.

    ``truncate`` and ``flip`` return the damaged bytes (the transfer layer's
    checksums are expected to catch them); ``crash``/``error`` raise.
    """
    action = consume(name)
    if action is None:
        return data
    if action.kind == "truncate":
        return data[: max(0, action.keep)]
    if action.kind == "flip":
        if not data:
            return data
        position = min(max(action.offset, 0), len(data) - 1)
        mutated = bytearray(data)
        mutated[position] ^= action.xor or 0xFF
        return bytes(mutated)
    if action.kind == "error":
        raise action.make_error(name or "?")
    raise SimulatedCrash(name or "?")
