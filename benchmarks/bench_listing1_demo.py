"""LISTING1-DEMO-SCENARIO: regenerate the final citation.cite of Listing 1.

Section 4 demonstrates GitCite on the CiteDB repository: the CoreCover query
rewriting code is imported from Chen Li's repository with CopyCite, and the
GUI developed by the summer student Yanssie on a branch is merged back with
MergeCite.  Listing 1 shows the resulting ``citation.cite`` with three
entries ("/", ".../CoreCover/", ".../citation/GUI/").

The benchmark times the scenario construction and verifies every field of the
regenerated file against the listing.
"""

from __future__ import annotations

import json

from conftest import print_table

from repro.workloads.scenarios import (
    LISTING1_EXPECTED_ENTRIES,
    build_demo_scenario,
)


def test_listing1_scenario_construction(benchmark):
    """Time building the full demonstration scenario (both repositories)."""
    scenario = benchmark(build_demo_scenario)
    assert scenario.final_commit


def test_listing1_citation_file_matches_paper(benchmark):
    """Compare the regenerated citation.cite entries field-by-field with Listing 1."""
    scenario = build_demo_scenario()

    def parse():
        return json.loads(scenario.citation_file_text)

    payload = benchmark(parse)

    rows = []
    all_match = True
    for key, expected in LISTING1_EXPECTED_ENTRIES.items():
        actual = payload.get(key, {})
        for field, value in expected.items():
            match = actual.get(field) == value
            all_match &= match
            rows.append([key, field, value, actual.get(field), "OK" if match else "MISMATCH"])
    extra_keys = sorted(set(payload) - set(LISTING1_EXPECTED_ENTRIES))
    rows.append(["(keys)", "count", len(LISTING1_EXPECTED_ENTRIES), len(payload), "OK" if not extra_keys else f"extra: {extra_keys}"])
    print_table(
        "Listing 1 — final citation.cite of the demonstration repository",
        ["key", "field", "paper value", "measured value", "status"],
        rows,
    )
    assert all_match and not extra_keys


def test_listing1_resolution_of_demo_paths(benchmark):
    """Cite() for representative files of the demo repository (who gets credit)."""
    scenario = build_demo_scenario()
    queries = [
        ("/CoreCover/corecover.py", "Chen Li"),
        ("/CoreCover/lattice.py", "Chen Li"),
        ("/citation/GUI/main_window.py", "Yanssie"),
        ("/citation/query_processor.py", "Yinjun Wu"),
        ("/README.md", "Yinjun Wu"),
    ]

    def resolve_all():
        return [scenario.manager.cite(path).citation for path, _ in queries]

    citations = benchmark(resolve_all)
    rows = []
    for (path, expected), citation in zip(queries, citations):
        credited = citation.authors[0] if citation.authors else citation.owner
        rows.append([path, expected, credited, "OK" if credited == expected else "MISMATCH"])
        assert credited == expected
    print_table(
        "Listing 1 — credit attribution for demo repository paths",
        ["path", "paper credit", "measured credit", "status"],
        rows,
    )
