"""The CI perf-regression gate: check benchmark results against recorded floors.

Reads a ``BENCH_results.json`` produced by :mod:`benchmarks.run_all` and the
per-scenario floors recorded in ``benchmarks/perf_floors.json``, and fails
(exit code 1) when any gated scenario

* is missing from the results,
* reported ``outputs_identical: false`` (the optimised path diverged), or
* fell below its ``min_speedup`` floor / exceeded a ``max_fields`` bound.

Because every scenario re-measures its seed baseline on the same machine in
the same run, the speedup is a machine-independent complexity signal: a
floor violation means a hot path regressed, not that the runner was slow.

Usage::

    PYTHONPATH=src python benchmarks/run_all.py --output BENCH_results.json
    python benchmarks/check_regression.py BENCH_results.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
DEFAULT_FLOORS = Path(__file__).resolve().parent / "perf_floors.json"


def check(results: dict, floors: dict) -> list[str]:
    """Return a list of human-readable violations (empty == gate passes)."""
    violations: list[str] = []
    for scenario, limits in floors.items():
        entry = results.get(scenario)
        if entry is None:
            violations.append(f"{scenario}: missing from the benchmark results")
            continue
        if not entry.get("outputs_identical", False):
            violations.append(f"{scenario}: outputs_identical is false")
        minimum = limits.get("min_speedup")
        if minimum is not None and entry.get("speedup", 0.0) < minimum:
            violations.append(
                f"{scenario}: speedup {entry.get('speedup', 0.0):.2f}x "
                f"below the recorded floor {minimum:.2f}x"
            )
        for field, bound in limits.get("max_fields", {}).items():
            value = entry.get(field)
            if value is None:
                violations.append(f"{scenario}: expected field {field!r} is missing")
            elif value > bound:
                violations.append(
                    f"{scenario}: {field} = {value:.2f} exceeds the bound {bound:.2f}"
                )
    return violations


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "results",
        type=Path,
        nargs="?",
        default=_REPO_ROOT / "BENCH_results.json",
        help="BENCH_results.json to check (default: repository root copy)",
    )
    parser.add_argument(
        "--floors", type=Path, default=DEFAULT_FLOORS, help="per-scenario floor file"
    )
    args = parser.parse_args(argv)

    results = json.loads(args.results.read_text(encoding="utf-8"))["results"]
    floors = json.loads(args.floors.read_text(encoding="utf-8"))["floors"]

    violations = check(results, floors)
    checked = sorted(set(floors) & set(results))
    print(f"checked {len(checked)} gated scenario(s) against {args.floors.name}")
    for scenario in checked:
        entry = results[scenario]
        print(
            f"  {scenario}: speedup {entry.get('speedup', 0.0):8.1f}x  "
            f"identical={entry.get('outputs_identical')}"
        )
    if violations:
        print("\nPERF GATE FAILED:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    print("perf gate passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
