"""EXTRA-RETRO-CITATION: retroactive citation of existing repositories (future work, §5).

Measures history mining (per-file attribution) and citation-function
generation at the three granularities on synthetic histories of growing
length, and prints how many entries each granularity produces — the
"granularity of credit" trade-off the paper's introduction raises.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table

from repro.citation.retro import attribute_history, build_retroactive_function
from repro.workloads.generator import WorkloadConfig, generate_history, generate_repository

HISTORY_LENGTHS = [10, 50, 150]


def _repo_with_history(num_commits: int):
    workload = generate_repository(
        WorkloadConfig(seed=61, num_files=120, citation_density=0.0)
    )
    generate_history(workload, num_commits=num_commits, edits_per_commit=4)
    return workload.repo


@pytest.mark.parametrize("num_commits", HISTORY_LENGTHS)
def test_attribution_mining_cost(benchmark, num_commits):
    """Per-file attribution mining vs history length."""
    repo = _repo_with_history(num_commits)
    index = benchmark(attribute_history, repo)
    assert index.commits_scanned >= num_commits


def test_retroactive_generation_cost(benchmark):
    """Full retroactive function generation (directory granularity) on a 50-commit history."""
    repo = _repo_with_history(50)
    report = benchmark(build_retroactive_function, repo, "HEAD", "directory")
    assert report.entries_created >= 1


def test_retroactive_granularity_table(benchmark):
    """Entries produced and mining time per granularity and history length."""
    rows = []
    for num_commits in HISTORY_LENGTHS:
        repo = _repo_with_history(num_commits)
        for granularity in ("root", "directory", "file"):
            start = time.perf_counter()
            report = build_retroactive_function(repo, granularity=granularity)
            elapsed_ms = (time.perf_counter() - start) * 1e3
            rows.append(
                [
                    num_commits,
                    granularity,
                    report.entries_created,
                    len(report.contributors),
                    f"{elapsed_ms:.0f}",
                ]
            )
    print_table(
        "EXTRA-RETRO-CITATION — retroactive citation generation",
        ["commits", "granularity", "citation entries", "contributors", "ms"],
        rows,
    )
    # Finer granularity never produces fewer entries.
    for num_commits in HISTORY_LENGTHS:
        per_len = [row for row in rows if row[0] == num_commits]
        counts = {row[1]: row[2] for row in per_len}
        assert counts["root"] <= counts["directory"] <= counts["file"]
