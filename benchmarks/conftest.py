"""Shared helpers for the benchmark harness.

Every benchmark module corresponds to one experiment id from DESIGN.md
(FIG1-*, LISTING1-*, FIG2-*, EXTRA-*).  Besides timing with pytest-benchmark,
each module *prints* the artifact or table it regenerates (the paper is a demo
paper, so its "results" are behaviours and a citation file rather than
numbers); EXPERIMENTS.md records the paper-vs-measured comparison.

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path

import pytest

from repro.utils.timeutil import FixedClock, reset_clock, set_clock


@pytest.fixture(autouse=True)
def _fixed_clock():
    """Benchmarks run under a deterministic clock, like the tests."""
    set_clock(FixedClock(datetime(2018, 9, 1, 12, 0, 0, tzinfo=timezone.utc), step_seconds=60))
    yield
    reset_clock()


#: Tables collected during the run; echoed after the benchmark summary (so they
#: survive pytest's output capture) and written to ``benchmarks/experiment_tables.txt``.
_COLLECTED_TABLES: list[str] = []


def print_table(title: str, headers: list[str], rows: list[list[object]]) -> None:
    """Print a small fixed-width table (the regenerated experiment output)."""
    widths = [
        max(len(str(header)), *(len(str(row[i])) for row in rows)) if rows else len(str(header))
        for i, header in enumerate(headers)
    ]
    lines = [f"=== {title} ===",
             "  ".join(str(header).ljust(widths[i]) for i, header in enumerate(headers)),
             "  ".join("-" * width for width in widths)]
    for row in rows:
        lines.append("  ".join(str(cell).ljust(widths[i]) for i, cell in enumerate(row)))
    text = "\n".join(lines)
    print("\n" + text)
    _COLLECTED_TABLES.append(text)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Echo every regenerated experiment table after the benchmark summary."""
    if not _COLLECTED_TABLES:
        return
    terminalreporter.write_line("")
    terminalreporter.write_sep("=", "regenerated experiment tables (see EXPERIMENTS.md)")
    for table in _COLLECTED_TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
    results_path = Path(__file__).parent / "experiment_tables.txt"
    results_path.write_text("\n\n".join(_COLLECTED_TABLES) + "\n", encoding="utf-8")
    terminalreporter.write_line(f"\n(tables also written to {results_path})")
