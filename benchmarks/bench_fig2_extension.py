"""FIG2-EXTENSION-POPUP: regenerate the browser-extension popup behaviour.

Figure 2 and Section 3 specify the popup's behaviour for members and
non-members.  The benchmark drives the extension simulator against the hosted
demonstration repository, prints the member / non-member behaviour matrix,
and times the two core remote operations (GenCite for a reader, AddCite for a
member — each a round-trip through the REST API).
"""

from __future__ import annotations

from conftest import print_table

from repro.extension.client import ExtensionClient
from repro.extension.popup import PopupSession
from repro.workloads.scenarios import build_extension_scenario


def _fresh_popup(scenario, token):
    client = ExtensionClient(scenario.api)
    popup = PopupSession(client)
    popup.sign_in(token)
    popup.open_repository(scenario.slug)
    return popup


def test_fig2_behaviour_matrix(benchmark):
    """Render the popup for both user classes on cited and uncited nodes."""
    scenario = build_extension_scenario()
    scenario.platform.rate_limiter.enabled = False

    def render_views():
        member = _fresh_popup(scenario, scenario.member_token)
        visitor = _fresh_popup(scenario, scenario.non_member_token)
        return {
            ("member", "cited dir"): member.select_node("/citation/GUI"),
            ("member", "uncited file"): member.select_node("/schema/eagle_i.sql"),
            ("non-member", "cited dir"): visitor.select_node("/CoreCover"),
            ("non-member", "uncited file"): visitor.select_node("/schema/eagle_i.sql"),
        }

    views = benchmark(render_views)

    expectations = {
        ("member", "cited dir"): ("explicit citation shown", True, True),
        ("member", "uncited file"): ("empty box", True, False),
        ("non-member", "cited dir"): ("generated citation shown", False, False),
        ("non-member", "uncited file"): ("generated citation shown", False, False),
    }
    rows = []
    for key, view in views.items():
        paper_text, _, _ = expectations[key]
        if key[0] == "member" and "cited" in key[1] and key[1] != "uncited file":
            measured_text = "explicit citation shown" if view.text_box else "empty box"
        elif key[0] == "member":
            measured_text = "empty box" if not view.text_box else "explicit citation shown"
        else:
            measured_text = "generated citation shown" if view.text_box else "empty box"
        status = "OK" if measured_text == paper_text else "MISMATCH"
        rows.append([
            key[0],
            key[1],
            paper_text,
            measured_text,
            f"add={'on' if view.add_enabled else 'off'} del={'on' if view.delete_enabled else 'off'}",
            status,
        ])
        assert status == "OK"
        if key[0] == "non-member":
            assert not view.add_enabled and not view.delete_enabled
    print_table(
        "Figure 2 — popup behaviour (member vs non-member)",
        ["user", "node", "paper behaviour", "measured behaviour", "buttons", "status"],
        rows,
    )


def test_fig2_noncmember_gencite_latency(benchmark):
    """Time a non-member GenCite round trip through the REST API."""
    scenario = build_extension_scenario()
    scenario.platform.rate_limiter.enabled = False
    client = ExtensionClient(scenario.api, token=scenario.non_member_token)

    def generate():
        return client.generate_citation(scenario.slug, "/CoreCover/corecover.py")

    resolved = benchmark(generate)
    assert resolved.citation.owner == "Chen Li"


def test_fig2_member_add_delete_latency(benchmark):
    """Time a member AddCite+DelCite round trip (two remote commits)."""
    scenario = build_extension_scenario()
    client = ExtensionClient(scenario.api, token=scenario.member_token)
    citation = scenario.demo.manager.default_root_citation(authors=["Bench Author"])
    scenario.platform.rate_limiter.enabled = False

    def add_then_delete():
        client.add_citation(scenario.slug, "/README.md", citation)
        client.delete_citation(scenario.slug, "/README.md")

    benchmark(add_then_delete)
    assert client.view_node(scenario.slug, "/README.md").explicit_citation is None
