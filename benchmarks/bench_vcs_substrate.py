"""EXTRA-VCS-SUBSTRATE: sanity benchmarks of the version-control substrate.

GitCite's operations are only as fast as the underlying VCS operations they
ride on (commit, diff, merge, fork, push).  These benches characterise the
pure-Python substrate so the citation-layer numbers elsewhere can be read in
context, and print a small table of operation costs vs repository size.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table

from repro.vcs.diff import diff_trees
from repro.vcs.remote import clone_repository, fork_repository, push
from repro.vcs.repository import Repository
from repro.workloads.generator import WorkloadConfig, generate_repository

REPO_SIZES = [50, 200, 800]


def _repo(num_files: int) -> Repository:
    return generate_repository(WorkloadConfig(seed=71, num_files=num_files)).repo


@pytest.mark.parametrize("num_files", REPO_SIZES)
def test_commit_cost(benchmark, num_files):
    """Commit cost (stage whole worktree + build trees) vs repository size."""
    repo = _repo(num_files)
    counter = iter(range(100_000))

    def edit_and_commit():
        repo.write_file("/bench_target.txt", f"revision {next(counter)}\n")
        return repo.commit("bench edit")

    benchmark.pedantic(edit_and_commit, iterations=1, rounds=5)


@pytest.mark.parametrize("num_files", REPO_SIZES)
def test_diff_cost(benchmark, num_files):
    """Tree diff (with rename detection) between consecutive versions."""
    repo = _repo(num_files)
    first = repo.head_oid()
    paths = repo.list_files()
    for path in paths[: max(5, len(paths) // 20)]:
        repo.write_file(path, "edited for diff bench\n")
    second = repo.commit("edit a slice of files")

    def run_diff():
        return diff_trees(repo.store, repo.store.get_commit(first).tree_oid,
                          repo.store.get_commit(second).tree_oid)

    diff = benchmark(run_diff)
    assert diff.modified


def test_branch_merge_cost(benchmark):
    """Three-way merge of two branches touching disjoint files (200-file repo)."""
    repo = _repo(200)
    repo.create_branch("left")
    repo.create_branch("right")
    repo.checkout("left")
    repo.write_file("/left_only.txt", "left\n")
    repo.commit("left work")
    repo.checkout("right")
    repo.write_file("/right_only.txt", "right\n")
    repo.commit("right work")
    repo.checkout("left")

    def merge():
        outcome = repo.merge("right")
        # Rewind the branch so every round performs the same merge.
        repo.refs.set_branch("left", repo.store.get_commit(outcome.commit_oid).parent_oids[0])
        repo.checkout("left")
        return outcome

    outcome = benchmark.pedantic(merge, iterations=1, rounds=10)
    assert not outcome.fast_forward


def test_fork_and_push_cost(benchmark):
    """Fork a 200-file repository and push one new commit back."""
    origin = _repo(200)

    counter = iter(range(10_000))

    def fork_edit_push():
        fork = fork_repository(origin, new_owner="bench-user")
        fork.write_file("/fork_note.md", f"hello from fork round {next(counter)}\n")
        fork.commit("fork note")
        return push(fork, origin, force=True)

    benchmark.pedantic(fork_edit_push, iterations=1, rounds=5)


def test_vcs_substrate_table(benchmark):
    """Print commit / clone / snapshot costs across repository sizes."""
    rows = []
    for num_files in REPO_SIZES:
        repo = _repo(num_files)

        start = time.perf_counter()
        repo.write_file("/table_probe.txt", "probe\n")
        repo.commit("probe commit")
        commit_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        clone_repository(repo)
        clone_ms = (time.perf_counter() - start) * 1e3

        start = time.perf_counter()
        snapshot = repo.snapshot()
        snapshot_ms = (time.perf_counter() - start) * 1e3

        rows.append(
            [num_files, len(repo.store), f"{commit_ms:.1f}", f"{clone_ms:.1f}", f"{snapshot_ms:.1f}"]
        )
        assert len(snapshot) >= num_files
    print_table(
        "EXTRA-VCS-SUBSTRATE — substrate operation costs",
        ["files", "objects", "commit ms", "clone ms", "snapshot ms"],
        rows,
    )
