"""EXTRA-RESOLUTION-SCALE: cost of Cite(V,P)(n) vs tree size and citation density.

The paper's model (Section 2) resolves a node's citation by walking to its
closest cited ancestor, so resolution cost should grow with path depth — not
with repository size — and should be insensitive to citation density except
through the length of that walk.  This bench sweeps both dimensions and
prints the measured table.
"""

from __future__ import annotations

import random
import time

import pytest

from conftest import print_table

from repro.workloads.generator import generate_citation_function, generate_tree_paths

TREE_SIZES = [100, 1_000, 10_000]
DENSITIES = [0.01, 0.1, 0.5]


def _build(num_files: int, density: float):
    rng = random.Random(42)
    paths = generate_tree_paths(rng, num_files, max_depth=6, branching=6)
    function, _ = generate_citation_function(random.Random(42), paths, density=density)
    probes = random.Random(7).sample(paths, min(200, len(paths)))
    return function, probes


@pytest.mark.parametrize("num_files", TREE_SIZES)
def test_resolution_cost_vs_tree_size(benchmark, num_files):
    """Resolution throughput at 10% density for growing trees."""
    function, probes = _build(num_files, density=0.1)

    def resolve_probes():
        return [function.resolve(path) for path in probes]

    resolved = benchmark(resolve_probes)
    assert len(resolved) == len(probes)


@pytest.mark.parametrize("density", DENSITIES)
def test_resolution_cost_vs_density(benchmark, density):
    """Resolution throughput on a fixed tree as the cited fraction grows."""
    function, probes = _build(2_000, density=density)

    def resolve_probes():
        return [function.resolve(path) for path in probes]

    benchmark(resolve_probes)


def test_resolution_scaling_table(benchmark):
    """Print the full sweep as one table (microseconds per resolution)."""
    rows = []
    for num_files in TREE_SIZES:
        for density in DENSITIES:
            function, probes = _build(num_files, density)
            start = time.perf_counter()
            repetitions = 5
            for _ in range(repetitions):
                for path in probes:
                    function.resolve(path)
            elapsed = time.perf_counter() - start
            per_call_us = elapsed / (repetitions * len(probes)) * 1e6
            explicit_fraction = sum(
                1 for p in probes if function.get_explicit(p) is not None
            ) / len(probes)
            rows.append(
                [num_files, density, len(function), f"{per_call_us:.2f}", f"{explicit_fraction:.2f}"]
            )
    print_table(
        "EXTRA-RESOLUTION-SCALE — Cite(V,P)(n) cost",
        ["files", "density", "explicit entries", "us / resolution", "explicit hit rate"],
        rows,
    )
    assert rows
