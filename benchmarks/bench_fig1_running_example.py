"""FIG1-RUNNING-EXAMPLE: regenerate the Figure 1 running example.

The right half of Figure 1 traces citation values through the GitCite
operations:

* ``Cite(V1,P1)(f1) = C1`` and after AddCite ``Cite(V2,P1)(f1) = C2``;
* ``Cite(V3,P2)(f2) = C4`` before CopyCite and ``Cite(V4,P1)(f2) = C4`` after;
* MergeCite of V2 and V4 produces V5 with the union of both citation
  functions and no conflicts.

The benchmark times the full scenario construction and the individual
``Cite`` evaluations, and prints the resolution table the figure implies.
"""

from __future__ import annotations

from conftest import print_table

from repro.workloads.scenarios import build_running_example


def test_fig1_scenario_construction(benchmark):
    """Time building the whole running example (P1, P2, V1..V5)."""
    example = benchmark(build_running_example)
    assert example.v5


def test_fig1_resolution_table(benchmark):
    """Evaluate and print every Cite(V,P)(n) value the figure shows."""
    example = build_running_example()
    manager_p1, manager_p2 = example.manager_p1, example.manager_p2
    labels = {example.c1: "C1", example.c2: "C2", example.c3: "C3", example.c4: "C4"}

    queries = [
        ("Cite(V1,P1)(f1)", manager_p1, example.v1, "/f1.py", "C1"),
        ("Cite(V2,P1)(f1)", manager_p1, example.v2, "/f1.py", "C2"),
        ("Cite(V2,P1)(lib/util.py)", manager_p1, example.v2, "/lib/util.py", "C1"),
        ("Cite(V3,P2)(green)", manager_p2, example.v3, "/green", "C4"),
        ("Cite(V3,P2)(f2)", manager_p2, example.v3, "/green/f2.py", "C4"),
        ("Cite(V4,P1)(f2)", manager_p1, example.v4, "/green/f2.py", "C4"),
        ("Cite(V5,P1)(f1)", manager_p1, example.v5, "/f1.py", "C2"),
        ("Cite(V5,P1)(f2)", manager_p1, example.v5, "/green/f2.py", "C4"),
        ("Cite(V5,P1)(lib/io.py)", manager_p1, example.v5, "/lib/io.py", "C1"),
    ]

    def evaluate_all():
        return [manager.cite(path, ref=ref).citation for _, manager, ref, path, _ in queries]

    resolved = benchmark(evaluate_all)

    rows = []
    for (label, _, _, _, expected), citation in zip(queries, resolved):
        got = labels.get(citation, "?")
        rows.append([label, expected, got, "OK" if got == expected else "MISMATCH"])
        assert got == expected, label
    rows.append(["MergeCite(V2,V4) conflicts", "0", str(len(example.merge_outcome.citation_result.conflicts)), "OK"])
    print_table(
        "Figure 1 running example — citation resolution",
        ["query", "paper", "measured", "status"],
        rows,
    )
