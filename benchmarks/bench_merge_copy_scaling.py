"""EXTRA-MERGE-COPY-SCALE: MergeCite and CopyCite cost vs workload size.

MergeCite unions two citation maps and drops entries for deleted files;
CopyCite re-roots a subtree's entries.  Both should scale linearly in the
number of citation entries involved, independent of total repository history.
This bench sweeps the number of per-branch citations (merge) and the copied
subtree size (copy) and prints the measured scaling table.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table

from repro.citation.conflict import NewestStrategy
from repro.citation.copy import copy_citations
from repro.citation.function import CitationFunction
from repro.citation.manager import CitationManager
from repro.citation.merge import merge_citation_functions
from repro.vcs.repository import Repository
from repro.workloads.generator import (
    WorkloadConfig,
    generate_branch_pair,
    generate_citation,
    generate_repository,
)

import random

MERGE_SIZES = [10, 50, 200]
COPY_SIZES = [10, 100, 1_000]


@pytest.mark.parametrize("citations_per_branch", MERGE_SIZES)
def test_mergecite_end_to_end(benchmark, citations_per_branch):
    """Full MergeCite (git merge + citation union + commit) vs citations per branch."""
    pair = generate_branch_pair(
        WorkloadConfig(seed=41, num_files=max(4 * citations_per_branch, 120)),
        citations_per_branch=citations_per_branch,
        conflict_fraction=0.2,
    )

    def merge():
        outcome = pair.manager.merge_cite(pair.theirs_branch, strategy=NewestStrategy())
        # Rewind so every benchmark round merges the same pair of branches.
        pair.repo.checkout(pair.ours_branch)
        pair.manager.reload()
        pair.repo.refs.set_branch(pair.ours_branch, pair.repo.head_oid())
        return outcome

    outcome = benchmark.pedantic(merge, iterations=1, rounds=10)
    assert outcome.citation_result.function.has_root


@pytest.mark.parametrize("subtree_files", COPY_SIZES)
def test_copycite_citation_migration(benchmark, subtree_files):
    """Pure citation migration cost of CopyCite vs copied subtree size."""
    rng = random.Random(11)
    source = CitationFunction.with_root(generate_citation(rng, repo_name="source"))
    for index in range(subtree_files):
        source.put(f"/pkg/m{index // 50}/f{index}.py", generate_citation(rng), False)
    destination_template = CitationFunction.with_root(generate_citation(rng, repo_name="dest"))

    def migrate():
        destination = destination_template.copy()
        return copy_citations(source, "/pkg", destination, "/vendor/pkg")

    result = benchmark(migrate)
    assert result.migrated_count >= subtree_files


def test_merge_copy_scaling_table(benchmark):
    """Print union cost and conflict counts across the sweep."""
    rows = []
    rng = random.Random(3)
    for entries in [100, 1_000, 5_000]:
        ours = CitationFunction.with_root(generate_citation(rng, repo_name="ours"))
        theirs = CitationFunction.with_root(generate_citation(rng, repo_name="ours"))
        for index in range(entries):
            path = f"/dir{index % 37}/file{index}.py"
            ours.put(path, generate_citation(rng), False)
            if index % 3 == 0:
                theirs.put(path, generate_citation(rng), False)  # same key, different value
            else:
                theirs.put(f"/theirs/only{index}.py", generate_citation(rng), False)
        start = time.perf_counter()
        result = merge_citation_functions(ours, theirs, strategy=NewestStrategy())
        elapsed_ms = (time.perf_counter() - start) * 1e3
        rows.append(
            [entries, len(result.function), len(result.conflicts), f"{elapsed_ms:.1f}"]
        )
    print_table(
        "EXTRA-MERGE-COPY-SCALE — citation-function union (MergeCite core)",
        ["entries / branch", "merged entries", "conflicts", "union ms"],
        rows,
    )
    assert rows


def test_copycite_end_to_end_repository(benchmark):
    """CopyCite through the manager, including file copies, on a mid-size subtree."""
    source_workload = generate_repository(WorkloadConfig(seed=51, num_files=200, citation_density=0.2))
    source_repo = source_workload.repo
    source_dirs = [d for d in source_repo.list_directories() if d != "/"]
    subtree = max(source_dirs, key=lambda d: len(source_repo.list_files(d)))

    counter = iter(range(10_000))

    def copy_into_fresh_repo():
        index = next(counter)
        destination = Repository.init("dest", "bench")
        destination.write_file("README.md", "dest\n")
        destination.commit("init")
        manager = CitationManager(destination)
        manager.init_citations()
        outcome = manager.copy_cite(source_repo, subtree, f"/vendor{index}")
        manager.commit("CopyCite")
        return outcome

    outcome = benchmark.pedantic(copy_into_fresh_repo, iterations=1, rounds=10)
    assert outcome.copied_files
