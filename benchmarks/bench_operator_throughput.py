"""EXTRA-OPERATOR-THROUGHPUT: AddCite/DelCite/ModifyCite/GenCite throughput.

Section 3 makes every citation operation a side-effect on ``citation.cite``
that the next commit snapshots.  This bench measures (a) raw operator
throughput on the in-memory citation function, and (b) the end-to-end cost of
an operation performed through the manager followed by a commit (file
serialisation + tree/commit object creation), which is what a user of the
local tool experiences.
"""

from __future__ import annotations

import time

import pytest

from conftest import print_table

from repro.citation.operators import apply_operations
from repro.workloads.generator import (
    WorkloadConfig,
    generate_operation_trace,
    generate_repository,
)

TRACE_LENGTH = 500


@pytest.fixture(scope="module")
def workload():
    return generate_repository(WorkloadConfig(seed=31, num_files=300, citation_density=0.1))


def test_operator_trace_throughput(benchmark, workload):
    """Replay a mixed 500-operation trace against the citation function."""
    trace = generate_operation_trace(workload, TRACE_LENGTH)

    def replay():
        function = workload.manager.citation_function().copy()
        return apply_operations(function, trace)

    results = benchmark(replay)
    assert len(results) == TRACE_LENGTH


def test_gencite_only_throughput(benchmark, workload):
    """GenCite-only trace (read-mostly workload of the browser extension)."""
    trace = generate_operation_trace(workload, TRACE_LENGTH, mix={"generate": 1.0})
    function = workload.manager.citation_function()

    def replay():
        return apply_operations(function, trace)

    benchmark(replay)


def test_addcite_plus_commit_cost(benchmark, workload):
    """End-to-end cost of one AddCite through the manager plus the commit."""
    manager = workload.manager
    uncited = iter([p for p in workload.file_paths if p not in set(workload.cited_paths)] * 50)

    def add_and_commit():
        path = next(uncited)
        manager.add_cite(path, manager.default_root_citation(authors=["Bench"]))
        manager.commit(f"AddCite {path}")

    benchmark.pedantic(add_and_commit, iterations=1, rounds=30)


def test_bulk_addcite_batch_vs_write_through(benchmark):
    """Bulk AddCite through the manager: write-through vs batch() persistence.

    The batch context defers citation.cite serialisation to one write at
    exit, turning the O(n²) bulk load into O(n) with byte-identical output.
    """
    import random

    from repro.citation.citefile import CITATION_FILE_PATH
    from repro.workloads.generator import generate_citation

    bulk = 400

    def build():
        workload = generate_repository(
            WorkloadConfig(seed=33, num_files=bulk + 100, citation_density=0.0)
        )
        rng = random.Random(17)
        citations = [
            generate_citation(rng, repo_name=workload.repo.name) for _ in range(bulk)
        ]
        return workload, workload.file_paths[:bulk], citations

    plain, plain_paths, plain_citations = build()
    start = time.perf_counter()
    for path, citation in zip(plain_paths, plain_citations):
        plain.manager.add_cite(path, citation)
    write_through_s = time.perf_counter() - start

    batched_workloads = []

    def setup():
        # Workload construction stays outside the timed region, mirroring
        # what the write-through measurement above times.
        return (build(),), {}

    def run_batched(built):
        workload, paths, citations = built
        with workload.manager.batch():
            for path, citation in zip(paths, citations):
                workload.manager.add_cite(path, citation)
        batched_workloads.append(workload)

    benchmark.pedantic(run_batched, setup=setup, iterations=1, rounds=3)
    assert batched_workloads
    assert batched_workloads[-1].repo.read_file(CITATION_FILE_PATH) == plain.repo.read_file(
        CITATION_FILE_PATH
    )
    print_table(
        "EXTRA-OPERATOR-THROUGHPUT — bulk AddCite persistence modes",
        ["mode", "operations", "seconds"],
        [
            ["write-through (seed behaviour)", bulk, f"{write_through_s:.3f}"],
            ["batch() (single write)", bulk, "see benchmark stats above"],
        ],
    )


def test_operator_throughput_table(benchmark):
    """Print operations/second per operator kind."""
    # A fresh workload: the module fixture's citation function is mutated by
    # the commit-cost benchmark above, which would invalidate the traces.
    workload = generate_repository(WorkloadConfig(seed=32, num_files=300, citation_density=0.1))
    kinds = {
        "GenCite": {"generate": 1.0},
        "AddCite": {"add": 1.0},
        "ModifyCite": {"modify": 1.0},
        "DelCite+AddCite mix": {"add": 0.5, "delete": 0.5},
    }
    rows = []
    for label, mix in kinds.items():
        trace = generate_operation_trace(workload, 400, mix=mix)  # bounded by available paths
        function = workload.manager.citation_function().copy()
        start = time.perf_counter()
        apply_operations(function, trace)
        elapsed = time.perf_counter() - start
        rows.append([label, len(trace), f"{len(trace) / elapsed:,.0f}"])
    print_table(
        "EXTRA-OPERATOR-THROUGHPUT — citation operators (in-memory)",
        ["operator mix", "operations", "ops / second"],
        rows,
    )
    assert rows
