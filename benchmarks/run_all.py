"""Benchmark runner: measure the hot paths and emit ``BENCH_results.json``.

Each scenario times a *baseline* implementation (a faithful copy of the
seed's code path) against the *optimized* implementation now in the tree, on
identical inputs, and verifies that both produce identical outputs.  The
machine-readable results file gives this and future PRs a recorded
performance trajectory::

    PYTHONPATH=src python benchmarks/run_all.py           # scenarios only
    PYTHONPATH=src python benchmarks/run_all.py --full    # + pytest-benchmark suite

Output schema (``BENCH_results.json`` at the repository root)::

    {
      "schema": 1,
      "generated_at": "<iso timestamp>",
      "python": "<interpreter version>",
      "results": {
        "<scenario>": {
          "baseline_s": float,     # seed code path, same inputs
          "optimized_s": float,    # current code path
          "speedup": float,        # baseline_s / optimized_s
          "outputs_identical": true,
          ...scenario-specific fields...
        }
      }
    }

See PERFORMANCE.md for what each scenario exercises and how to read the
numbers.
"""

from __future__ import annotations

import argparse
import json
import random
import subprocess
import sys
import tempfile
import threading
import time
from datetime import datetime, timezone
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.citation.citefile import CITATION_FILE_PATH, load_citation_bytes  # noqa: E402
from repro.cli.storage import load_repository, save_repository  # noqa: E402
from repro.citation.retro import AttributionIndex, FileAttribution  # noqa: E402
from repro.errors import RemoteError, ValidationError  # noqa: E402
from repro.hub.api import RestApi  # noqa: E402
from repro.hub.durability import PushJournal, journal_path, recover_working_copy  # noqa: E402
from repro.hub.httpd import HttpTransport, HubHttpServer  # noqa: E402
from repro.hub.ratelimit import RateLimiter  # noqa: E402
from repro.hub.retry import RetryingApi, RetryPolicy  # noqa: E402
from repro.hub.server import HostingPlatform  # noqa: E402
from repro.hub.sync import HubRemote  # noqa: E402
from repro.vcs.merge import is_ancestor_commit  # noqa: E402
from repro.utils.hashing import object_id  # noqa: E402
from repro.utils.jsonutil import stable_loads  # noqa: E402
from repro.utils.paths import ROOT, is_ancestor, path_parent  # noqa: E402
from repro.utils.timeutil import FixedClock, reset_clock, set_clock  # noqa: E402
from repro.vcs.fsck import fsck_working_copy  # noqa: E402
from repro.vcs.object_store import ObjectStore  # noqa: E402
from repro.vcs.objects import MODE_FILE, Blob, Commit, Signature, deserialize_object  # noqa: E402
from repro.vcs.merge import commit_ancestors  # noqa: E402
from repro.vcs.remote import clone_repository, sync_objects  # noqa: E402
from repro.vcs.transfer import apply_bundle, common_tips, create_bundle  # noqa: E402
from repro.vcs.treeops import flatten_tree  # noqa: E402
from repro.vcs.repository import Repository  # noqa: E402
from repro.vcs.storage import make_backend  # noqa: E402
from repro.vcs.storage.pack import PackBackend  # noqa: E402
from repro.vcs.treeops import build_tree  # noqa: E402
from repro.workloads.generator import (  # noqa: E402
    WorkloadConfig,
    generate_citation,
    generate_citation_function,
    generate_repository,
    generate_tree_paths,
)

DEFAULT_OUTPUT = _REPO_ROOT / "BENCH_results.json"


def _timed(fn) -> float:
    start = time.perf_counter()
    fn()
    return time.perf_counter() - start


# ---------------------------------------------------------------------------
# Scenarios
# ---------------------------------------------------------------------------


def bench_bulk_addcite(num_operations: int = 1000) -> dict:
    """1k AddCite through the manager: write-through vs ``batch()``.

    The seed persisted ``citation.cite`` after every operator, making a bulk
    load quadratic in the number of citations; a batch defers to one write.
    """

    def build():
        workload = generate_repository(
            WorkloadConfig(seed=31, num_files=num_operations + 120, citation_density=0.0)
        )
        rng = random.Random(99)
        targets = workload.file_paths[:num_operations]
        citations = [
            generate_citation(rng, repo_name=workload.repo.name) for _ in targets
        ]
        return workload, targets, citations

    plain, plain_targets, plain_citations = build()

    def run_plain():
        for path, citation in zip(plain_targets, plain_citations):
            plain.manager.add_cite(path, citation)

    baseline_s = _timed(run_plain)

    batched, batch_targets, batch_citations = build()

    def run_batched():
        with batched.manager.batch():
            for path, citation in zip(batch_targets, batch_citations):
                batched.manager.add_cite(path, citation)

    optimized_s = _timed(run_batched)

    identical = plain.repo.read_file(CITATION_FILE_PATH) == batched.repo.read_file(
        CITATION_FILE_PATH
    )
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "operations": num_operations,
    }


def bench_cite_at_ref(num_calls: int = 300) -> dict:
    """Repeated ``cite(path, ref)``: per-call re-parse vs the blob-oid cache."""
    workload = generate_repository(WorkloadConfig(seed=42, num_files=800, citation_density=0.3))
    manager = workload.manager
    repo = workload.repo
    ref = repo.head_oid()
    probes = workload.file_paths[::7][:50]

    def seed_cite(path: str, at: str):
        # The seed's cite(path, ref): read the committed bytes and parse them
        # on every single call.
        return load_citation_bytes(repo.read_file_at(at, CITATION_FILE_PATH)).resolve(path)

    baseline_results = []

    def run_baseline():
        for i in range(num_calls):
            baseline_results.append(seed_cite(probes[i % len(probes)], ref))

    baseline_s = _timed(run_baseline)

    manager._parse_cache.clear()
    optimized_results = []

    def run_optimized():
        for i in range(num_calls):
            optimized_results.append(manager.cite(probes[i % len(probes)], ref))

    optimized_s = _timed(run_optimized)

    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": baseline_results == optimized_results,
        "calls": num_calls,
    }


def bench_incremental_write_tree(num_files: int = 800, rounds: int = 20) -> dict:
    """Tree materialisation per commit: full rebuild vs dirty-path reuse."""
    workload = generate_repository(WorkloadConfig(seed=71, num_files=num_files))
    repo = workload.repo
    baseline_s = 0.0
    optimized_s = 0.0
    identical = True
    for round_number in range(rounds):
        repo.write_file("/bench_probe.txt", f"revision {round_number}\n")
        repo.add()
        entries = repo.index.entries()
        start = time.perf_counter()
        full_oid = build_tree(repo.store, entries)
        baseline_s += time.perf_counter() - start
        start = time.perf_counter()
        incremental_oid = repo.index.write_tree(repo.store)
        optimized_s += time.perf_counter() - start
        identical = identical and full_oid == incremental_oid
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "files": num_files,
        "rounds": rounds,
    }


def bench_resolve_prefix(num_objects: int = 20000, num_resolves: int = 200) -> dict:
    """Abbreviated-id resolution: full scan vs the sorted-id bisect index."""
    store = ObjectStore()
    oids = [store.put(Blob(f"object {i}\n".encode())) for i in range(num_objects)]
    probes = [oid[:12] for oid in oids[:: max(1, num_objects // num_resolves)]][:num_resolves]

    def seed_resolve(prefix: str) -> str:
        matches = [oid for oid in oids if oid.startswith(prefix)]
        if len(matches) != 1:
            raise AssertionError(f"unexpected match count for {prefix!r}")
        return matches[0]

    baseline_results = []

    def run_baseline():
        for prefix in probes:
            baseline_results.append(seed_resolve(prefix))

    baseline_s = _timed(run_baseline)

    optimized_results = []

    def run_optimized():
        for prefix in probes:
            optimized_results.append(store.resolve_prefix(prefix))

    optimized_s = _timed(run_optimized)

    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": baseline_results == optimized_results,
        "objects": num_objects,
        "resolves": num_resolves,
    }


def bench_entries_under(num_files: int = 15000, num_queries: int = 300) -> dict:
    """Subtree queries on the citation function: full sort+scan vs bisect range."""
    rng = random.Random(5)
    paths = generate_tree_paths(rng, num_files, max_depth=6, branching=6)
    function, cited = generate_citation_function(random.Random(5), paths, density=0.3)
    directories = sorted({path_parent(p) for p in cited if path_parent(p) != ROOT})
    queries = directories[:: max(1, len(directories) // num_queries)][:num_queries]

    domain = function.active_domain()

    def seed_entries_under(prefix: str):
        selected = []
        for path in sorted(domain):
            if path == prefix or is_ancestor(prefix, path):
                selected.append(function.entry(path))
        return selected

    baseline_results = []

    def run_baseline():
        for prefix in queries:
            baseline_results.append([e.path for e in seed_entries_under(prefix)])

    baseline_s = _timed(run_baseline)

    optimized_results = []

    def run_optimized():
        for prefix in queries:
            optimized_results.append(
                [e.path for e in function.entries_under(prefix, include_prefix=True)]
            )

    optimized_s = _timed(run_optimized)

    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": baseline_results == optimized_results,
        "explicit_entries": len(function),
        "queries": len(queries),
    }


def bench_retro_directory_authors(num_files: int = 1500, num_authors: int = 60) -> dict:
    """Per-directory attribution: list membership scans vs ordered-set buckets."""
    rng = random.Random(11)
    paths = generate_tree_paths(rng, num_files, max_depth=5, branching=6)
    authors = [f"contributor-{i}" for i in range(num_authors)]
    index = AttributionIndex()
    for path in paths:
        attribution = FileAttribution(path=path)
        for author in rng.sample(authors, k=rng.randint(1, 12)):
            attribution.add_author(author)
        index.files[path] = attribution

    def seed_directory_authors() -> dict[str, list[str]]:
        directories: dict[str, list[str]] = {ROOT: []}
        for attribution in index.files.values():
            parent = path_parent(attribution.path)
            while True:
                bucket = directories.setdefault(parent, [])
                for author in attribution.authors:
                    if author not in bucket:
                        bucket.append(author)
                if parent == ROOT:
                    break
                parent = path_parent(parent)
        return directories

    holder: dict[str, dict] = {}
    baseline_s = _timed(lambda: holder.__setitem__("baseline", seed_directory_authors()))
    optimized_s = _timed(lambda: holder.__setitem__("optimized", index.directory_authors()))
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": holder["baseline"] == holder["optimized"],
        "files": num_files,
        "authors": num_authors,
    }


# ---------------------------------------------------------------------------
# Storage-backend scenarios (PR 2)
# ---------------------------------------------------------------------------

#: Every commit in the storage scenarios is pinned to one timestamp so the
#: three backends produce byte-identical histories (the identity check).
_STORAGE_STAMP = datetime(2018, 9, 1, 12, 0, 0, tzinfo=timezone.utc)
_STORAGE_KINDS = ("memory", "loose", "pack")


def _build_storage_repo(storage, num_files: int, num_commits: int) -> Repository:
    repo = Repository.init("bench", "alice", storage=storage)
    body = "".join(f"x{i} = {i}\n" for i in range(25))
    for i in range(num_files):
        repo.write_file(f"src/pkg{i % 20}/module_{i}.py", f"# module {i}\n{body}")
    repo.commit("initial", author_name="alice", timestamp=_STORAGE_STAMP)
    for round_number in range(num_commits):
        for slot in range(10):
            index = (round_number * 10 + slot) % num_files
            repo.write_file(
                f"src/pkg{index % 20}/module_{index}.py",
                f"# module {index} revision {round_number}\n{body}",
            )
        repo.commit(f"round {round_number}", author_name="alice", timestamp=_STORAGE_STAMP)
    return repo


def bench_storage_bulk_commit(num_files: int = 300, num_commits: int = 15) -> dict:
    """Bulk commits per backend: one file per object (loose) vs buffered packs.

    ``baseline_s`` is the loose layout (the natural on-disk design), and
    ``optimized_s`` the pack layout; the in-memory time is reported alongside
    as the floor.  All three must end on the identical head commit.
    """
    timings: dict[str, float] = {}
    heads: dict[str, str] = {}
    disk_bytes: dict[str, int] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for kind in _STORAGE_KINDS:
            storage = None if kind == "memory" else make_backend(kind, Path(tmp) / kind)
            holder: dict[str, Repository] = {}

            def run(storage=storage, holder=holder):
                repo = _build_storage_repo(storage, num_files, num_commits)
                repo.store.flush()
                holder["repo"] = repo

            timings[kind] = _timed(run)
            heads[kind] = holder["repo"].head_oid()
            stats = holder["repo"].store.backend.stats()
            disk_bytes[kind] = stats.get("disk_bytes", stats.get("payload_bytes", 0))
    return {
        "baseline_s": timings["loose"],
        "optimized_s": timings["pack"],
        "speedup": timings["loose"] / timings["pack"],
        "outputs_identical": len(set(heads.values())) == 1,
        "memory_s": timings["memory"],
        "loose_s": timings["loose"],
        "pack_s": timings["pack"],
        "disk_bytes": disk_bytes,
        "files": num_files,
        "commits": num_commits + 1,
    }


def bench_storage_cold_open(num_files: int = 250, num_commits: int = 40) -> dict:
    """Cold open of a saved working copy (load + full HEAD snapshot) per layout.

    ``baseline_s`` is the seed's format (every object embedded base64 in
    ``state.json``); ``optimized_s`` is the pack layout, which only touches
    the fanout indexes plus the objects the snapshot actually reads.
    """
    source = _build_storage_repo(None, num_files, num_commits)
    timings: dict[str, float] = {}
    snapshots: dict[str, dict] = {}
    heads: dict[str, str] = {}
    with tempfile.TemporaryDirectory() as tmp:
        for kind in _STORAGE_KINDS:
            directory = Path(tmp) / f"working-copy-{kind}"
            save_repository(clone_repository(source), directory, storage=kind)
            holder: dict[str, object] = {}

            def run(directory=directory, holder=holder):
                repo = load_repository(directory)
                holder["snapshot"] = repo.snapshot()
                holder["head"] = repo.head_oid()

            timings[kind] = _timed(run)
            snapshots[kind] = holder["snapshot"]
            heads[kind] = holder["head"]
    identical = (
        len(set(heads.values())) == 1
        and snapshots["memory"] == snapshots["loose"] == snapshots["pack"]
    )
    return {
        "baseline_s": timings["memory"],
        "optimized_s": timings["pack"],
        "speedup": timings["memory"] / timings["pack"],
        "outputs_identical": identical,
        "memory_s": timings["memory"],
        "loose_s": timings["loose"],
        "pack_s": timings["pack"],
        "files": num_files,
        "commits": num_commits + 1,
    }


# ---------------------------------------------------------------------------
# Indexed-worktree + multi-pack scenarios (PR 3)
# ---------------------------------------------------------------------------


def bench_commit_touch_one(num_files: int = 5000, rounds: int = 8) -> dict:
    """Commit after touching 1 file of ``num_files``: seed path vs O(changed).

    The seed scanned the whole worktree per ``write_file``, re-hashed every
    blob in ``add()`` and rebuilt every tree; the indexed worktree's
    fingerprint cache plus the incremental tree builder hash exactly the
    dirty file and its directory chain.  Both sides produce the identical
    commit chain (head oids compared).
    """
    stamp = _STORAGE_STAMP
    signature = Signature(name="alice", email="alice@example.org", timestamp=stamp)
    body = "".join(f"value_{i} = {i}\n" for i in range(120))

    def build() -> Repository:
        repo = Repository.init("bench", "alice")
        repo.write_files(
            {f"/src/pkg{i % 40}/module_{i}.py": f"# module {i}\n{body}" for i in range(num_files)}
        )
        repo.commit("initial", author=signature)
        return repo

    def touched(round_number: int) -> tuple[str, bytes]:
        index = round_number * 37 % num_files
        path = f"/src/pkg{index % 40}/module_{index}.py"
        return path, f"# module {index} touched {round_number}\n{body}".encode()

    baseline = build()

    def run_baseline():
        for round_number in range(rounds):
            path, payload = touched(round_number)
            # Seed write_file: O(n) invariant scan over every worktree path.
            for existing in baseline.worktree:
                if is_ancestor(path, existing) or is_ancestor(existing, path):
                    raise AssertionError("unexpected conflict")
            baseline.worktree[path] = payload
            # Seed add(): construct, hash and put every blob, every commit.
            entries = {
                p: (baseline.store.put(Blob(baseline.worktree[p])), MODE_FILE)
                for p in sorted(baseline.worktree)
            }
            baseline.index.replace(entries)
            # Seed write_tree: rebuild and re-hash every tree object.
            tree_oid = build_tree(baseline.store, entries)
            commit = Commit(
                tree_oid=tree_oid,
                parent_oids=(baseline.head_oid(),),
                author=signature,
                committer=signature,
                message=f"touch {round_number}",
            )
            baseline.refs.advance_head(baseline.store.put(commit))

    baseline_s = _timed(run_baseline)

    optimized = build()

    def run_optimized():
        for round_number in range(rounds):
            path, payload = touched(round_number)
            optimized.write_file(path, payload)
            optimized.commit(f"touch {round_number}", author=signature)

    optimized_s = _timed(run_optimized)

    identical = (
        baseline.head_oid() == optimized.head_oid()
        and baseline.snapshot() == optimized.snapshot()
    )
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "files": num_files,
        "commits": rounds,
    }


def bench_single_write_file(num_files: int = 2500, num_writes: int = 150) -> dict:
    """Single-file writes into a large worktree: O(n) scan vs indexed probes."""
    base_files = {
        f"/src/pkg{i % 30}/module_{i}.py": f"# module {i}\n".encode() for i in range(num_files)
    }

    def new_writes() -> list[tuple[str, bytes]]:
        return [
            (f"/src/pkg{i % 30}/new_{i}.py", f"# new {i}\n".encode())
            for i in range(num_writes)
        ]

    # Seed write_file against a plain dict (the faithful seed code path).
    seed_worktree = dict(base_files)

    def seed_write(path: str, payload: bytes) -> None:
        for existing in seed_worktree:
            if is_ancestor(path, existing):
                raise AssertionError(f"{path!r} is a directory")
            if is_ancestor(existing, path):
                raise AssertionError(f"{existing!r} is a file")
        seed_worktree[path] = payload

    def run_baseline():
        for path, payload in new_writes():
            seed_write(path, payload)

    baseline_s = _timed(run_baseline)

    repo = Repository.init("bench", "alice")
    repo.write_files(base_files)

    def run_optimized():
        for path, payload in new_writes():
            repo.write_file(path, payload)

    optimized_s = _timed(run_optimized)

    identical = dict(repo.worktree) == seed_worktree
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "files": num_files,
        "writes": num_writes,
    }


def bench_multipack_cold_open(
    num_packs: int = 16, objects_per_pack: int = 100, num_reads: int = 800, repeats: int = 5
) -> dict:
    """Cold-open reads as packs accumulate: per-pack probing vs the midx.

    ``baseline_s`` opens a 16-pack store the pre-midx way (load every pack's
    own index, probe packs one by one per lookup); ``optimized_s`` is the
    same store through the multi-pack index.  ``single_pack_s`` is the same
    object population repacked into one pack — the midx keeps the multi-pack
    open within a small factor of it (``ratio_multi_vs_single``).
    """
    payloads: list[tuple[str, bytes]] = []
    for i in range(num_packs * objects_per_pack):
        payload = (f"object {i}\n" + "filler " * (20 + i % 60)).encode()
        payloads.append((object_id("blob", payload), payload))

    def populate(root: Path, flush_every: int) -> None:
        backend = PackBackend(root)
        for position, (oid, payload) in enumerate(payloads, start=1):
            backend.write(oid, "blob", payload)
            if position % flush_every == 0:
                backend.flush()
        backend.close()

    # Repeat the probe list so lookup/open cost dominates over noise: the
    # whole cold-open is a handful of milliseconds.
    base_probe = [oid for oid, _ in payloads][:: max(1, len(payloads) // 200)][:200]
    probe = (base_probe * ((num_reads // len(base_probe)) + 1))[:num_reads]

    def cold_open(root: Path, use_midx: bool) -> list[bytes]:
        backend = PackBackend(root, use_midx=use_midx)
        contents = [backend.read(oid)[1] for oid in probe]
        backend.close()
        return contents

    with tempfile.TemporaryDirectory() as tmp:
        multi_root = Path(tmp) / "multi"
        single_root = Path(tmp) / "single"
        populate(multi_root, flush_every=objects_per_pack)
        populate(single_root, flush_every=len(payloads))
        variants = (
            ("baseline", multi_root, False),
            ("optimized", multi_root, True),
            ("single", single_root, True),
        )
        outputs: dict[str, list[bytes]] = {}
        timings: dict[str, float] = {key: float("inf") for key, _, _ in variants}
        # Interleaved best-of-N: each repeat measures all three variants
        # back to back, so background noise cannot bias one side, and the
        # minimum is the least-disturbed observation of each.
        for _ in range(repeats):
            for key, root, use_midx in variants:
                holder: dict[str, list[bytes]] = {}
                elapsed = _timed(
                    lambda r=root, m=use_midx: holder.__setitem__("out", cold_open(r, m))
                )
                timings[key] = min(timings[key], elapsed)
                outputs[key] = holder["out"]

    identical = outputs["baseline"] == outputs["optimized"] == outputs["single"]
    return {
        "baseline_s": timings["baseline"],
        "optimized_s": timings["optimized"],
        "speedup": timings["baseline"] / timings["optimized"],
        "outputs_identical": identical,
        "single_pack_s": timings["single"],
        "ratio_multi_vs_single": timings["optimized"] / timings["single"],
        "packs": num_packs,
        "objects": len(payloads),
        "reads": len(probe),
    }


def bench_checkout_switch(num_files: int = 5000, num_changed: int = 25, switches: int = 6) -> dict:
    """Branch switching on a 5k-file tree: eager blob loads vs the lazy view.

    The seed's ``_load_worktree`` called ``get_blob`` for every file of the
    target commit on each checkout; the lazy worktree installs oid-backed
    entries and reads a blob only when its path is first accessed.  Both
    sides perform ``switches`` checkouts between two versions differing in
    ``num_changed`` files and then read exactly the changed files — the
    realistic post-switch working set.  Blob reads are counted on both
    sides; full materialisation at the end must be byte-identical.
    """
    stamp = _STORAGE_STAMP
    signature = Signature(name="alice", email="alice@example.org", timestamp=stamp)
    body = "".join(f"value_{i} = {i}\n" for i in range(40))

    source = Repository.init("bench", "alice")
    source.write_files(
        {f"/src/pkg{i % 40}/module_{i}.py": f"# module {i}\n{body}" for i in range(num_files)}
    )
    base_oid = source.commit("base", author=signature)
    changed_paths = [
        f"/src/pkg{(i * 7) % 40}/module_{i * 7 % num_files}.py" for i in range(num_changed)
    ]
    source.write_files({path: f"# edited\n{body}" for path in changed_paths})
    tip_oid = source.commit("tip", author=signature)
    targets = (base_oid, tip_oid)

    def count_blob_reads(repo, counter):
        original_get_blob = repo.store.get_blob
        original_get_blobs = repo.store.get_blobs

        def counting_get_blob(oid):
            counter["n"] += 1
            return original_get_blob(oid)

        def counting_get_blobs(oids):
            blobs = original_get_blobs(oids)
            counter["n"] += len(blobs)
            return blobs

        repo.store.get_blob = counting_get_blob
        repo.store.get_blobs = counting_get_blobs

    from repro.vcs.treeops import flatten_files
    from repro.vcs.worktree_state import WorktreeState

    def eager_load(repo, commit_oid):
        # The seed's checkout load path: materialise every blob of the tree.
        repo.refs.detach_head(commit_oid)
        commit = repo.store.get_commit(commit_oid)
        files = flatten_files(repo.store, commit.tree_oid)
        state = WorktreeState()
        state.load_committed(
            (path, repo.store.get_blob(oid).data, oid) for path, (oid, _) in files.items()
        )
        repo._worktree = state
        repo.index.read_tree(repo.store, commit.tree_oid)
        repo._notify_worktree_reload()

    baseline = clone_repository(source)
    baseline_reads = {"n": 0}
    count_blob_reads(baseline, baseline_reads)

    def run_baseline():
        for i in range(switches):
            eager_load(baseline, targets[i % 2])
            for path in changed_paths:
                baseline.read_file(path)

    baseline_s = _timed(run_baseline)

    optimized = clone_repository(source)
    optimized_reads = {"n": 0}
    count_blob_reads(optimized, optimized_reads)

    def run_optimized():
        for i in range(switches):
            optimized.checkout(targets[i % 2])
            for path in changed_paths:
                optimized.read_file(path)

    optimized_s = _timed(run_optimized)
    # Snapshot the read counters before the identity check below: the full
    # materialisation it performs is verification, not part of the workload.
    baseline_read_count = baseline_reads["n"]
    optimized_read_count = optimized_reads["n"]

    # Identity: fully materialising the lazy view yields the eager bytes.
    identical = (
        dict(optimized.worktree.items()) == dict(baseline.worktree)
        and optimized.head_oid() == baseline.head_oid()
    )
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "baseline_blob_reads": baseline_read_count,
        "optimized_blob_reads": optimized_read_count,
        "blob_read_ratio": optimized_read_count / baseline_read_count,
        "files": num_files,
        "changed": num_changed,
        "switches": switches,
    }


# ---------------------------------------------------------------------------
# Sync-subsystem scenarios (PR 5)
# ---------------------------------------------------------------------------


def _seed_full_history_offer(store, tip) -> set[str]:
    """The seed's transfer planning: flatten every tree of every ancestor."""
    reachable: set[str] = set()
    for ancestor in commit_ancestors(store, tip):
        if ancestor in reachable:
            continue
        reachable.add(ancestor)
        commit = store.get_commit(ancestor)
        for _path, (oid, _mode) in flatten_tree(store, commit.tree_oid).items():
            reachable.add(oid)
    return reachable


def bench_push_incremental(num_files: int = 5000, history_commits: int = 50) -> dict:
    """Push 1 new commit on a 5k-file / 50-commit history: seed vs negotiated.

    The seed's push re-walked the *entire* commit history (flattening every
    ancestor tree) and offered every reachable object on each push; the sync
    subsystem negotiates haves/wants and moves a thin bundle of O(changed)
    objects.  Both remotes must end byte-identical.  The gated
    ``objects_transfer_ratio`` is offered-objects(optimized) /
    offered-objects(seed) — the ISSUE's <= 0.05 acceptance.
    """
    signature = Signature(name="alice", email="alice@example.org", timestamp=_STORAGE_STAMP)
    body = "".join(f"value_{i} = {i}\n" for i in range(40))
    source = Repository.init("bench", "alice")
    source.write_files(
        {f"/src/pkg{i % 40}/module_{i}.py": f"# module {i}\n{body}" for i in range(num_files)}
    )
    source.commit("initial", author=signature)
    for round_number in range(history_commits):
        source.write_files(
            {
                f"/src/pkg{(round_number * 10 + slot) % 40}/module_{(round_number * 10 + slot) % num_files}.py":
                    f"# revision {round_number}.{slot}\n{body}"
                for slot in range(10)
            }
        )
        source.commit(f"round {round_number}", author=signature)

    local = clone_repository(source)
    local.write_file("/src/pkg7/module_7.py", f"# the one new change\n{body}")
    tip = local.commit("feature", author=signature)
    remote_baseline = clone_repository(source)
    remote_optimized = clone_repository(source)
    holder: dict[str, int] = {}

    def run_baseline():
        offer = _seed_full_history_offer(local.store, tip)
        local.store.copy_objects_to(remote_baseline.store, offer)
        remote_baseline.refs.set_branch("main", tip)
        holder["baseline_offered"] = len(offer)

    baseline_s = _timed(run_baseline)

    def run_optimized():
        haves = common_tips(local.store, remote_optimized)
        data = create_bundle(local.store, [tip], haves=haves)
        result = apply_bundle(remote_optimized.store, data)
        remote_optimized.refs.set_branch("main", tip)
        holder["optimized_offered"] = result.objects_total
        holder["bundle_bytes"] = len(data)

    optimized_s = _timed(run_optimized)

    identical = (
        remote_baseline.head_oid() == remote_optimized.head_oid() == tip
        and remote_baseline.snapshot() == remote_optimized.snapshot()
    )
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "baseline_objects_offered": holder["baseline_offered"],
        "optimized_objects_offered": holder["optimized_offered"],
        "objects_transfer_ratio": holder["optimized_offered"] / holder["baseline_offered"],
        "bundle_bytes": holder["bundle_bytes"],
        "files": num_files,
        "history_commits": history_commits + 1,
    }


def bench_pull_after_divergence(num_files: int = 3000, new_commits: int = 5) -> dict:
    """Pull upstream commits into a locally diverged clone: seed vs negotiated.

    The local side has its own side-branch work (so its tip is unknown
    upstream) and upstream advanced ``new_commits`` on main.  The seed fetch
    re-offered every object reachable from upstream's tip; the negotiation
    walks back from the local tips to the shared base and transfers only the
    new commits' objects.
    """
    signature = Signature(name="alice", email="alice@example.org", timestamp=_STORAGE_STAMP)
    body = "".join(f"value_{i} = {i}\n" for i in range(40))
    upstream = Repository.init("bench", "alice")
    upstream.write_files(
        {f"/src/pkg{i % 30}/module_{i}.py": f"# module {i}\n{body}" for i in range(num_files)}
    )
    upstream.commit("initial", author=signature)

    def make_local() -> Repository:
        local = clone_repository(upstream)
        local.checkout("side", create_branch=True)
        local.write_file("/local/notes.txt", "diverged local work\n")
        local.commit("local side work", author=signature)
        local.checkout("main")
        return local

    local_baseline = make_local()
    local_optimized = make_local()
    for round_number in range(new_commits):
        upstream.write_file(
            f"/src/pkg{round_number % 30}/module_{round_number}.py",
            f"# upstream revision {round_number}\n{body}",
        )
        upstream.commit(f"upstream {round_number}", author=signature)
    upstream_tip = upstream.head_oid()
    holder: dict[str, int] = {}

    def run_baseline():
        offer = _seed_full_history_offer(upstream.store, upstream_tip)
        upstream.store.copy_objects_to(local_baseline.store, offer)
        local_baseline.refs.set_branch("main", upstream_tip)
        local_baseline.checkout("main")
        holder["baseline_offered"] = len(offer)

    baseline_s = _timed(run_baseline)

    def run_optimized():
        result = sync_objects(upstream, local_optimized, [upstream_tip])
        local_optimized.refs.set_branch("main", upstream_tip)
        local_optimized.checkout("main")
        holder["optimized_offered"] = result.objects_total

    optimized_s = _timed(run_optimized)

    identical = (
        local_baseline.head_oid() == local_optimized.head_oid() == upstream_tip
        and local_baseline.snapshot() == local_optimized.snapshot()
    )
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "baseline_objects_offered": holder["baseline_offered"],
        "optimized_objects_offered": holder["optimized_offered"],
        "objects_transfer_ratio": holder["optimized_offered"] / holder["baseline_offered"],
        "files": num_files,
        "new_commits": new_commits,
    }


# ---------------------------------------------------------------------------
# Durability scenarios (PR 6)
# ---------------------------------------------------------------------------


def bench_fsck(num_files: int = 5000, history_commits: int = 6) -> dict:
    """Full-integrity audit of a 5k-file pack store: random access vs fsck.

    Before ``gitcite fsck`` existed, auditing a working copy meant the only
    read path available: open the backend, random-access read every oid and
    re-hash it, then walk the ref graph object by object to prove
    connectivity — every record paying an index lookup, a seek and a header
    parse, and every commit/tree read a second time by the walk.
    ``fsck_working_copy`` replaces that with one sequential tolerant pass
    per pack (each byte read once, payloads kept for the graph walk) and is
    the recovery path, so it must stay fast enough to run routinely.  Both
    sides verify the same object set and reach the same reachable set.
    """
    signature = Signature(name="alice", email="alice@example.org", timestamp=_STORAGE_STAMP)
    body = "".join(f"x{i} = {i}\n" for i in range(25))
    source = Repository.init("bench", "alice")
    source.write_files(
        {f"/src/pkg{i % 20}/module_{i}.py": f"# module {i}\n{body}" for i in range(num_files)}
    )
    source.commit("initial", author=signature)
    for round_number in range(history_commits):
        for slot in range(10):
            index = (round_number * 10 + slot) % num_files
            source.write_file(
                f"/src/pkg{index % 20}/module_{index}.py",
                f"# module {index} revision {round_number}\n{body}",
            )
        source.commit(f"round {round_number}", author=signature)

    holder: dict[str, object] = {}
    with tempfile.TemporaryDirectory() as tmp:
        working_copy = Path(tmp) / "working-copy"
        save_repository(clone_repository(source), working_copy, storage="pack")
        state = stable_loads(
            (working_copy / ".gitcite" / "state.json").read_text(encoding="utf-8")
        )
        tips = [oid for oid in (state.get("branches") or {}).values()]

        def run_baseline():
            backend = PackBackend(working_copy / ".gitcite" / "pack")
            verified: set[str] = set()
            for oid in sorted(backend.iter_oids()):
                type_name, payload = backend.read(oid)
                if object_id(type_name, payload) == oid:
                    verified.add(oid)
            # Connectivity: DFS from every ref tip through the read path.
            reachable: set[str] = set()
            frontier = [tip for tip in tips]
            while frontier:
                oid = frontier.pop()
                if oid in reachable:
                    continue
                reachable.add(oid)
                type_name, payload = backend.read(oid)
                obj = deserialize_object(type_name, payload)
                if type_name == "commit":
                    frontier.append(obj.tree_oid)
                    frontier.extend(obj.parent_oids)
                elif type_name == "tree":
                    frontier.extend(entry.oid for entry in obj.entries)
            backend.close()
            holder["baseline_verified"] = verified
            holder["baseline_reachable"] = reachable

        baseline_s = _timed(run_baseline)

        def run_optimized():
            holder["report"] = fsck_working_copy(working_copy)

        optimized_s = _timed(run_optimized)

    report = holder["report"]
    verified = holder["baseline_verified"]
    reachable = holder["baseline_reachable"]
    identical = (
        report.ok
        and report.objects_checked == len(verified)
        and reachable <= verified
        and not report.unrecoverable
    )
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "objects_audited": report.objects_checked,
        "files": num_files,
        "commits": history_commits + 1,
    }


# ---------------------------------------------------------------------------
# Concurrency scenario (PR 7)
# ---------------------------------------------------------------------------


def bench_concurrent_push_pull(clients: int = 8, rounds: int = 3) -> dict:
    """N clients race fast-forward pushes over a real TCP socket.

    Unlike the other scenarios this one is gated on *correctness*, not
    wall-clock: the CI floor is ``lost_updates == 0`` — once the hub returns
    2xx for a push, that commit must remain reachable from the final branch
    tip no matter how many other clients were racing it.  The baseline runs
    the identical client workload sequentially (the only safe schedule before
    the hub was concurrency-safe); the optimized side runs all clients in
    threads against a live :class:`~repro.hub.httpd.HubHttpServer`.  The
    speedup floor is deliberately tiny: threaded Python over HTTP is about
    overlap under the GIL, and the point of the scenario is the invariant.
    """

    def build_hub() -> tuple[HostingPlatform, str]:
        repo = Repository.init("contended", "alice")
        repo.write_file("README.md", "contended repo\n")
        repo.commit("initial", author_name="alice")
        platform = HostingPlatform(rate_limiter=RateLimiter(enabled=False))
        platform.host_repository(repo)
        return platform, platform.issue_token("alice").value

    def client_workload(url: str, token: str, index: int) -> list[str]:
        wire = HttpTransport(url, timeout=30)
        api = RetryingApi(wire, RetryPolicy(max_attempts=3, base_delay=0.0, jitter=0.0))
        remote = HubRemote(api, "alice/contended", token=token)
        local = remote.clone()
        acknowledged: list[str] = []
        for round_number in range(rounds):
            for _attempt in range(64):
                try:
                    tip = remote.fetch_branch(local, "main")
                    local.refs.set_branch("main", tip)
                    local.checkout("main")
                    local.write_file(f"client-{index}.txt", f"round {round_number}\n")
                    oid = local.commit(
                        f"client {index} round {round_number}",
                        author_name=f"client-{index}",
                    )
                    remote.push(local, "main")
                except (ValidationError, RemoteError):
                    continue  # lost the race loudly (422); rebase and go again
                acknowledged.append(oid)
                break
            else:
                raise RuntimeError(f"client {index} starved after 64 attempts")
        return acknowledged

    def audit(platform: HostingPlatform, acknowledged: list[str]) -> int:
        hosted = platform.repositories["alice/contended"].repo
        final_tip = hosted.refs.branch_target("main")
        return sum(
            1
            for oid in acknowledged
            if not is_ancestor_commit(hosted.store, oid, final_tip)
        )

    # Baseline: the same client workload, one client at a time over the wire.
    baseline_platform, baseline_token = build_hub()
    baseline_acknowledged: list[str] = []
    with HubHttpServer(RestApi(baseline_platform)) as server:
        url = server.url

        def run_baseline():
            for index in range(clients):
                baseline_acknowledged.extend(client_workload(url, baseline_token, index))

        baseline_s = _timed(run_baseline)
    baseline_lost = audit(baseline_platform, baseline_acknowledged)

    # Optimized: every client is a thread hammering the same live server.
    optimized_platform, optimized_token = build_hub()
    optimized_acknowledged: list[str] = []
    failures: list[BaseException] = []
    lock = threading.Lock()
    with HubHttpServer(RestApi(optimized_platform)) as server:
        url = server.url

        def client_thread(index: int) -> None:
            try:
                acked = client_workload(url, optimized_token, index)
            except BaseException as exc:  # surfaced after the join below
                with lock:
                    failures.append(exc)
                return
            with lock:
                optimized_acknowledged.extend(acked)

        def run_optimized():
            threads = [
                threading.Thread(target=client_thread, args=(index,))
                for index in range(clients)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()

        optimized_s = _timed(run_optimized)
    if failures:
        raise failures[0]
    optimized_lost = audit(optimized_platform, optimized_acknowledged)

    expected = clients * rounds
    identical = (
        len(baseline_acknowledged) == expected
        and len(optimized_acknowledged) == expected
        and baseline_lost == 0
        and optimized_lost == 0
    )
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "clients": clients,
        "rounds": rounds,
        "pushes_acknowledged": len(optimized_acknowledged),
        "lost_updates": optimized_lost,
    }


def bench_serve_durable_push(pushes: int = 40, flush_every: int = 8) -> dict:
    """Write-ahead journalled pushes over a live socket, plus a crash audit.

    PR 8 makes ``gitcite serve`` persist every acknowledged push to a
    write-ahead journal before the 2xx leaves the socket.  Durability is not
    free — the question this scenario answers is *how much* it costs and
    whether the contract actually holds:

    * **baseline** — the seed's serving path: a push storm over a live
      :class:`~repro.hub.httpd.HubHttpServer` with no journal attached
      (acknowledgements live only in memory until a clean shutdown).
    * **optimized** — the same storm with a write-behind
      :class:`~repro.hub.durability.PushJournal` attached (fsync every
      ``flush_every`` records).  The CI floor is a *ratio*, not a speedup:
      journalled serving must stay within 2x of journal-free serving
      (``min_speedup: 0.5``).
    * **crash audit** — a third storm in fully durable mode (fsync per
      append), after which the server state is abandoned exactly as a
      ``kill -9`` would leave it: no save, no drain.  Startup recovery
      replays the journal onto the last checkpoint and the scenario counts
      ``lost_acknowledged`` — acknowledged pushes missing after recovery.
      The CI floor is **zero**.
    """
    slug = "alice/durable"

    def build_root(base: Path, name: str) -> Path:
        root = base / name
        repo = Repository.init("durable", "alice")
        repo.write_file("README.md", "durable bench\n")
        repo.commit("initial", author_name="alice")
        save_repository(repo, root)
        return root

    def hosted(root: Path, journal: PushJournal | None):
        platform = HostingPlatform(rate_limiter=RateLimiter(enabled=False))
        platform.host_repository(load_repository(root))
        if journal is not None:
            platform.attach_journal(slug, journal)
        return platform, platform.issue_token("alice").value

    def push_storm(url: str, token: str) -> list[str]:
        wire = HttpTransport(url, timeout=30)
        remote = HubRemote(wire, slug, token=token)
        local = remote.clone()
        acknowledged: list[str] = []
        for index in range(pushes):
            local.write_file(f"push-{index}.txt", f"payload {index}\n")
            tip = local.commit(f"push {index}", author_name="alice")
            remote.push(local)
            acknowledged.append(tip)
        return acknowledged

    with tempfile.TemporaryDirectory(prefix="bench-durable-") as tmp:
        base = Path(tmp)

        # Baseline: no journal — the pre-PR-8 serving path.
        root = build_root(base, "baseline")
        platform, token = hosted(root, journal=None)
        baseline_acked: list[str] = []
        with HubHttpServer(RestApi(platform)) as server:
            url = server.url
            baseline_s = _timed(lambda: baseline_acked.extend(push_storm(url, token)))

        # Optimized: write-behind journal — batched fsyncs on the ack path.
        root = build_root(base, "write-behind")
        with PushJournal(journal_path(root), durable=False, flush_every=flush_every) as journal:
            platform, token = hosted(root, journal)
            behind_acked: list[str] = []
            with HubHttpServer(RestApi(platform)) as server:
                url = server.url
                optimized_s = _timed(lambda: behind_acked.extend(push_storm(url, token)))
            journal.flush()

        # Crash audit: durable mode, then die without saving and recover.
        root = build_root(base, "durable")
        journal = PushJournal(journal_path(root), durable=True)
        platform, token = hosted(root, journal)
        with HubHttpServer(RestApi(platform)) as server:
            url = server.url
            durable_acked = push_storm(url, token)
        journal.close()  # kill -9: the platform's in-memory state is gone
        del platform

        survivor, recovery = recover_working_copy(root)
        final_tip = survivor.refs.branch_target("main")
        lost = sum(
            1
            for oid in durable_acked
            if not is_ancestor_commit(survivor.store, oid, final_tip)
        )

    identical = (
        len(baseline_acked) == pushes
        and len(behind_acked) == pushes
        and len(durable_acked) == pushes
        and final_tip == durable_acked[-1]
        and not recovery.degraded
    )
    return {
        "baseline_s": baseline_s,
        "optimized_s": optimized_s,
        "speedup": baseline_s / optimized_s,
        "outputs_identical": identical,
        "pushes": pushes,
        "flush_every": flush_every,
        "journal_records_replayed": recovery.records_replayed,
        "lost_acknowledged": lost,
    }


SCENARIOS = {
    "bulk_addcite_1k": bench_bulk_addcite,
    "repeated_cite_at_ref": bench_cite_at_ref,
    "incremental_write_tree": bench_incremental_write_tree,
    "resolve_prefix": bench_resolve_prefix,
    "entries_under": bench_entries_under,
    "retro_directory_authors": bench_retro_directory_authors,
    "storage_bulk_commit": bench_storage_bulk_commit,
    "storage_cold_open": bench_storage_cold_open,
    "commit_touch_one_of_5k": bench_commit_touch_one,
    "single_write_file_scaling": bench_single_write_file,
    "multipack_cold_open": bench_multipack_cold_open,
    "checkout_5k_switch": bench_checkout_switch,
    "push_incremental_5k": bench_push_incremental,
    "pull_after_divergence": bench_pull_after_divergence,
    "fsck_5k": bench_fsck,
    "concurrent_push_pull": bench_concurrent_push_pull,
    "serve_durable_push": bench_serve_durable_push,
}


# ---------------------------------------------------------------------------
# Runner
# ---------------------------------------------------------------------------


def run_scenarios(names: list[str] | None = None) -> dict:
    set_clock(FixedClock(datetime(2018, 9, 1, 12, 0, 0, tzinfo=timezone.utc), step_seconds=60))
    try:
        results: dict[str, dict] = {}
        for name, scenario in SCENARIOS.items():
            if names and name not in names:
                continue
            print(f"running {name} ...", flush=True)
            results[name] = scenario()
            entry = results[name]
            print(
                f"  baseline {entry['baseline_s'] * 1e3:8.1f} ms   "
                f"optimized {entry['optimized_s'] * 1e3:8.1f} ms   "
                f"speedup {entry['speedup']:6.1f}x   "
                f"identical={entry['outputs_identical']}"
            )
    finally:
        reset_clock()
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", type=Path, default=DEFAULT_OUTPUT, help="where to write the JSON results"
    )
    parser.add_argument(
        "--scenario",
        action="append",
        choices=sorted(SCENARIOS),
        help="run only this scenario (repeatable)",
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="also run the pytest-benchmark suite (slow; records its exit code)",
    )
    args = parser.parse_args(argv)

    results = run_scenarios(args.scenario)
    payload = {
        "schema": 1,
        "generated_at": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "python": sys.version.split()[0],
        "results": results,
    }

    if args.full:
        print("running pytest-benchmark suite ...", flush=True)
        completed = subprocess.run(
            [sys.executable, "-m", "pytest", str(_REPO_ROOT / "benchmarks"), "--benchmark-only", "-q"],
            cwd=_REPO_ROOT,
            env={**__import__("os").environ, "PYTHONPATH": str(_REPO_ROOT / "src")},
        )
        payload["pytest_benchmark_exit_code"] = completed.returncode

    args.output.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8")
    print(f"\nwrote {args.output}")

    failed = [name for name, entry in results.items() if not entry["outputs_identical"]]
    if failed:
        print(f"ERROR: scenarios with diverging outputs: {failed}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
