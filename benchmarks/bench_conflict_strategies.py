"""EXTRA-CONFLICT-ABLATION: conflict-resolution strategies beyond union-and-ask.

Section 5 lists richer conflict resolution (e.g. mirroring Git's three-way
merge) as future work.  This ablation compares the paper's baseline (ask the
user — i.e. nothing auto-resolved) against the implemented strategies on a
workload with a known oracle: conflicts are constructed so that exactly one
side matches the "correct" citation (the most recent one, as a proxy for the
value a user would pick).
"""

from __future__ import annotations

import random
import time

from conftest import print_table

from repro.citation.conflict import (
    AskUserStrategy,
    FieldMergeStrategy,
    NewestStrategy,
    OursStrategy,
    TheirsStrategy,
    ThreeWayStrategy,
)
from repro.citation.function import CitationFunction
from repro.citation.merge import merge_citation_functions
from repro.workloads.generator import generate_citation

NUM_CONFLICTS = 300


def _build_conflicting_functions(seed: int = 9):
    """Two branches with NUM_CONFLICTS conflicting keys and a known oracle.

    For each key the *newer* citation is the oracle; whether the newer one is
    on ours or theirs alternates, and for one third of the keys only one side
    changed relative to the base (so base-aware strategies can win).
    """
    rng = random.Random(seed)
    root = generate_citation(rng, repo_name="shared")
    base = CitationFunction.with_root(root)
    ours = CitationFunction.with_root(root)
    theirs = CitationFunction.with_root(root)
    oracle = {}
    for index in range(NUM_CONFLICTS):
        path = f"/module{index % 20}/file{index}.py"
        old = generate_citation(rng, repo_name="shared").with_changes(version="old")
        new = old.with_changes(version="new", committed_date=old.committed_date.replace(year=2019))
        base.put(path, old, False)
        one_sided = index % 3 == 0
        if index % 2 == 0:
            ours.put(path, new, False)
            theirs.put(path, old if one_sided else old.with_changes(version="other"), False)
        else:
            theirs.put(path, new, False)
            ours.put(path, old if one_sided else old.with_changes(version="other"), False)
        oracle[path] = new
    return base, ours, theirs, oracle


STRATEGIES = {
    "ask (paper baseline)": AskUserStrategy(),
    "ours": OursStrategy(),
    "theirs": TheirsStrategy(),
    "newest": NewestStrategy(),
    "three-way (+newest)": ThreeWayStrategy(fallback=NewestStrategy()),
    "field-merge": FieldMergeStrategy(),
}


def test_conflict_strategy_ablation_table(benchmark):
    """Auto-resolution rate and oracle accuracy per strategy."""
    base, ours, theirs, oracle = _build_conflicting_functions()
    rows = []
    for name, strategy in STRATEGIES.items():
        start = time.perf_counter()
        result = merge_citation_functions(ours, theirs, base=base, strategy=strategy)
        elapsed_ms = (time.perf_counter() - start) * 1e3
        resolved = [r for r in result.resolutions if r.resolved]
        correct = sum(1 for r in resolved if r.citation == oracle[r.path])
        rows.append(
            [
                name,
                len(result.conflicts),
                len(resolved),
                len(result.unresolved),
                f"{(correct / len(oracle)) * 100:.0f}%",
                f"{elapsed_ms:.1f}",
            ]
        )
    print_table(
        "EXTRA-CONFLICT-ABLATION — resolution strategies on a 300-conflict merge",
        ["strategy", "conflicts", "auto-resolved", "left to user", "oracle accuracy", "ms"],
        rows,
    )
    baseline = rows[0]
    assert baseline[2] == 0 and baseline[3] == NUM_CONFLICTS  # ask resolves nothing by itself
    newest_row = [row for row in rows if row[0] == "newest"][0]
    assert newest_row[4] == "100%"  # the oracle is "newest", so this strategy is exact


def test_newest_strategy_merge_cost(benchmark):
    """Time a full conflict-heavy union with the newest strategy."""
    base, ours, theirs, _ = _build_conflicting_functions()

    def merge():
        return merge_citation_functions(ours, theirs, base=base, strategy=NewestStrategy())

    result = benchmark(merge)
    assert not result.has_unresolved


def test_three_way_strategy_merge_cost(benchmark):
    """Time the same union with the base-aware three-way strategy."""
    base, ours, theirs, _ = _build_conflicting_functions()

    def merge():
        return merge_citation_functions(
            ours, theirs, base=base, strategy=ThreeWayStrategy(fallback=NewestStrategy())
        )

    result = benchmark(merge)
    assert not result.has_unresolved
