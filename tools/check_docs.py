"""Back-compat shim: the docs gate now lives in the analysis engine.

The coverage and link checks moved into ``repro.analysis.docs`` as the
``docs-consistency`` rule of ``gitcite analyze``, so CI runs one analysis
entry point for every static invariant.  This script survives for muscle
memory and old CI configs; it simply runs that one rule.

Usage::

    python tools/check_docs.py          # exit 0 ok, 1 with violations listed
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent


def main() -> int:
    sys.path.insert(0, str(_REPO_ROOT / "src"))
    from repro.analysis import run_analysis
    from repro.analysis.core import BASELINE_PATH

    result = run_analysis(
        _REPO_ROOT, rules=["docs-consistency"], baseline=_REPO_ROOT / BASELINE_PATH
    )
    if result.findings:
        print("DOCS CHECK FAILED:", file=sys.stderr)
        for finding in result.findings:
            print(f"  - {finding.render()}", file=sys.stderr)
        return 1
    print("docs check passed (docs-consistency rule clean)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
