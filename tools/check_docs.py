"""The CI docs gate: keep the reference docs consistent with the tree.

Two checks, both cheap and deliberately dumb:

1. **Coverage** — every package under ``src/repro/`` (and every
   top-level cross-cutting module) must be mentioned in
   ``docs/ARCHITECTURE.md``, so the layer map cannot silently rot as
   subsystems are added.
2. **Links** — every relative markdown link in ``README.md`` and
   ``docs/*.md`` must resolve to a real file (anchors are stripped;
   ``http(s):``/``mailto:`` links are skipped), so a renamed or deleted
   doc fails CI instead of 404ing readers.

Usage::

    python tools/check_docs.py          # exit 0 ok, 1 with violations listed
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
_ARCHITECTURE = _REPO_ROOT / "docs" / "ARCHITECTURE.md"

_LINK_PATTERN = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_EXTERNAL_PREFIXES = ("http://", "https://", "mailto:")


def _repro_packages() -> list[str]:
    """Package directories and top-level modules under ``src/repro``."""
    root = _REPO_ROOT / "src" / "repro"
    names: list[str] = []
    for entry in sorted(root.iterdir()):
        if entry.is_dir() and (entry / "__init__.py").exists():
            names.append(entry.name)
        elif entry.suffix == ".py" and entry.name != "__init__.py":
            names.append(entry.stem)
    return names


def check_architecture_coverage() -> list[str]:
    if not _ARCHITECTURE.exists():
        return [f"{_ARCHITECTURE.relative_to(_REPO_ROOT)}: missing"]
    text = _ARCHITECTURE.read_text(encoding="utf-8")
    violations = []
    for name in _repro_packages():
        if f"repro.{name}" not in text and name not in text:
            violations.append(
                f"docs/ARCHITECTURE.md: package repro.{name} is not mentioned"
            )
    return violations


def _doc_files() -> list[Path]:
    files = [_REPO_ROOT / "README.md"]
    docs = _REPO_ROOT / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.glob("*.md")))
    return [path for path in files if path.exists()]


def check_links() -> list[str]:
    violations = []
    for doc in _doc_files():
        text = doc.read_text(encoding="utf-8")
        for match in _LINK_PATTERN.finditer(text):
            target = match.group(1)
            if target.startswith(_EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path = target.split("#", 1)[0]
            if not path:
                continue
            resolved = (doc.parent / path).resolve()
            if not resolved.exists():
                violations.append(
                    f"{doc.relative_to(_REPO_ROOT)}: broken link {target!r}"
                )
    return violations


def main() -> int:
    violations = check_architecture_coverage() + check_links()
    if violations:
        print("DOCS CHECK FAILED:", file=sys.stderr)
        for violation in violations:
            print(f"  - {violation}", file=sys.stderr)
        return 1
    packages = ", ".join(_repro_packages())
    print(f"docs check passed ({len(_doc_files())} file(s); packages: {packages})")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
