"""An interactive-style walkthrough of the GitCite browser extension (Figure 2).

Run with::

    python examples/browser_extension_session.py

Hosts the demonstration repository on the simulated platform, then shows the
popup as seen by (a) an outside researcher who only wants a citation to paste
into their bibliography manager, and (b) the project owner who attaches,
modifies and deletes citations — including the permission checks that stop
non-members from editing the citation file.
"""

from __future__ import annotations

from repro.errors import PermissionDeniedError
from repro.extension.client import ExtensionClient
from repro.extension.popup import PopupSession
from repro.workloads.scenarios import build_extension_scenario


def show(view) -> None:
    for line in view.as_lines():
        print("   " + line)
    print()


def main() -> None:
    scenario = build_extension_scenario()
    print(f"Hosted repository: {scenario.slug} on the simulated platform\n")

    # ----------------------------------------------------------------- reader
    print("=== 1. An outside researcher (not a project member) ===")
    reader = PopupSession(ExtensionClient(scenario.api))
    reader.sign_in(scenario.non_member_token)
    reader.open_repository(scenario.slug)
    print(" The researcher clicks on the imported CoreCover code:")
    show(reader.select_node("/CoreCover/corecover.py"))
    print(" The citation is generated immediately and can be copy-pasted;")
    print(" the Add/Delete buttons are disabled because they are not a member.\n")

    try:
        reader.client.delete_citation(scenario.slug, "/CoreCover")
    except PermissionDeniedError as exc:
        print(f" Attempting to delete anyway is rejected by the platform: {exc}\n")

    # ----------------------------------------------------------------- member
    print("=== 2. The project owner (a member) ===")
    owner = PopupSession(ExtensionClient(scenario.api))
    owner.sign_in(scenario.member_token)
    owner.open_repository(scenario.slug)

    print(" Clicking the GUI directory shows its explicit citation (editable):")
    show(owner.select_node("/citation/GUI"))

    print(" Clicking an uncited file shows an empty box; the owner presses")
    print(" 'Generate Citation' to start from the closest ancestor's citation,")
    print(" then presses Add:")
    show(owner.select_node("/schema/eagle_i.sql"))
    owner.press_generate()
    commit = owner.press_add()
    print(f" -> the extension committed the updated citation.cite as {commit[:7]}\n")
    show(owner.select_node("/schema/eagle_i.sql"))

    print(" Finally the owner deletes that citation again:")
    owner.press_delete()
    show(owner.select_node("/schema/eagle_i.sql"))

    hosted = scenario.platform.get_repository(scenario.slug)
    print("Most recent commits on the hosted repository (made by the extension):")
    for info in hosted.repo.log(limit=4):
        print(f"  {info.oid[:7]}  {info.summary}")


if __name__ == "__main__":
    main()
