"""The paper's Figure 1 running example, replayed step by step.

Run with::

    python examples/running_example.py

Builds projects P1 and P2, applies AddCite, CopyCite and MergeCite exactly as
the right half of Figure 1 describes, and prints the citation of each node
before and after every operation so the C1/C2/C3/C4 values can be followed.
"""

from __future__ import annotations

from repro.workloads.scenarios import build_running_example


def main() -> None:
    example = build_running_example()
    labels = {example.c1: "C1", example.c2: "C2", example.c3: "C3", example.c4: "C4"}

    def show(title: str, manager, ref: str, paths: list[str]) -> None:
        print(f"\n-- {title} --")
        for path in paths:
            resolved = manager.cite(path, ref=ref)
            label = labels.get(resolved.citation, "?")
            marker = "explicit" if resolved.is_explicit else f"inherited from {resolved.source_path}"
            print(f"  Cite({path:<18}) = {label}   [{marker}]")

    print("Project P1 owned by Leshang; project P2 owned by Susan.")
    show("V1 of P1: only the root citation C1 exists", example.manager_p1, example.v1,
         ["/", "/f1.py", "/lib/util.py"])
    show("V2 of P1: AddCite attached C2 to f1", example.manager_p1, example.v2,
         ["/f1.py", "/lib/util.py"])
    show("V3 of P2: root cited C3, green subtree cited C4", example.manager_p2, example.v3,
         ["/", "/green", "/green/f2.py"])
    show("V4 of P1: CopyCite brought the green subtree (f2 still resolves to C4)",
         example.manager_p1, example.v4, ["/green", "/green/f2.py", "/f1.py"])
    show("V5 of P1: MergeCite of V2 and V4 (union of both citation functions)",
         example.manager_p1, example.v5, ["/f1.py", "/green/f2.py", "/lib/io.py"])

    result = example.merge_outcome.citation_result
    print(f"\nMergeCite reported {len(result.conflicts)} conflict(s) "
          f"and dropped {len(result.dropped_paths)} orphaned entr(y/ies) — "
          "the example merges cleanly, as in the paper.")
    print("\nFinal citation.cite of V5:")
    print(example.p1.read_file_at(example.v5, "/citation.cite").decode())


if __name__ == "__main__":
    main()
