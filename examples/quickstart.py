"""Quickstart: citation-enable a project and generate citations for its files.

Run with::

    python examples/quickstart.py

The script builds a small in-memory repository, enables GitCite citations,
attaches a citation to an imported module, and prints the citations a user
would obtain for several paths (including BibTeX and CITATION.cff renderings).
"""

from __future__ import annotations

from repro.citation import CitationManager
from repro.formats import render
from repro.vcs import Repository


def main() -> None:
    # 1. An ordinary project repository (this would normally be your checkout).
    repo = Repository.init("orbit-sim", "alice", description="A small orbital mechanics simulator")
    repo.write_file("src/integrator.py", "def step(state, dt):\n    return state\n")
    repo.write_file("src/vendored/kepler.py", "# solver imported from Bob's toolkit\n")
    repo.write_file("docs/usage.md", "# Usage\n")
    repo.commit("initial import")

    # 2. Citation-enable it: citation.cite is created with a default root citation.
    citations = CitationManager(repo)
    citations.init_citations(citations.default_root_citation(authors=["Alice Smith"]))
    citations.commit("enable citations")

    # 3. Credit the vendored solver to its actual author (AddCite).
    kepler_citation = citations.default_root_citation(
        authors=["Bob Jones"],
        title="Kepler equation solver",
    ).with_changes(repo_name="kepler-toolkit", owner="bob", url="https://github.com/bob/kepler-toolkit")
    citations.add_cite("/src/vendored/kepler.py", kepler_citation)
    citations.commit("AddCite for the vendored Kepler solver")

    # 4. Generate citations (GenCite): explicit where attached, inherited elsewhere.
    print("== Who gets credit for each file ==")
    for path in ("/src/integrator.py", "/src/vendored/kepler.py", "/docs/usage.md"):
        resolved = citations.cite(path)
        origin = "explicit" if resolved.is_explicit else f"inherited from {resolved.source_path}"
        print(f"{path:<30} -> {resolved.citation.primary_author:<12} ({origin})")

    # 5. Export ready-to-paste bibliography entries.
    print("\n== BibTeX for the vendored solver ==")
    print(render(citations.cite("/src/vendored/kepler.py").citation, "bibtex",
                 cited_path="/src/vendored/kepler.py"))
    print("== CITATION.cff for the whole project ==")
    print(render(citations.cite("/").citation, "cff"))


if __name__ == "__main__":
    main()
