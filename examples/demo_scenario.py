"""The Section 4 demonstration scenario: the CiteDB repository and Listing 1.

Run with::

    python examples/demo_scenario.py

Recreates Yinjun Wu's ``Data_citation_demo`` (CiteDB) repository: the
CoreCover code imported from Chen Li's repository with CopyCite, the GUI
developed by the student Yanssie on a branch and merged back with MergeCite.
Prints the final ``citation.cite`` (the paper's Listing 1) and compares every
field against the values printed in the paper.
"""

from __future__ import annotations

import json

from repro.formats import render
from repro.workloads.scenarios import LISTING1_EXPECTED_ENTRIES, build_demo_scenario


def main() -> None:
    scenario = build_demo_scenario()

    print("History of the demonstration repository (newest first):")
    for info in scenario.citedb.log():
        merge_marker = " (merge)" if info.commit.is_merge else ""
        print(f"  {info.oid[:7]}  {info.commit.author.name:<12} {info.summary}{merge_marker}")

    print("\nFinal citation.cite (compare with Listing 1 of the paper):")
    print(scenario.citation_file_text)

    payload = json.loads(scenario.citation_file_text)
    print("Field-by-field comparison with Listing 1:")
    mismatches = 0
    for key, expected in LISTING1_EXPECTED_ENTRIES.items():
        for field, value in expected.items():
            actual = payload.get(key, {}).get(field)
            status = "OK" if actual == value else "MISMATCH"
            mismatches += status != "OK"
            print(f"  {key:<18} {field:<14} paper={value!r:<55} measured={actual!r}  [{status}]")
    print(f"\n{mismatches} mismatching field(s).")

    print("\nWho gets credit when citing individual components:")
    for path in ("/CoreCover/corecover.py", "/citation/GUI/main_window.py", "/citation/query_processor.py"):
        resolved = scenario.manager.cite(path)
        print(f"  {path:<35} -> {', '.join(resolved.citation.authors)}"
              f"  (from {resolved.source_path})")

    print("\nAPA rendering of the CoreCover citation:")
    print(render(scenario.manager.cite("/CoreCover").citation, "apa", cited_path="/CoreCover"))


if __name__ == "__main__":
    main()
