"""A full collaboration tour: fork, copy, merge, release with a DOI, retro-cite.

Run with::

    python examples/team_collaboration.py

This example exercises the parts of GitCite that go beyond a single user:

1. a research group citation-enables their analysis pipeline;
2. CopyCite imports a solver from another group's repository, keeping credit;
3. a student's branch is merged with MergeCite (with a citation conflict
   resolved by the three-way strategy);
4. the release is archived on the simulated Zenodo, and the minted DOI flows
   back into the root citation;
5. ForkCite gives a collaborator their own credited fork;
6. a legacy repository without citations is retro-cited from its history.
"""

from __future__ import annotations

from repro.archive.zenodo import ZenodoSimulator
from repro.citation import CitationManager
from repro.citation.conflict import NewestStrategy, ThreeWayStrategy
from repro.citation.retro import retrofit
from repro.formats import render
from repro.vcs import Repository


def build_solver_repo() -> Repository:
    solver = Repository.init("fast-solver", "numerics-lab", description="Sparse solver library")
    solver.write_file("solver/cg.py", "def conjugate_gradient(A, b):\n    return b\n")
    solver.write_file("solver/precond.py", "def jacobi(A):\n    return A\n")
    solver.commit("solver implementation", author_name="Numerics Lab")
    manager = CitationManager(solver)
    manager.init_citations(manager.default_root_citation(authors=["Dana Kim", "Evan Ross"]))
    manager.commit("enable citations")
    return solver


def main() -> None:
    # 1. The pipeline repository.
    pipeline = Repository.init("climate-pipeline", "geo-group", description="Climate analysis pipeline")
    pipeline.write_file("pipeline/ingest.py", "def ingest():\n    return []\n")
    pipeline.write_file("pipeline/stats.py", "def summarise(x):\n    return x\n")
    pipeline.commit("initial pipeline", author_name="Grace Zhou")
    citations = CitationManager(pipeline)
    citations.init_citations(citations.default_root_citation(authors=["Grace Zhou", "Wei Hu"]))
    citations.commit("enable citations")
    print("1. Pipeline citation-enabled; root citation:",
          citations.cite("/").citation.primary_author)

    # 2. CopyCite the solver from the numerics lab.
    solver = build_solver_repo()
    outcome = citations.copy_cite(solver, "/solver", "/vendor/solver")
    citations.commit("CopyCite fast-solver from numerics-lab")
    print(f"2. CopyCite imported {len(outcome.copied_files)} file(s); "
          f"/vendor/solver/cg.py is credited to "
          f"{', '.join(citations.cite('/vendor/solver/cg.py').citation.authors)}")

    # 3. A student's branch, merged with MergeCite.
    pipeline.create_branch("student-viz")
    pipeline.checkout("student-viz")
    citations.reload()
    pipeline.write_file("viz/maps.py", "def draw():\n    pass\n")
    citations.add_cite("/viz", citations.default_root_citation(authors=["Ira Student"]))
    # The student also tweaks the root citation — this will conflict with main.
    citations.modify_cite("/", citations.cite("/").citation.with_changes(title="Climate pipeline (viz)"))
    citations.commit("visualisation work", author_name="Ira Student")

    pipeline.checkout("main")
    citations.reload()
    citations.modify_cite("/", citations.cite("/").citation.with_changes(title="Climate pipeline"))
    citations.commit("retitle project", author_name="Grace Zhou")

    # Both branches retitled the root citation, so the base-aware three-way
    # strategy cannot decide alone; it falls back to keeping the newest value.
    merge = citations.merge_cite("student-viz", strategy=ThreeWayStrategy(fallback=NewestStrategy()))
    print(f"3. MergeCite merged the student branch: {len(merge.citation_result.conflicts)} citation "
          f"conflict(s), {merge.citation_result.auto_resolved_count} auto-resolved; "
          f"/viz/maps.py credits {citations.cite('/viz/maps.py').citation.authors[0]}")

    # 4. Release on (simulated) Zenodo and record the DOI.
    zenodo = ZenodoSimulator()
    deposit, updated_root = zenodo.publish_release(citations, version_label="v1.0.0")
    citations.commit("record DOI for release v1.0.0")
    print(f"4. Published release v1.0.0 with DOI {deposit.doi}; the root citation now carries it.")
    print("   BibTeX for the released pipeline:")
    print("   " + render(updated_root, "bibtex").replace("\n", "\n   "))

    # 5. ForkCite for a collaborator.
    fork = citations.fork_cite("ocean-group", new_name="ocean-pipeline")
    fork_root = fork.cite("/").citation
    print(f"5. ForkCite created {fork.repo.full_name}; its root citation credits "
          f"{', '.join(fork_root.authors)} and records forkedFrom="
          f"{dict(fork_root.extra)['forkedFrom']}")
    print(f"   The imported solver still credits {fork.cite('/vendor/solver/cg.py').citation.authors}")

    # 6. Retroactively citation-enable a legacy repository.
    legacy = Repository.init("legacy-scripts", "geo-group", description="Old analysis scripts")
    legacy.write_file("scripts/clean.py", "v1\n")
    legacy.commit("cleaning scripts", author_name="Grace Zhou")
    legacy.write_file("scripts/plot.py", "v1\n")
    legacy.commit("plotting", author_name="Ira Student")
    legacy.write_file("scripts/clean.py", "v2\n")
    legacy.commit("fix cleaning", author_name="Wei Hu")
    report = retrofit(legacy, granularity="file")
    print(f"6. Retro-cited the legacy repository: {report.entries_created} entries generated from "
          f"{report.commits_scanned} commits; contributors found: {', '.join(report.contributors)}")
    legacy_manager = CitationManager(legacy)
    print(f"   scripts/plot.py is now credited to "
          f"{legacy_manager.cite('/scripts/plot.py').citation.authors}")


if __name__ == "__main__":
    main()
