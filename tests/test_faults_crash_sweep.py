"""Exhaustive crash-point sweep: no committed history survives-then-vanishes.

The durability contract of PR 6: a process death at *any* instrumented
failpoint, at *any* hit of that failpoint, during a realistic operation
sequence (init, commits, repack, gc, layout migration, bundle receive) must
leave the on-disk working copy in a state from which reopening — plus
``fsck --repair`` when needed — recovers every previously durable commit,
branch tip and file byte-for-byte.

The sweep is deterministic, not sampled: a fault-free dry run of the
scenario counts how many times each failpoint fires and records the durable
checkpoint after every step; then the scenario is re-run once per
``(failpoint, hit index)`` pair with a crash armed there.  After each
simulated death the harness reopens the store and asserts the recovered
state equals one of the checkpoints the run had durably reached — the one
before the dying step, or (when the crash hit after the step's durable
point) the one after it.  Anything else is lost or fabricated history.

A hypothesis-driven variant (marked ``slow``) additionally randomises which
subset of steps runs and where the crash lands, to catch orderings the
fixed scenario does not produce.
"""

from __future__ import annotations

from datetime import datetime, timezone
from pathlib import Path

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import faults
from repro.cli.storage import (
    load_repository,
    reachable_from_refs,
    save_repository,
    switch_storage,
)
from repro.faults import SimulatedCrash
from repro.utils.timeutil import FixedClock, set_clock
from repro.vcs.fsck import fsck_working_copy
from repro.vcs.remote import clone_repository
from repro.vcs.repository import Repository
from repro.vcs.transfer import (
    advertise_refs,
    apply_bundle,
    common_tips,
    create_bundle,
    update_refs_from_bundle,
)
from repro.vcs.treeops import flatten_tree


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def _rewind_clock() -> None:
    """Restart the deterministic clock so every rep produces identical oids."""
    set_clock(FixedClock(datetime(2021, 3, 1, 9, 0, 0, tzinfo=timezone.utc), step_seconds=60))


# ---------------------------------------------------------------------------
# The operation sequence under test
# ---------------------------------------------------------------------------


def _steps(kind: str):
    """The scenario: each step loads the working copy, mutates it durably."""
    other = "loose" if kind == "pack" else "pack"

    def init(root: Path) -> None:
        repo = Repository.init("crashdemo", "alice")
        repo.write_file("/a.txt", "alpha\n")
        repo.write_file("/docs/b.txt", "beta\n")
        repo.commit("c0", author_name="alice")
        save_repository(repo, root, storage=kind)

    def commit_more(root: Path) -> None:
        repo = load_repository(root)
        repo.write_file("/a.txt", "alpha two\n")
        repo.write_file("/src/new.py", "x = 1\n")
        repo.commit("c1", author_name="alice")
        save_repository(repo, root)

    def repack(root: Path) -> None:
        repo = load_repository(root)
        if repo.store.backend.kind != "pack":
            switch_storage(repo, root, "pack")
        repo.store.flush()
        repo.store.backend.repack()

    def commit_and_gc(root: Path) -> None:
        repo = load_repository(root)
        repo.write_file("/a.txt", "alpha three\n")
        repo.commit("c2", author_name="alice")
        repo.store.gc(reachable_from_refs(repo))
        save_repository(repo, root, export_files=False)

    def migrate(root: Path) -> None:
        repo = load_repository(root)
        switch_storage(repo, root, other)

    def receive_bundle(root: Path) -> None:
        # An ahead clone pushes one commit back: the bundle path end to end
        # (read → verify → apply → ref update → state save).
        repo = load_repository(root)
        side = clone_repository(repo)
        side.write_file("/remote.txt", "from the side\n")
        tip = side.commit("c3", author_name="bob")
        data = create_bundle(
            side.store, [tip], haves=common_tips(side.store, repo), refs=advertise_refs(side)
        )
        result = apply_bundle(repo.store, data)
        update_refs_from_bundle(repo, result.bundle)
        save_repository(repo, root, export_files=False)

    return [init, commit_more, repack, commit_and_gc, migrate, receive_bundle]


def _snapshot(root: Path) -> dict:
    """The durable truth: branch tips plus every file byte at HEAD."""
    repo = load_repository(root)
    state = {"branches": dict(repo.refs.branches), "files": {}}
    head = repo.head_oid()
    if head is not None:
        tree = repo.store.get_commit(head).tree_oid
        for path, (oid, mode) in flatten_tree(repo.store, tree).items():
            if mode != "040000":
                state["files"][path] = repo.store.get_blob(oid).data
    return state


def _run(root: Path, steps) -> list[dict]:
    """Run the scenario, snapshotting after each step; crashes propagate."""
    _rewind_clock()
    root.mkdir(parents=True, exist_ok=True)
    checkpoints: list[dict] = []
    for step in steps:
        step(root)
        checkpoints.append(_snapshot(root))
    return checkpoints


def _recover(root: Path):
    """Reopen after a simulated death, repairing if the first audit objects."""
    if not (root / ".gitcite" / "state.json").is_file():
        return None  # died before the first durable state ever landed
    report = fsck_working_copy(root)
    if not report.ok:
        report = fsck_working_copy(root, repair=True)
        assert report.ok, [str(f) for f in report.errors()]
        assert not report.unrecoverable, report.unrecoverable
    return _snapshot(root)


def _assert_recovered(recovered, completed: int, checkpoints: list[dict]) -> None:
    if recovered is None:
        assert completed == 0, "state.json vanished after a completed durable step"
        return
    # Durable state must be a checkpoint this run legitimately reached: the
    # last completed one, or the dying step's own (crash after its durable
    # point), or any earlier one only if nothing later was durable — i.e.
    # exactly the prefix up to and including the in-flight step.
    allowed = checkpoints[: completed + 1]
    assert any(recovered == candidate for candidate in allowed), (
        f"recovered state matches no reached checkpoint (completed={completed}): "
        f"branches={recovered['branches']}"
    )


@pytest.mark.parametrize("kind", ["pack", "loose"])
def test_crash_sweep_every_failpoint_every_hit(tmp_path, kind):
    steps = _steps(kind)
    expected = _run(tmp_path / "dry", steps)
    assert len(expected) == len(steps)
    profile = {name: count for name, count in faults.all_hits().items() if count}
    assert profile, "scenario fired no failpoints — instrumentation is gone"

    rep = 0
    for failpoint, count in sorted(profile.items()):
        for hit in range(1, count + 1):
            rep += 1
            root = tmp_path / f"rep{rep}"
            faults.reset()
            faults.arm(failpoint, action="crash", at=hit)
            completed = 0
            crashed = False
            try:
                _rewind_clock()
                root.mkdir(parents=True)
                for step in steps:
                    step(root)
                    completed += 1
                    _snapshot(root)
            except SimulatedCrash:
                crashed = True
            finally:
                faults.reset()
            assert crashed, f"{failpoint} hit {hit} armed but never fired"
            recovered = _recover(root)
            _assert_recovered(recovered, completed, expected)
            # After recovery the working copy is fully operational again.
            if recovered is not None:
                repo = load_repository(root)
                repo.write_file("/after.txt", "life goes on\n")
                repo.commit("post-crash", author_name="alice")
                save_repository(repo, root)
                assert fsck_working_copy(root).ok


def test_torn_state_write_keeps_previous_state(tmp_path):
    """A truncate (torn temp file) at state.save leaves the old state intact."""
    steps = _steps("pack")
    root = tmp_path / "wc"
    _rewind_clock()
    root.mkdir()
    steps[0](root)
    before = _snapshot(root)
    faults.reset()  # zero the hit counters step 0 advanced
    faults.arm("state.save", action="truncate", keep=7)
    with pytest.raises(SimulatedCrash):
        steps[1](root)
    faults.reset()
    recovered = _recover(root)
    assert recovered == before
    # The torn temp file was swept on reopen, not promoted to state.json.
    leftovers = [p for p in (root / ".gitcite").iterdir() if p.name.startswith(".tmp-")]
    assert not leftovers


@pytest.mark.slow
@settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
@given(data=st.data())
def test_crash_sweep_randomised(tmp_path_factory, data):
    """Hypothesis variant: random storage kind, crash site and hit index."""
    kind = data.draw(st.sampled_from(["pack", "loose"]), label="kind")
    steps = _steps(kind)
    base = tmp_path_factory.mktemp("sweep")
    faults.reset()
    expected = _run(base / "dry", steps)
    profile = {name: count for name, count in faults.all_hits().items() if count}
    failpoint = data.draw(st.sampled_from(sorted(profile)), label="failpoint")
    hit = data.draw(st.integers(1, profile[failpoint]), label="hit")

    root = base / "armed"
    faults.reset()
    faults.arm(failpoint, action="crash", at=hit)
    completed = 0
    try:
        _rewind_clock()
        root.mkdir()
        for step in steps:
            step(root)
            completed += 1
            _snapshot(root)
    except SimulatedCrash:
        pass
    finally:
        faults.reset()
    _assert_recovered(_recover(root), completed, expected)
