"""Unit tests for the VCS object model and the object store."""

from datetime import datetime, timezone

import pytest

from repro.errors import InvalidObjectError, ObjectNotFoundError
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import (
    MODE_DIRECTORY,
    MODE_FILE,
    Blob,
    Commit,
    Signature,
    Tag,
    Tree,
    TreeEntry,
    deserialize_object,
)

WHEN = datetime(2018, 9, 4, 2, 35, 20, tzinfo=timezone.utc)
SIG = Signature(name="Yinjun Wu", email="wu@example.org", timestamp=WHEN)


class TestBlob:
    def test_round_trip(self):
        blob = Blob(b"hello\n")
        assert Blob.deserialize(blob.serialize()) == blob

    def test_oid_is_content_addressed(self):
        assert Blob(b"x").oid == Blob(b"x").oid
        assert Blob(b"x").oid != Blob(b"y").oid

    def test_text_and_binary_detection(self):
        assert Blob("héllo".encode()).text() == "héllo"
        assert not Blob(b"plain text").is_binary
        assert Blob(b"\x00\x01\x02").is_binary


class TestTreeEntry:
    def test_rejects_slash_in_name(self):
        with pytest.raises(InvalidObjectError):
            TreeEntry(name="a/b", oid="0" * 40)

    def test_rejects_dot_names(self):
        for bad in (".", "..", ""):
            with pytest.raises(InvalidObjectError):
                TreeEntry(name=bad, oid="0" * 40)

    def test_rejects_bad_mode(self):
        with pytest.raises(InvalidObjectError):
            TreeEntry(name="f", oid="0" * 40, mode="777")

    def test_is_directory(self):
        assert TreeEntry(name="d", oid="0" * 40, mode=MODE_DIRECTORY).is_directory
        assert not TreeEntry(name="f", oid="0" * 40, mode=MODE_FILE).is_directory


class TestTree:
    def test_entries_are_sorted_for_determinism(self):
        entry_a = TreeEntry(name="a", oid="1" * 40)
        entry_b = TreeEntry(name="b", oid="2" * 40)
        assert Tree((entry_b, entry_a)).oid == Tree((entry_a, entry_b)).oid

    def test_duplicate_names_rejected(self):
        entry = TreeEntry(name="a", oid="1" * 40)
        with pytest.raises(InvalidObjectError):
            Tree((entry, TreeEntry(name="a", oid="2" * 40)))

    def test_round_trip(self):
        tree = Tree((TreeEntry(name="f.py", oid="3" * 40), TreeEntry(name="d", oid="4" * 40, mode=MODE_DIRECTORY)))
        assert Tree.deserialize(tree.serialize()) == tree

    def test_entry_lookup_and_modification(self):
        tree = Tree((TreeEntry(name="a", oid="1" * 40),))
        assert tree.entry("a").oid == "1" * 40
        assert tree.entry("missing") is None
        grown = tree.with_entry(TreeEntry(name="b", oid="2" * 40))
        assert grown.names == ("a", "b")
        shrunk = grown.without_entry("a")
        assert shrunk.names == ("b",)

    def test_empty_tree(self):
        assert Tree().entries == ()
        assert Tree.deserialize(Tree().serialize()) == Tree()


class TestCommitAndTag:
    def _commit(self, parents=()):
        return Commit(
            tree_oid="a" * 40,
            parent_oids=tuple(parents),
            author=SIG,
            committer=SIG,
            message="Add feature\n\nWith a body.",
        )

    def test_commit_round_trip(self):
        commit = self._commit(parents=["b" * 40, "c" * 40])
        assert Commit.deserialize(commit.serialize()) == commit

    def test_commit_flags(self):
        assert self._commit().is_root
        assert not self._commit(["b" * 40]).is_root
        assert self._commit(["b" * 40, "c" * 40]).is_merge
        assert self._commit().summary == "Add feature"

    def test_signature_round_trip(self):
        assert Signature.parse(SIG.serialize()) == SIG

    def test_signature_parse_error(self):
        with pytest.raises(InvalidObjectError):
            Signature.parse("not a signature")

    def test_tag_round_trip(self):
        tag = Tag(object_oid="a" * 40, object_type="commit", name="v1.0", tagger=SIG, message="release")
        assert Tag.deserialize(tag.serialize()) == tag

    def test_deserialize_object_dispatch(self):
        blob = Blob(b"data")
        assert deserialize_object("blob", blob.serialize()) == blob
        with pytest.raises(InvalidObjectError):
            deserialize_object("unknown", b"")


class TestObjectStore:
    def test_put_get_round_trip(self):
        store = ObjectStore()
        oid = store.put(Blob(b"hello"))
        assert store.get_blob(oid).data == b"hello"
        assert oid in store
        assert len(store) == 1

    def test_put_is_idempotent(self):
        store = ObjectStore()
        store.put(Blob(b"x"))
        store.put(Blob(b"x"))
        assert len(store) == 1

    def test_missing_object_raises(self):
        with pytest.raises(ObjectNotFoundError):
            ObjectStore().get("f" * 40)

    def test_type_mismatch_raises(self):
        store = ObjectStore()
        oid = store.put(Blob(b"x"))
        with pytest.raises(InvalidObjectError):
            store.get_tree(oid)

    def test_resolve_prefix(self):
        store = ObjectStore()
        oid = store.put(Blob(b"unique content"))
        assert store.resolve_prefix(oid[:8]) == oid
        with pytest.raises(ObjectNotFoundError):
            store.resolve_prefix("0000")
        with pytest.raises(InvalidObjectError):
            store.resolve_prefix("ab")  # too short

    def test_copy_objects_to_and_missing_from(self):
        source, destination = ObjectStore(), ObjectStore()
        oid = source.put(Blob(b"payload"))
        assert source.missing_from(destination) == [oid]
        assert source.copy_objects_to(destination) == 1
        assert source.copy_objects_to(destination) == 0
        assert destination.get_blob(oid).data == b"payload"

    def test_copy_objects_to_validates_before_mutating(self):
        source, destination = ObjectStore(), ObjectStore()
        present = source.put(Blob(b"present"))
        missing = "f" * len(present)
        with pytest.raises(ObjectNotFoundError):
            source.copy_objects_to(destination, [present, missing])
        # The failed transfer must not have partially updated the destination.
        assert len(destination) == 0
        assert present not in destination

    def test_copy_objects_to_tolerates_oids_already_in_destination(self):
        source, destination = ObjectStore(), ObjectStore()
        wanted = source.put(Blob(b"wanted"))
        already_there = destination.put(Blob(b"already there"))
        # The destination holds `already_there`, so the source not having it
        # is fine — the old skip semantics are preserved.
        assert source.copy_objects_to(destination, [already_there, wanted]) == 1
        assert wanted in destination

    def test_resolve_prefix_ambiguous(self):
        store = ObjectStore()
        # Fixed payloads give fixed hashes, so the first 4-hex-char collision
        # among 2000 ids is deterministic (and all but guaranteed to exist).
        by_prefix: dict[str, str] = {}
        ambiguous = None
        for i in range(2000):
            oid = store.put(Blob(f"object {i}".encode()))
            if ambiguous is None and oid[:4] in by_prefix and by_prefix[oid[:4]] != oid:
                ambiguous = oid[:4]
            by_prefix.setdefault(oid[:4], oid)
        assert ambiguous is not None
        with pytest.raises(InvalidObjectError):
            store.resolve_prefix(ambiguous)

    def test_clone_is_independent(self):
        store = ObjectStore()
        store.put(Blob(b"a"))
        clone = store.clone()
        clone.put(Blob(b"b"))
        assert len(store) == 1 and len(clone) == 2

    def test_total_size(self):
        store = ObjectStore()
        store.put(Blob(b"12345"))
        assert store.total_size() >= 5
