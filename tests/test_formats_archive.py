"""Tests for the bibliographic formatters and the archive simulators."""

import json

import pytest

from repro.errors import ArchiveError, DepositError, FormatError
from repro.archive.swhid import (
    content_swhid,
    directory_swhid,
    revision_swhid,
    snapshot_swhid,
    swhid_for_path,
)
from repro.archive.zenodo import ZenodoSimulator
from repro.formats import available_formats, render
from repro.formats.apa import format_author_list, render_apa
from repro.formats.bibtex import bibtex_key, render_bibtex
from repro.formats.cff import parse_author_name, render_cff
from repro.formats.datacite import datacite_payload
from repro.formats.ris import render_ris


class TestBibtex:
    def test_software_entry_fields(self, sample_citation):
        entry = render_bibtex(sample_citation)
        assert entry.startswith("@software{")
        assert "author = {Yinjun Wu}" in entry
        assert "year = {2018}" in entry
        assert "url = {https://github.com/thuwuyinjun/Data_citation_demo}" in entry
        assert "Commit bbd248a" in entry

    def test_key_is_stable_and_sanitised(self, sample_citation):
        assert bibtex_key(sample_citation) == bibtex_key(sample_citation)
        assert " " not in bibtex_key(sample_citation)

    def test_cited_path_recorded_in_note(self, sample_citation):
        assert "cited path /CoreCover" in render_bibtex(sample_citation, cited_path="/CoreCover")
        assert "cited path" not in render_bibtex(sample_citation, cited_path="/")

    def test_special_characters_escaped(self, sample_citation):
        weird = sample_citation.with_changes(title="100% of {braces} & ampersands")
        entry = render_bibtex(weird)
        assert r"\%" in entry and r"\{" in entry and r"\&" in entry

    def test_multiple_authors_joined_with_and(self, sample_citation):
        entry = render_bibtex(sample_citation.with_changes(authors=("A One", "B Two")))
        assert "A One and B Two" in entry


class TestCff:
    def test_author_name_splitting(self):
        assert parse_author_name("Susan B. Davidson") == ("Susan B.", "Davidson")
        assert parse_author_name("Yanssie") == ("", "Yanssie")
        assert parse_author_name("") == ("", "")

    def test_document_structure(self, sample_citation):
        doc = render_cff(sample_citation.with_changes(doi="10.5281/zenodo.42", license="MIT"))
        assert doc.startswith("cff-version:")
        assert 'family-names: "Wu"' in doc
        assert 'commit: "bbd248a"' in doc
        assert 'doi: "10.5281/zenodo.42"' in doc
        assert 'license: "MIT"' in doc

    def test_swhid_identifier_block(self, sample_citation):
        doc = render_cff(sample_citation.with_changes(swhid="swh:1:dir:" + "0" * 40))
        assert "identifiers:" in doc and "type: swh" in doc

    def test_cited_path_note(self, sample_citation):
        assert "path /src" in render_cff(sample_citation, cited_path="/src")


class TestOtherFormats:
    def test_ris_record(self, sample_citation):
        record = render_ris(sample_citation)
        assert record.startswith("TY  - COMP")
        assert "AU  - Yinjun Wu" in record
        assert record.rstrip().endswith("ER  -")

    def test_apa_author_list(self):
        assert format_author_list(("Leshang Chen", "Susan B. Davidson")) == "Chen, L., & Davidson, S. B."
        assert format_author_list(("Solo Author",)) == "Author, S."

    def test_apa_line(self, sample_citation):
        line = render_apa(sample_citation)
        assert "Wu, Y." in line and "[Computer software]" in line and "2018" in line

    def test_datacite_payload(self, sample_citation):
        payload = datacite_payload(sample_citation.with_changes(doi="10.5281/zenodo.7"))
        assert payload["types"]["resourceTypeGeneral"] == "Software"
        assert payload["publicationYear"] == 2018
        assert {"identifier": "10.5281/zenodo.7", "identifierType": "DOI"} in payload["identifiers"]

    def test_registry_dispatch_and_errors(self, sample_citation):
        assert set(available_formats()) >= {"bibtex", "cff", "ris", "apa", "datacite", "text", "json"}
        assert render(sample_citation, "text").strip() == str(sample_citation)
        assert json.loads(render(sample_citation, "json"))["commitID"] == "bbd248a"
        with pytest.raises(FormatError):
            render(sample_citation, "marc21")

    def test_every_registered_format_renders_nonempty(self, sample_citation):
        for name in available_formats():
            assert render(sample_citation, name).strip()


class TestSwhid:
    def test_identifiers_for_every_artifact_kind(self, simple_repo):
        repo = simple_repo
        head = repo.head_oid()
        tree = repo.store.get_commit(head).tree_oid
        assert revision_swhid(repo.store, head) == f"swh:1:rev:{head}"
        assert directory_swhid(repo.store, tree) == f"swh:1:dir:{tree}"
        blob_oid = repo.store.get_tree(tree).entry("README.md").oid
        assert content_swhid(repo.store, blob_oid).startswith("swh:1:cnt:")
        assert snapshot_swhid(repo).startswith("swh:1:snp:")

    def test_swhid_for_path_dispatches_on_kind(self, simple_repo):
        assert swhid_for_path(simple_repo, "HEAD", "/src").startswith("swh:1:dir:")
        assert swhid_for_path(simple_repo, "HEAD", "/src/main.py").startswith("swh:1:cnt:")
        assert swhid_for_path(simple_repo, "HEAD", "/").startswith("swh:1:dir:")
        with pytest.raises(ArchiveError):
            swhid_for_path(simple_repo, "HEAD", "/missing")

    def test_identifiers_are_intrinsic(self, simple_repo):
        """The same content gets the same identifier, even in a different repository."""
        from repro.vcs.remote import fork_repository

        fork = fork_repository(simple_repo, "someone-else")
        assert swhid_for_path(fork, "HEAD", "/src") == swhid_for_path(simple_repo, "HEAD", "/src")

    def test_snapshot_changes_when_branches_move(self, simple_repo):
        before = snapshot_swhid(simple_repo)
        simple_repo.write_file("/new.txt", "n")
        simple_repo.commit("advance")
        assert snapshot_swhid(simple_repo) != before


class TestZenodo:
    def test_deposit_publish_and_resolve(self, sample_citation):
        zenodo = ZenodoSimulator()
        deposit = zenodo.create_deposit(sample_citation, files={"archive.zip": b"bytes"})
        assert not deposit.published
        published = zenodo.publish(deposit.deposit_id)
        assert published.doi.startswith("10.5281/zenodo.")
        assert zenodo.resolve_doi(published.doi) is published
        with pytest.raises(DepositError):
            zenodo.publish(deposit.deposit_id)  # already published

    def test_publish_requires_files(self, sample_citation):
        zenodo = ZenodoSimulator()
        deposit = zenodo.create_deposit(sample_citation)
        with pytest.raises(DepositError):
            zenodo.publish(deposit.deposit_id)
        zenodo.upload_file(deposit.deposit_id, "code.tar", b"data")
        assert zenodo.publish(deposit.deposit_id).published

    def test_versions_share_a_concept_doi(self, sample_citation):
        zenodo = ZenodoSimulator()
        first = zenodo.publish(
            zenodo.create_deposit(sample_citation.with_changes(version="v1"), files={"a": b"1"}).deposit_id
        )
        second = zenodo.publish(
            zenodo.create_deposit(sample_citation.with_changes(version="v2"), files={"a": b"2"}).deposit_id
        )
        assert first.concept_doi == second.concept_doi
        assert first.doi != second.doi
        assert [d.version_label for d in zenodo.versions_of(first.concept_doi)] == ["v1", "v2"]

    def test_unknown_deposit_and_doi(self, sample_citation):
        zenodo = ZenodoSimulator()
        with pytest.raises(DepositError):
            zenodo.get_deposit(42)
        with pytest.raises(DepositError):
            zenodo.resolve_doi("10.5281/zenodo.404")

    def test_publish_release_feeds_doi_back_into_root_citation(self, enabled_manager):
        zenodo = ZenodoSimulator()
        deposit, updated_root = zenodo.publish_release(enabled_manager, version_label="v1.0")
        assert deposit.published and deposit.files  # the release files were archived
        assert updated_root.doi == deposit.doi
        assert enabled_manager.citation_function().root_citation().doi == deposit.doi
        enabled_manager.commit("record DOI")
        assert enabled_manager.cite("/src/main.py").citation.doi == deposit.doi
