"""Process-level chaos: ``gitcite serve`` vs kill -9, crash faults and drains.

The durability tests exercise the journal and recovery in-process; this
suite runs the real thing — a ``gitcite serve`` subprocess on a real TCP
socket — and kills it the way an operator's host would: ``SIGKILL`` at
schedule-dealt points, :class:`~repro.faults.SimulatedCrash` armed *inside*
the subprocess via ``GITCITE_SERVE_FAULTS`` (which ``serve`` turns into a
hard ``os._exit``), and SIGTERM for the graceful path.  After every death
the server restarts and the contract is asserted: **every acknowledged push
survives byte-for-byte; nothing acknowledged is ever lost.**
"""

from __future__ import annotations

import base64
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.cli.storage import load_repository, save_repository
from repro.errors import RemoteError, TransportError
from repro.hub.durability import PushJournal, journal_path, replay_journal
from repro.hub.httpd import HttpTransport
from repro.hub.retry import RetryingApi, RetryPolicy
from repro.hub.sync import HubRemote
from repro.vcs.fsck import fsck_working_copy
from repro.vcs.merge import is_ancestor_commit
from repro.vcs.repository import Repository
from repro.workloads.generator import WorkloadConfig, generate_serve_chaos_schedule

SLUG = "alice/proj"


def _build_working_copy(tmp_path: Path) -> Path:
    root = tmp_path / "served"
    repo = Repository.init(name="proj", owner="alice")
    repo.write_file("README.md", "chaos target\n")
    repo.commit("init")
    save_repository(repo, root)
    return root


def _spawn(directory: Path, *extra: str, faults_env: str | None = None) -> subprocess.Popen:
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("GITCITE_SERVE_FAULTS", None)
    if faults_env:
        env["GITCITE_SERVE_FAULTS"] = faults_env
    return subprocess.Popen(
        [sys.executable, "-m", "repro.cli.main", "serve",
         "-C", str(directory), "--port", "0", "--no-rate-limit", *extra],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE, text=True,
    )


def _read_banner(process: subprocess.Popen):
    """(url, token) from the serve banner, or (None, None) if it died first."""
    banner = (process.stdout.readline() or "").strip()
    if not banner.startswith("serving"):
        return None, None
    url = banner.rsplit(" ", 1)[1]
    token_line = process.stdout.readline() or ""
    return url, token_line.rsplit(" ", 1)[1].strip()


def _remote(url: str, token: str, attempts: int = 3) -> HubRemote:
    wire = RetryingApi(
        HttpTransport(url, timeout=10),
        RetryPolicy(max_attempts=attempts, base_delay=0.05, max_delay=0.5),
        sleep=time.sleep,
    )
    return HubRemote(wire, SLUG, token=token)


def _kill_and_wait(process: subprocess.Popen) -> None:
    if process.poll() is None:
        process.kill()
    process.communicate(timeout=30)


class TestServeChaos:
    def test_scheduled_kill_storm_loses_no_acknowledged_push(self, tmp_path):
        """The tentpole assertion: SIGKILL and in-process crash faults at
        deterministic schedule points, restart after restart, and every
        acknowledged push is present byte-for-byte at the end."""
        root = _build_working_copy(tmp_path)
        schedule = generate_serve_chaos_schedule(WorkloadConfig(seed=11), rounds=3)
        acked: list[tuple[str, str, bytes]] = []  # (tip, path, payload)
        clone = None
        counter = 0

        for event in schedule.rounds:
            process = _spawn(root, faults_env=event.env_entry())
            url, token = _read_banner(process)
            if url is None:
                # An armed serve.recover crash killed the startup replay;
                # a plain restart must converge (recovery is idempotent).
                process.communicate(timeout=30)
                process = _spawn(root)
                url, token = _read_banner(process)
                assert url is not None
            remote = _remote(url, token)
            if clone is None:
                clone = remote.clone()
            acks = 0
            while acks < event.after_acks:
                counter += 1
                path = f"chaos/file-{counter}.txt"
                payload = f"payload {counter}\n".encode()
                clone.write_file(path, payload)
                tip = clone.commit(f"chaos commit {counter}")
                try:
                    remote.push(clone)
                except (RemoteError, TransportError):
                    break  # the server died underneath us: unacknowledged
                acked.append((tip, path, payload))
                acks += 1
            _kill_and_wait(process)  # kill -9: no drain, no save

        assert acked, "the schedule produced no acknowledged pushes"

        # The survivor: everything acknowledged must have made it.
        process = _spawn(root)
        url, token = _read_banner(process)
        assert url is not None
        try:
            remote = _remote(url, token)
            survivor = remote.clone()
            last_tip = acked[-1][0]
            assert survivor.refs.branch_target("main") == last_tip
            for tip, path, payload in acked:
                assert survivor.read_file_at(tip, path) == payload
            # Zero duplicate objects: re-sending the acknowledged state is
            # a pure no-op on the server's store.
            report = remote.push(survivor)
            assert report["objects_added"] == 0 and report["updated"] == {}
        finally:
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        assert process.returncode == 0, err
        assert f"stopped; {SLUG} saved" in out
        assert fsck_working_copy(root, repair=False).ok

    def test_sigterm_drains_saves_and_resets_the_journal(self, tmp_path):
        root = _build_working_copy(tmp_path)
        process = _spawn(root)
        url, token = _read_banner(process)
        assert url is not None
        remote = _remote(url, token)
        clone = remote.clone()
        clone.write_file("graceful.txt", "drained\n")
        tip = clone.commit("before SIGTERM")
        remote.push(clone)
        process.send_signal(signal.SIGTERM)
        out, err = process.communicate(timeout=30)
        assert process.returncode == 0, err
        assert f"stopped; {SLUG} saved" in out
        # The save checkpointed the push, so the journal was reset…
        assert replay_journal(journal_path(root)).records == []
        # …and the checkpoint itself holds the pushed bytes.
        saved = load_repository(root)
        assert saved.refs.branch_target("main") == tip
        assert saved.read_file_at("main", "graceful.txt") == b"drained\n"

    def test_in_process_crash_fault_is_a_hard_exit(self, tmp_path):
        root = _build_working_copy(tmp_path)
        original_tip = load_repository(root).refs.branch_target("main")
        process = _spawn(root, faults_env="journal.append:crash:1")
        url, token = _read_banner(process)
        assert url is not None
        remote = _remote(url, token)
        clone = remote.clone()
        clone.write_file("lost.txt", "never acknowledged\n")
        clone.commit("dies in the journal append")
        with pytest.raises((RemoteError, TransportError)):
            remote.push(clone)
        process.communicate(timeout=30)
        assert process.returncode == 70  # the crash-exit code serve uses

        # The push crashed *before* its journal append: it was never
        # acknowledged, so losing it is the contract working, not breaking.
        process = _spawn(root)
        url, token = _read_banner(process)
        assert url is not None
        try:
            survivor = _remote(url, token).clone()
            assert survivor.refs.branch_target("main") == original_tip
        finally:
            process.send_signal(signal.SIGTERM)
            process.communicate(timeout=30)

    def test_degraded_startup_serves_reads_rejects_writes(self, tmp_path):
        root = _build_working_copy(tmp_path)
        # A checksum-valid journal record whose payload is not a bundle:
        # recovery cannot re-apply it, so serve must come up read-only.
        with PushJournal(journal_path(root)) as journal:
            journal.append(b"valid frame, broken acknowledgement")
        process = _spawn(root)
        url, token = _read_banner(process)
        assert url is not None
        try:
            banner_tail = "".join(process.stdout.readline() for _ in range(4))
            assert "DEGRADED (read-only)" in banner_tail
            wire = HttpTransport(url, timeout=10)
            assert wire.get(f"/repos/{SLUG}/git/refs").status == 200
            clone = _remote(url, token, attempts=1).clone()  # reads still work
            assert clone.read_file_at("main", "README.md") == b"chaos target\n"
            rejected = wire.post(
                f"/repos/{SLUG}/git/receive-pack",
                {"bundle": base64.b64encode(b"whatever").decode()},
                token=token,
            )
            assert rejected.status == 503 and rejected.json["retryable"] is True
            health = wire.get("/healthz")
            assert health.status == 503 and health.json["status"] == "degraded"
        finally:
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        assert process.returncode == 0, err
        # Degraded shutdown keeps the damaged journal — it is the evidence.
        assert len(replay_journal(journal_path(root)).records) == 1

    @pytest.mark.slow
    def test_concurrent_push_storm_survives_a_mid_storm_sigkill(self, tmp_path):
        """Eight clients hammer distinct branches; the server is SIGKILLed
        mid-storm; every acknowledgement any client ever saw must survive."""
        root = _build_working_copy(tmp_path)
        process = _spawn(root)
        url, token = _read_banner(process)
        assert url is not None
        clients = 8
        pushes_per_client = 6
        acked_lock = threading.Lock()
        acked: dict[str, list[str]] = {}  # branch -> acknowledged tips, in order

        def storm(index: int) -> None:
            branch = f"load-{index}"
            try:
                remote = _remote(url, token, attempts=2)
                clone = remote.clone()
                clone.checkout(branch, create_branch=True)
                for push in range(pushes_per_client):
                    clone.write_file(f"{branch}/f{push}.txt", f"{branch} {push}\n")
                    tip = clone.commit(f"{branch} commit {push}")
                    remote.push(clone, branch=branch)
                    with acked_lock:
                        acked.setdefault(branch, []).append(tip)
            except (RemoteError, TransportError):
                return  # the kill got us: everything after is unacknowledged

        threads = [threading.Thread(target=storm, args=(i,)) for i in range(clients)]
        for thread in threads:
            thread.start()
        time.sleep(1.0)  # let part of the storm land
        _kill_and_wait(process)  # SIGKILL mid-storm
        for thread in threads:
            thread.join(timeout=60)

        assert acked, "the storm produced no acknowledged pushes before the kill"
        process = _spawn(root)
        url, token = _read_banner(process)
        assert url is not None
        try:
            survivor = _remote(url, token).clone()
            for branch, tips in acked.items():
                last = tips[-1]
                # The branch may be *ahead* of the last ack the client saw (a
                # journalled push whose response the kill swallowed), never
                # behind it.
                target = survivor.refs.branch_target(branch)
                assert target is not None, f"acknowledged branch {branch} vanished"
                assert target == last or is_ancestor_commit(survivor.store, last, target)
        finally:
            process.send_signal(signal.SIGTERM)
            out, err = process.communicate(timeout=30)
        assert process.returncode == 0, err
        assert fsck_working_copy(root, repair=False).ok
