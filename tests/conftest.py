"""Shared fixtures for the test suite.

All fixtures that create repositories install a deterministic clock so
commits, citations and object ids are reproducible; the clock is reset after
each test.
"""

from __future__ import annotations

from datetime import datetime, timezone

import pytest

from repro.citation.manager import CitationManager
from repro.citation.record import Citation
from repro.utils.timeutil import FixedClock, reset_clock, set_clock
from repro.vcs.repository import Repository


@pytest.fixture(autouse=True)
def _fixed_clock():
    """Every test runs under a deterministic, monotonically advancing clock."""
    set_clock(FixedClock(datetime(2018, 9, 1, 12, 0, 0, tzinfo=timezone.utc), step_seconds=60))
    yield
    reset_clock()


@pytest.fixture
def sample_citation() -> Citation:
    """A representative citation record (the paper's Listing 1 root entry)."""
    return Citation(
        repo_name="Data_citation_demo",
        owner="Yinjun Wu",
        committed_date=datetime(2018, 9, 4, 2, 35, 20, tzinfo=timezone.utc),
        commit_id="bbd248a",
        url="https://github.com/thuwuyinjun/Data_citation_demo",
        authors=("Yinjun Wu",),
    )


@pytest.fixture
def other_citation() -> Citation:
    """A second, different citation (the Listing 1 CoreCover entry)."""
    return Citation(
        repo_name="alu01-corecover",
        owner="Chen Li",
        committed_date=datetime(2018, 3, 24, 0, 29, 45, tzinfo=timezone.utc),
        commit_id="5cc951e",
        url="https://github.com/chenlica/alu01-corecover",
        authors=("Chen Li",),
    )


@pytest.fixture
def simple_repo() -> Repository:
    """A repository with one commit containing a small tree."""
    repo = Repository.init("demo", "alice", description="A demo project")
    repo.write_file("src/main.py", "print('hello')\n")
    repo.write_file("src/util/helpers.py", "def helper():\n    return 1\n")
    repo.write_file("docs/guide.md", "# Guide\n")
    repo.write_file("README.md", "# demo\n")
    repo.commit("initial commit", author_name="alice")
    return repo


@pytest.fixture
def enabled_manager(simple_repo: Repository) -> CitationManager:
    """A citation-enabled manager over :func:`simple_repo`."""
    manager = CitationManager(simple_repo)
    manager.init_citations()
    manager.commit("enable citations")
    return manager


@pytest.fixture(scope="session")
def running_example():
    """The Figure 1 running example (built once per session: it is deterministic)."""
    from repro.workloads.scenarios import build_running_example

    return build_running_example()


@pytest.fixture(scope="session")
def demo_scenario():
    """The Listing 1 demonstration scenario (built once per session)."""
    from repro.workloads.scenarios import build_demo_scenario

    return build_demo_scenario()
