"""Unit tests for references, the staging index and tree operations."""

import pytest

from repro.errors import IndexError_, RefError, VCSError
from repro.vcs.index import StagingIndex
from repro.vcs.object_store import ObjectStore
from repro.vcs.objects import Blob, MODE_DIRECTORY
from repro.vcs.refs import RefStore
from repro.vcs.treeops import (
    build_tree,
    flatten_files,
    flatten_tree,
    list_directories,
    lookup_path,
    subtree_oid,
    tree_contains,
)


class TestRefStore:
    def test_initial_state(self):
        refs = RefStore()
        assert refs.head_branch == "main"
        assert refs.head_commit() is None
        assert not refs.is_detached

    def test_set_and_resolve_branch(self):
        refs = RefStore()
        refs.set_branch("main", "a" * 40)
        assert refs.resolve("main") == "a" * 40
        assert refs.resolve("HEAD") == "a" * 40

    def test_illegal_names_rejected(self):
        refs = RefStore()
        for bad in ("", "-x", "a..b", "has space", "trailing/"):
            with pytest.raises(RefError):
                refs.set_branch(bad, "a" * 40)

    def test_delete_checked_out_branch_rejected(self):
        refs = RefStore()
        refs.set_branch("main", "a" * 40)
        with pytest.raises(RefError):
            refs.delete_branch("main")

    def test_delete_and_rename(self):
        refs = RefStore()
        refs.set_branch("main", "a" * 40)
        refs.set_branch("feature", "b" * 40)
        refs.delete_branch("feature")
        assert not refs.has_branch("feature")
        refs.rename_branch("main", "trunk")
        assert refs.head_branch == "trunk"
        assert refs.default_branch == "trunk"

    def test_tags(self):
        refs = RefStore()
        refs.set_tag("v1", "c" * 40)
        assert refs.tag_target("v1") == "c" * 40
        assert refs.resolve("v1") == "c" * 40
        with pytest.raises(RefError):
            refs.set_tag("v1", "d" * 40)
        refs.delete_tag("v1")
        with pytest.raises(RefError):
            refs.tag_target("v1")

    def test_detach_and_advance(self):
        refs = RefStore()
        refs.set_branch("main", "a" * 40)
        refs.detach_head("b" * 40)
        assert refs.is_detached
        assert refs.head_commit() == "b" * 40
        refs.advance_head("c" * 40)
        assert refs.head_commit() == "c" * 40
        assert refs.branch_target("main") == "a" * 40  # detached HEAD does not move branches

    def test_unknown_reference(self):
        with pytest.raises(RefError):
            RefStore().resolve("nope")

    def test_clone_is_independent(self):
        refs = RefStore()
        refs.set_branch("main", "a" * 40)
        duplicate = refs.clone()
        duplicate.set_branch("main", "b" * 40)
        assert refs.branch_target("main") == "a" * 40


class TestStagingIndex:
    def test_stage_and_write_tree(self):
        store = ObjectStore()
        index = StagingIndex()
        blob = store.put(Blob(b"content"))
        index.stage("/src/a.py", blob)
        tree_oid = index.write_tree(store)
        assert lookup_path(store, tree_oid, "/src/a.py") == (blob, "100644")

    def test_cannot_stage_root(self):
        with pytest.raises(IndexError_):
            StagingIndex().stage("/", "0" * 40)

    def test_cannot_stage_directory_mode(self):
        with pytest.raises(IndexError_):
            StagingIndex().stage("/d", "0" * 40, mode=MODE_DIRECTORY)

    def test_file_directory_conflict_detected(self):
        index = StagingIndex()
        index.stage("/a", "0" * 40)
        with pytest.raises(IndexError_):
            index.stage("/a/b", "1" * 40)

    def test_unstage_and_discard(self):
        index = StagingIndex()
        index.stage("/a.py", "0" * 40)
        index.unstage("/a.py")
        assert index.is_empty
        with pytest.raises(IndexError_):
            index.unstage("/a.py")
        index.discard("/a.py")  # no error

    def test_read_tree_round_trip(self):
        store = ObjectStore()
        index = StagingIndex()
        index.stage("/x/y.txt", store.put(Blob(b"y")))
        index.stage("/z.txt", store.put(Blob(b"z")))
        tree_oid = index.write_tree(store)
        fresh = StagingIndex()
        fresh.read_tree(store, tree_oid)
        assert fresh.entries() == index.entries()

    @pytest.mark.parametrize(
        "entries",
        [
            {"/a": ("0" * 40, "100644"), "/a/b": ("1" * 40, "100644")},
            {"/a/b": ("1" * 40, "100644"), "/a": ("0" * 40, "100644")},
        ],
        ids=["ancestor-first", "descendant-first"],
    )
    def test_write_tree_rejects_conflicts_smuggled_via_replace(self, entries):
        # replace() skips stage()'s conflict checks; the tree builder must
        # still refuse to materialise a path that is both file and directory.
        store = ObjectStore()
        index = StagingIndex()
        index.replace(entries)
        with pytest.raises(VCSError):
            index.write_tree(store)

    def test_write_tree_rejects_conflict_against_warm_clean_subtree(self):
        # Warm-cache variant: '/a' is a clean cached directory from the
        # previous sync; a new file '/a' smuggled in via replace() must not
        # let the subtree prune silently drop either entry.
        store = ObjectStore()
        index = StagingIndex()
        blob = store.put(Blob(b"content"))
        index.stage("/a/b", blob)
        index.stage("/other/c", blob)
        index.write_tree(store)
        index.replace({"/a": (blob, "100644"), "/a/b": (blob, "100644")})
        with pytest.raises(VCSError):
            index.write_tree(store)

    def test_write_tree_cache_is_per_store(self):
        index = StagingIndex()
        store_a = ObjectStore()
        index.stage("/a.txt", store_a.put(Blob(b"a")))
        tree = index.write_tree(store_a)
        store_b = ObjectStore()
        store_b.put(Blob(b"a"))
        # Same logical content, different store: the rebuilt tree must
        # actually exist in store_b rather than being served from the cache.
        assert index.write_tree(store_b) == tree
        assert tree in store_b


class TestTreeOps:
    @pytest.fixture
    def populated(self):
        store = ObjectStore()
        files = {
            "/a.txt": (store.put(Blob(b"a")), "100644"),
            "/src/b.py": (store.put(Blob(b"b")), "100644"),
            "/src/pkg/c.py": (store.put(Blob(b"c")), "100644"),
        }
        return store, build_tree(store, files)

    def test_flatten_round_trip(self, populated):
        store, tree_oid = populated
        files = flatten_files(store, tree_oid)
        assert set(files) == {"/a.txt", "/src/b.py", "/src/pkg/c.py"}
        rebuilt = build_tree(store, files)
        assert rebuilt == tree_oid

    def test_flatten_tree_includes_directories(self, populated):
        store, tree_oid = populated
        everything = flatten_tree(store, tree_oid)
        assert everything["/src"][1] == MODE_DIRECTORY
        assert "/src/pkg" in everything
        assert "/" in everything

    def test_list_directories(self, populated):
        store, tree_oid = populated
        assert list_directories(store, tree_oid) == ["/", "/src", "/src/pkg"]

    def test_lookup_path(self, populated):
        store, tree_oid = populated
        assert lookup_path(store, tree_oid, "/src/pkg/c.py") is not None
        assert lookup_path(store, tree_oid, "/src")[1] == MODE_DIRECTORY
        assert lookup_path(store, tree_oid, "/missing") is None
        assert lookup_path(store, tree_oid, "/a.txt/below") is None

    def test_tree_contains_and_subtree(self, populated):
        store, tree_oid = populated
        assert tree_contains(store, tree_oid, "/src/pkg")
        sub = subtree_oid(store, tree_oid, "/src")
        assert set(flatten_files(store, sub, base="/src")) == {"/src/b.py", "/src/pkg/c.py"}
        with pytest.raises(VCSError):
            subtree_oid(store, tree_oid, "/a.txt")
        with pytest.raises(VCSError):
            subtree_oid(store, tree_oid, "/nope")

    def test_build_tree_rejects_root_file_and_conflicts(self):
        store = ObjectStore()
        with pytest.raises(VCSError):
            build_tree(store, {"/": (store.put(Blob(b"x")), "100644")})
        oid = store.put(Blob(b"x"))
        with pytest.raises(VCSError):
            build_tree(store, {"/a": (oid, "100644"), "/a/b": (oid, "100644")})

    def test_empty_tree(self):
        store = ObjectStore()
        tree_oid = build_tree(store, {})
        assert flatten_files(store, tree_oid) == {}
