"""Retrying wire transport: backoff policy, retry classification, convergence.

The acceptance bar from the durability PR: an interrupted push, retried,
converges to exactly the state of an uninterrupted one — zero duplicate
objects, zero lost ref updates — whether the request died on the way in
(server never acted) or the response died on the way out (server already
acted).  Plus the policy mechanics: exponential backoff with deterministic
seeded jitter, 429 ``retry_after`` honoured as a floor, 5xx and
``retryable`` bodies retried, semantic rejections returned immediately, and
a :class:`SimulatedCrash` never absorbed by the retry loop.
"""

from __future__ import annotations

import pytest

from repro import faults
from repro.errors import (
    RemoteError,
    TransportError,
    ValidationError,
)
from repro.extension.client import ExtensionClient
from repro.faults import SimulatedCrash
from repro.hub import HostingPlatform, HubRemote, RestApi, RetryingApi, RetryPolicy
from repro.hub.ratelimit import RateLimiter
from repro.vcs.remote import clone_repository


@pytest.fixture(autouse=True)
def _clean_faults():
    faults.reset()
    yield
    faults.reset()


def _platform(limiter: RateLimiter | None = None):
    platform = HostingPlatform(rate_limiter=limiter)
    platform.register_user("alice")
    token = platform.issue_token("alice").value
    repo = platform.create_repository("alice", "proj").repo
    repo.write_file("/a.txt", b"hello")
    repo.commit("c0", author_name="alice")
    return platform, token, repo


def _remote(platform, token, **policy_kwargs):
    policy = RetryPolicy(jitter=0.0, base_delay=0.001, **policy_kwargs)
    api = RetryingApi(RestApi(platform), policy=policy)
    return HubRemote(api, "alice/proj", token=token), api


def _drop_requests(times):
    faults.arm("wire.request", action="error", at=1, times=times,
               error=lambda: TransportError("connection reset"))


# ---------------------------------------------------------------------------
# RetryPolicy delay mathematics
# ---------------------------------------------------------------------------


def test_backoff_grows_and_caps():
    delays = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=5.0, jitter=0.0).delays()
    assert [delays.delay_for(n) for n in (1, 2, 3, 4, 5)] == [1.0, 2.0, 4.0, 5.0, 5.0]


def test_retry_after_is_a_floor_not_a_cap():
    delays = RetryPolicy(base_delay=0.1, jitter=0.0).delays()
    assert delays.delay_for(1, retry_after=30.0) == 30.0  # sleep the window out
    assert delays.delay_for(1, retry_after=0.01) == pytest.approx(0.1)  # backoff wins


def test_jitter_is_deterministic_per_seed():
    a = RetryPolicy(jitter=0.5, seed=7).delays()
    b = RetryPolicy(jitter=0.5, seed=7).delays()
    c = RetryPolicy(jitter=0.5, seed=8).delays()
    first = [a.delay_for(n) for n in (1, 2, 3)]
    assert first == [b.delay_for(n) for n in (1, 2, 3)]
    assert first != [c.delay_for(n) for n in (1, 2, 3)]


# ---------------------------------------------------------------------------
# Retry classification
# ---------------------------------------------------------------------------


def test_transport_errors_are_retried_until_success():
    platform, token, _ = _platform()
    remote, api = _remote(platform, token)
    _drop_requests(times=2)
    advert = remote.refs()
    assert advert.branches and api.retries == 2


def test_exhausted_retries_reraise_the_transport_error():
    platform, token, _ = _platform()
    remote, api = _remote(platform, token, max_attempts=3)
    _drop_requests(times=None)  # every attempt fails
    with pytest.raises(TransportError):
        remote.refs()
    assert api.retries == 2  # 3 attempts = 2 sleeps


def test_semantic_rejections_are_not_retried():
    platform, token, _ = _platform()
    api = RetryingApi(RestApi(platform), policy=RetryPolicy(jitter=0.0))
    response = api.get("/repos/alice/missing", token=token)
    assert response.status == 404 and api.retries == 0
    response = api.post("/repos/alice/proj/git/receive-pack", payload={}, token=token)
    assert response.status == 422 and api.retries == 0


def test_damaged_in_flight_bundle_is_retried():
    # A bundle flipped on the wire is a retryable 422 (TransferCorruptError):
    # the sender's copy is intact, so the re-send succeeds.
    platform, token, server_repo = _platform()
    remote, api = _remote(platform, token)
    clone = remote.clone()
    clone.write_file("/b.txt", b"second")
    tip = clone.commit("c1", author_name="alice")
    faults.reset()  # zero the hit counters the clone advanced
    faults.arm("bundle.read", action="flip", at=1, times=1, offset=40)
    report = remote.push(clone)
    assert server_repo.head_oid() == tip
    assert report["updated"] == {"main": tip}
    assert api.retries == 1


def test_simulated_crash_is_never_absorbed():
    platform, token, _ = _platform()
    remote, _ = _remote(platform, token)
    faults.arm("wire.request", action="crash", at=1)
    with pytest.raises(SimulatedCrash):
        remote.refs()


def test_rate_limit_retry_after_honoured_with_fake_clock():
    clock = [0.0]
    limiter = RateLimiter(authenticated_limit=2, window_seconds=10.0, clock=lambda: clock[0])
    platform, token, _ = _platform(limiter)
    slept: list[float] = []

    def sleep(seconds: float) -> None:
        slept.append(seconds)
        clock[0] += seconds  # sleeping genuinely advances the rate window

    api = RetryingApi(
        RestApi(platform),
        policy=RetryPolicy(jitter=0.0, base_delay=0.01, max_attempts=4),
        sleep=sleep,
    )
    for _ in range(2):
        assert api.get("/repos/alice/proj", token=token).ok
    response = api.get("/repos/alice/proj", token=token)
    assert response.ok  # the retry after the window expired succeeded
    assert any(s >= 9.0 for s in slept), slept  # waited the window, not the backoff


# ---------------------------------------------------------------------------
# HubRemote over the wire: clone / pull / push
# ---------------------------------------------------------------------------


def test_clone_pull_push_roundtrip_over_the_wire():
    platform, token, server_repo = _platform()
    remote, _ = _remote(platform, token)

    clone = remote.clone()
    assert clone.head_oid() == server_repo.head_oid()
    assert clone.read_file("/a.txt") == b"hello"

    clone.write_file("/b.txt", b"pushed")
    tip = clone.commit("c1", author_name="alice")
    report = remote.push(clone)
    assert server_repo.head_oid() == tip
    assert report["objects_added"] > 0

    stale = remote.clone()
    clone.write_file("/c.txt", b"newer")
    tip2 = clone.commit("c2", author_name="alice")
    remote.push(clone)
    assert remote.pull(stale) == tip2
    assert stale.head_oid() == tip2 and stale.read_file("/c.txt") == b"newer"


def test_push_requires_existing_local_branch():
    platform, token, _ = _platform()
    remote, _ = _remote(platform, token)
    clone = remote.clone()
    with pytest.raises(RemoteError):
        remote.push(clone, branch="nope")


def test_non_fast_forward_push_rejected_without_force():
    platform, token, server_repo = _platform()
    remote, _ = _remote(platform, token)
    clone = remote.clone()
    server_tip = server_repo.head_oid()
    # The server moves ahead; the clone commits a divergent history.
    server_repo.write_file("/server.txt", b"ahead")
    server_repo.commit("server moves", author_name="alice")
    clone.write_file("/local.txt", b"divergent")
    tip = clone.commit("local moves", author_name="alice")
    with pytest.raises(ValidationError):
        remote.push(clone)
    assert server_repo.head_oid() != tip  # nothing moved
    report = remote.push(clone, force=True)
    assert report["updated"] == {"main": tip}
    assert server_tip  # divergence scenario actually exercised


def test_pull_refuses_diverged_histories():
    platform, token, server_repo = _platform()
    remote, _ = _remote(platform, token)
    clone = remote.clone()
    server_repo.write_file("/server.txt", b"ahead")
    server_repo.commit("server moves", author_name="alice")
    clone.write_file("/local.txt", b"divergent")
    clone.commit("local moves", author_name="alice")
    with pytest.raises(RemoteError):
        remote.pull(clone)


# ---------------------------------------------------------------------------
# Convergence: the interrupted push
# ---------------------------------------------------------------------------


def _server_state(repo):
    return (dict(repo.refs.branches), sorted(repo.store.iter_oids()))


def test_interrupted_push_converges_request_lost():
    # The request dies before the server sees it: the retry is the first
    # delivery, and the result is byte-identical to an uninterrupted push.
    platform, token, server_repo = _platform()
    remote, api = _remote(platform, token)
    clone = remote.clone()
    clone.write_file("/b.txt", b"second")
    tip = clone.commit("c1", author_name="alice")

    reference = clone_repository(server_repo)
    from repro.vcs.remote import push as local_push

    local_push(clone, reference)

    faults.reset()  # zero the hit counters the clone advanced
    _drop_requests(times=2)
    remote.push(clone)
    assert _server_state(server_repo) == _server_state(reference)
    assert server_repo.head_oid() == tip
    assert api.retries == 2


def test_interrupted_push_converges_response_lost():
    # The server applied the bundle and moved the ref, then the response
    # died: the retried identical bundle must be a no-op (idempotent apply),
    # adding zero duplicate objects and losing no ref update.
    platform, token, server_repo = _platform()
    remote, _ = _remote(platform, token)
    clone = remote.clone()
    clone.write_file("/b.txt", b"second")
    tip = clone.commit("c1", author_name="alice")

    # push = refs GET (response hit 1) + receive-pack (response hit 2).
    faults.reset()  # zero the hit counters the clone advanced
    faults.arm("wire.response", action="error", at=2, times=1,
               error=lambda: TransportError("response dropped"))
    before_oids = sorted(server_repo.store.iter_oids())
    report = remote.push(clone)
    after_oids = sorted(server_repo.store.iter_oids())

    assert server_repo.head_oid() == tip  # the first (unacknowledged) attempt landed
    assert report["objects_added"] == 0  # the retry duplicated nothing
    assert len(after_oids) == len(set(after_oids))
    assert set(before_oids) < set(after_oids)


def test_repeated_identical_push_is_a_noop():
    platform, token, server_repo = _platform()
    remote, _ = _remote(platform, token)
    clone = remote.clone()
    clone.write_file("/b.txt", b"second")
    clone.commit("c1", author_name="alice")
    first = remote.push(clone)
    count = len(sorted(server_repo.store.iter_oids()))
    second = remote.push(clone)
    assert first["objects_added"] > 0
    assert second["objects_added"] == 0 and second["updated"] == {}
    assert len(sorted(server_repo.store.iter_oids())) == count


# ---------------------------------------------------------------------------
# ExtensionClient opts into the same policy
# ---------------------------------------------------------------------------


def test_extension_client_retries_with_policy():
    platform, token, _ = _platform()
    client = ExtensionClient(
        RestApi(platform), retry=RetryPolicy(jitter=0.0, base_delay=0.001)
    )
    _drop_requests(times=2)
    assert client.sign_in(token) == "alice"
    assert client.api.retries == 2


def test_extension_client_without_retry_surfaces_transport_errors():
    platform, token, _ = _platform()
    client = ExtensionClient(RestApi(platform))
    _drop_requests(times=1)
    with pytest.raises(TransportError):
        client.sign_in(token)
