"""Unit tests for hashing, timestamps and canonical JSON helpers."""

from datetime import datetime, timezone

import pytest

from repro.utils.hashing import object_id, sha1_hex, short_id
from repro.utils.jsonutil import canonical_dump_bytes, canonical_dumps, pretty_dumps, stable_loads
from repro.utils.timeutil import (
    FixedClock,
    format_timestamp,
    now_utc,
    parse_timestamp,
    reset_clock,
    set_clock,
)


class TestHashing:
    def test_sha1_known_vector(self):
        assert sha1_hex(b"") == "da39a3ee5e6b4b0d3255bfef95601890afd80709"

    def test_object_id_matches_git_blob_hash(self):
        # `git hash-object` of a file containing "hello\n" is this well-known id.
        assert object_id("blob", b"hello\n") == "ce013625030ba8dba906f756967f9e9ca394464a"

    def test_object_id_depends_on_type(self):
        assert object_id("blob", b"x") != object_id("tree", b"x")

    def test_short_id_default_length(self):
        oid = "bbd248a" + "0" * 33
        assert short_id(oid) == "bbd248a"

    def test_short_id_minimum_length(self):
        with pytest.raises(ValueError):
            short_id("abcdef", length=3)


class TestTimestamps:
    def test_format_round_trip(self):
        when = datetime(2018, 9, 4, 2, 35, 20, tzinfo=timezone.utc)
        assert format_timestamp(when) == "2018-09-04T02:35:20Z"
        assert parse_timestamp("2018-09-04T02:35:20Z") == when

    def test_parse_tolerates_listing1_spaces(self):
        # The paper's listing contains "2018 -09 -04 T02:35:20Z" due to typesetting.
        assert parse_timestamp("2018 -09 -04 T02:35:20Z") == datetime(
            2018, 9, 4, 2, 35, 20, tzinfo=timezone.utc
        )

    def test_naive_datetime_is_treated_as_utc(self):
        assert format_timestamp(datetime(2020, 1, 1)) == "2020-01-01T00:00:00Z"

    def test_fixed_clock_advances(self):
        clock = FixedClock(datetime(2018, 1, 1, tzinfo=timezone.utc), step_seconds=30)
        first, second = clock(), clock()
        assert (second - first).total_seconds() == 30

    def test_set_and_reset_clock(self):
        set_clock(FixedClock(datetime(2001, 2, 3, tzinfo=timezone.utc)))
        assert now_utc().year == 2001
        reset_clock()
        assert now_utc().year >= 2018

    def test_now_utc_has_no_microseconds(self):
        assert now_utc().microsecond == 0


class TestCanonicalJson:
    def test_sorted_and_compact(self):
        assert canonical_dumps({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_bytes_round_trip(self):
        value = {"key": "välue", "n": 3}
        assert stable_loads(canonical_dump_bytes(value)) == value

    def test_identical_dicts_serialise_identically(self):
        assert canonical_dumps({"a": 1, "b": 2}) == canonical_dumps({"b": 2, "a": 1})

    def test_pretty_dumps_is_indented(self):
        assert "\n  " in pretty_dumps({"a": {"b": 1}})

    def test_stable_loads_rejects_invalid(self):
        with pytest.raises(ValueError):
            stable_loads("{not json")
